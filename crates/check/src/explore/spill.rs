//! The bounded-memory exploration engine.
//!
//! Same BFS discovery order, charge discipline, and outcomes as the
//! in-RAM sequential engines (`explore_sequential_fp` /
//! `explore_sequential_exact`), but the working set is held to an
//! approximate byte budget:
//!
//! * the **state arena** and **edge lists** are append-only
//!   [`SegmentStore`]s — sealed segments live on disk and are read
//!   back through an LRU cache; only the unsealed tail (and, until
//!   the first seal, a resident mirror of the arena) stays in RAM;
//! * the **visited set** is two-tier: a hot in-RAM fingerprint table
//!   that, when full, drains into sorted on-disk
//!   [`FingerprintRun`]s probed behind a one-bit in-RAM filter.
//!
//! Soundness of the two-tier visited set is the same first-id-wins
//! argument the resume path already relies on: a fingerprint key is
//! inserted at most once globally (hot and spilled tiers hold
//! disjoint keys), so lookups across both tiers answer exactly what
//! one big map would. In [`VisitedMode::Exact`] the fingerprint is
//! only a candidate index — every hit is verified by comparing the
//! probe state against the arena record read back through the cache,
//! so collisions never conflate states.
//!
//! Checkpoints are written in the spill wire format
//! ([`crate::checkpoint::SNAPSHOT_VERSION_SPILL`]): sealed segments
//! are *referenced* by name and checksum, and only the unsealed tails
//! are embedded — a periodic snapshot costs O(hot tier), not O(state
//! space). Resume materializes the snapshot first (in
//! [`super::resume_exploration`]) and re-ingests it here; a crash
//! *during* that re-ingest can invalidate the old snapshot's segment
//! references, which surfaces as a typed I/O error on the next
//! resume, never a wrong graph.

use super::{seq_exhaustion_snapshot, Edge, ExploreOptions, Exploration, StateGraph, Visited};
use crate::budget::{Budget, ExhaustReason, Meter, Outcome};
use crate::checkpoint::{self, CheckpointError, Checkpointer, Snapshot, SpillManifest};
use crate::compiled::{CompiledSystem, EvalScratch};
use crate::obs::{Event, Phase, PhaseGuard, RecorderHandle};
use crate::{CheckError, System, VisitedMode};
use fxhash::FxHashMap;
use opentla_kernel::store::{self, FingerprintRun, SegmentMeta, SegmentStore, StoreError};
use opentla_kernel::{PackedLayout, State};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// Budget assumed when [`super::Engine::SpillBfs`] is selected without
/// an explicit [`ExploreOptions::mem_budget_bytes`]: generous enough
/// that typical models never seal a segment, so the engine runs at
/// in-RAM speed while keeping the spill machinery live.
pub(super) const DEFAULT_SPILL_BUDGET: usize = 256 << 20;

/// How one memory budget splits across the engine's tiers (shared
/// with the parallel spill engine, which divides the visited-tier
/// shares across its shards).
pub(super) struct Tuning {
    /// Seal threshold for both segment stores.
    pub(super) seg_target: usize,
    /// LRU cache budget for the arena store.
    pub(super) arena_cache: usize,
    /// LRU cache budget for the edge store.
    pub(super) edge_cache: usize,
    /// Hot visited-tier capacity, in entries.
    pub(super) hot_cap: usize,
    /// In-RAM filter size in front of the spilled runs.
    pub(super) filter_bytes: usize,
}

impl Tuning {
    pub(super) fn for_budget(m: usize) -> Tuning {
        let seg_target = (m / 8).clamp(1024, 8 << 20);
        Tuning {
            seg_target,
            arena_cache: (m / 4).max(seg_target),
            edge_cache: (m / 8).max(seg_target),
            hot_cap: (m / 128).max(64),
            filter_bytes: (m / 16).clamp(4 << 10, 256 << 20),
        }
    }
}

/// A one-bit-per-key filter in front of the spilled fingerprint runs:
/// a clear bit proves the key was never spilled, so the common miss
/// costs no disk probe. Power-of-two sized, indexed by the top bits of
/// a Fibonacci-multiplied key.
pub(super) struct Filter {
    words: Vec<u64>,
    shift: u32,
}

impl Filter {
    pub(super) fn new(bytes: usize) -> Filter {
        let bits = (bytes.max(1024) * 8).next_power_of_two();
        Filter {
            words: vec![0; bits / 64],
            shift: 64 - bits.trailing_zeros(),
        }
    }

    fn bit(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    pub(super) fn set(&mut self, key: u64) {
        let bit = self.bit(key);
        self.words[bit / 64] |= 1 << (bit % 64);
    }

    pub(super) fn maybe(&self, key: u64) -> bool {
        let bit = self.bit(key);
        self.words[bit / 64] & (1 << (bit % 64)) != 0
    }
}

/// One sealed spill emission, for meter accounting and the `spill`
/// observability event.
pub(super) struct SpillInfo {
    pub(super) tier: &'static str,
    pub(super) seq: u64,
    pub(super) records: u64,
    pub(super) bytes: u64,
}

pub(super) fn note_spill(meter: &Meter, rec: &RecorderHandle, info: &SpillInfo) {
    meter.add_spilled_bytes(info.bytes);
    if rec.enabled() {
        rec.record(&Event::Spill {
            tier: info.tier,
            seq: info.seq,
            records: info.records,
            bytes: info.bytes,
            total_spilled_bytes: meter.spilled_bytes(),
        });
    }
}

pub(super) fn seal_info(tier: &'static str, store: &SegmentStore, meta: &SegmentMeta) -> SpillInfo {
    SpillInfo {
        tier,
        seq: store.sealed().len() as u64 - 1,
        records: meta.records,
        bytes: meta.file_len(),
    }
}

/// The two-tier visited set. In fingerprint mode each (masked) key is
/// inserted at most once, so the tiers hold disjoint keys and a
/// lookup's first answer is *the* answer. In exact mode a key may
/// carry several candidate ids (genuine fingerprint collisions); the
/// caller verifies candidates against the arena.
struct SpillVisited {
    /// First id recorded per key. In fingerprint mode — where each key
    /// is inserted exactly once — this is, verbatim, the engine's
    /// first-id-wins visited map: an in-budget completed run *moves* it
    /// into the final [`StateGraph`] instead of rebuilding one.
    hot: FxHashMap<u64, usize>,
    /// Exact-mode extras: second and later ids under a genuinely
    /// colliding key (rare). Every key here is also in `hot`.
    dups: FxHashMap<u64, Vec<u64>>,
    hot_cap: usize,
    /// Created at the first drain — a run that never spills never pays
    /// for zeroing (or walking) the filter's bit array.
    filter: Option<Filter>,
    filter_bytes: usize,
    runs: Vec<FingerprintRun>,
    dir: PathBuf,
    probe: Vec<u64>,
}

/// Removes stale `visited-*.run` files an earlier process left in
/// `dir`, mirroring `SegmentStore::create`'s stale-segment cleanup.
/// Shared by both spill engines' visited-set constructors.
pub(super) fn clean_visited_runs(dir: &Path) -> Result<(), StoreError> {
    for entry in std::fs::read_dir(dir).map_err(|e| StoreError::Io {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })? {
        let entry = entry.map_err(|e| StoreError::Io {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("visited-") && name.ends_with(".run") {
            let path = entry.path();
            std::fs::remove_file(&path).map_err(|e| StoreError::Io {
                path,
                message: e.to_string(),
            })?;
        }
    }
    Ok(())
}

impl SpillVisited {
    fn create(dir: &Path, t: &Tuning) -> Result<SpillVisited, StoreError> {
        clean_visited_runs(dir)?;
        Ok(SpillVisited {
            hot: FxHashMap::default(),
            dups: FxHashMap::default(),
            hot_cap: t.hot_cap,
            filter: None,
            filter_bytes: t.filter_bytes,
            runs: Vec::new(),
            dir: dir.to_path_buf(),
            probe: Vec::new(),
        })
    }

    /// Fingerprint-mode lookup: the id recorded for `key`, if any.
    fn lookup_fp(&mut self, key: u64) -> Result<Option<u64>, StoreError> {
        if let Some(&id) = self.hot.get(&key) {
            return Ok(Some(id as u64));
        }
        if !self.runs.is_empty() && self.filter.as_ref().is_some_and(|f| f.maybe(key)) {
            self.probe.clear();
            for run in &mut self.runs {
                run.lookup(key, &mut self.probe)?;
                if let Some(&id) = self.probe.first() {
                    return Ok(Some(id));
                }
            }
        }
        Ok(None)
    }

    /// Exact-mode lookup: every candidate id recorded under `key`,
    /// appended to `out` (cleared first).
    fn candidates(&mut self, key: u64, out: &mut Vec<u64>) -> Result<(), StoreError> {
        out.clear();
        if let Some(&id) = self.hot.get(&key) {
            out.push(id as u64);
            if let Some(extra) = self.dups.get(&key) {
                out.extend_from_slice(extra);
            }
        }
        if !self.runs.is_empty() && self.filter.as_ref().is_some_and(|f| f.maybe(key)) {
            for run in &mut self.runs {
                run.lookup(key, out)?;
            }
        }
        Ok(())
    }

    /// Records `id` under `key` in the hot tier, spilling the tier to
    /// a sorted run file when it reaches capacity. Returns the spill's
    /// accounting info when one happened.
    fn insert(&mut self, key: u64, id: u64) -> Result<Option<SpillInfo>, StoreError> {
        match self.hot.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => {
                self.dups.entry(key).or_default().push(id);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id as usize);
            }
        }
        if self.hot.len() < self.hot_cap {
            return Ok(None);
        }
        self.drain_hot().map(Some)
    }

    /// Fingerprint-mode lookup-or-insert with one hot-tier hash probe —
    /// the engine's innermost visited operation, cost-matched to the
    /// sequential engine's single `HashMap::entry`. On a full miss
    /// `charge` decides admission: `Ok(())` records `next_id` under
    /// `key`, `Err(reason)` leaves the set untouched (the budget cut
    /// happens *before* the insert, exactly like the in-RAM engine).
    fn fp_entry(
        &mut self,
        key: u64,
        next_id: u64,
        charge: impl FnOnce() -> Result<(), ExhaustReason>,
    ) -> Result<(FpOutcome, Option<SpillInfo>), StoreError> {
        match self.hot.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                Ok((FpOutcome::Found(*e.get() as u64), None))
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                if !self.runs.is_empty()
                    && self.filter.as_ref().is_some_and(|f| f.maybe(key))
                {
                    self.probe.clear();
                    for run in &mut self.runs {
                        run.lookup(key, &mut self.probe)?;
                        if let Some(&id) = self.probe.first() {
                            return Ok((FpOutcome::Found(id), None));
                        }
                    }
                }
                if let Err(reason) = charge() {
                    return Ok((FpOutcome::Cut(reason), None));
                }
                e.insert(next_id as usize);
                if self.hot.len() < self.hot_cap {
                    return Ok((FpOutcome::Inserted, None));
                }
                self.drain_hot().map(|info| (FpOutcome::Inserted, Some(info)))
            }
        }
    }

    /// Drains the hot tier (and exact-mode dups) into a sorted run
    /// file, setting the filter bits of every drained key.
    fn drain_hot(&mut self) -> Result<SpillInfo, StoreError> {
        let filter = self
            .filter
            .get_or_insert_with(|| Filter::new(self.filter_bytes));
        let mut entries: Vec<(u64, u64)> =
            Vec::with_capacity(self.hot.len() + self.dups.len());
        for (key, id) in self.hot.drain() {
            filter.set(key);
            entries.push((key, id as u64));
        }
        // Dup keys are a subset of the drained hot keys, so their
        // filter bits are already set.
        for (key, ids) in self.dups.drain() {
            entries.extend(ids.into_iter().map(|id| (key, id)));
        }
        entries.sort_unstable();
        let path = self.dir.join(format!("visited-{:05}.run", self.runs.len()));
        let run = FingerprintRun::write(&path, &entries)?;
        let info = SpillInfo {
            tier: "visited",
            seq: self.runs.len() as u64,
            records: entries.len() as u64,
            bytes: run.bytes(),
        };
        self.runs.push(run);
        Ok(info)
    }
}

/// What [`SpillVisited::fp_entry`] did with the key.
enum FpOutcome {
    /// The key was already recorded, in either tier, for this id.
    Found(u64),
    /// A full miss, admitted: `next_id` is now recorded.
    Inserted,
    /// A full miss the budget refused; nothing was recorded.
    Cut(ExhaustReason),
}

/// The disk-backed state arena, with a resident mirror kept until the
/// first seal: runs whose packed arena never outgrows one segment
/// (including every run under the unconstrained default budget) read
/// parents straight from RAM and never touch the decode path.
///
/// While the mirror is alive and the layout is packed, record
/// *encoding* is deferred entirely: packed records are fixed-width, so
/// the store's byte size is `count × (prefix + record)` without
/// materializing a single byte. The bytes are produced — identically,
/// since encoding depends only on `(state, fp, parent)` — the first
/// time anything actually needs them: a checkpoint snapshot, or the
/// mirror outgrowing one segment. Runs under the unconstrained default
/// budget therefore never pay the per-state packing cost at all.
struct Arena {
    store: SegmentStore,
    resident: Option<Resident>,
    layout: Option<PackedLayout>,
    /// `Some(bytes-per-record-incl-prefix)` while encoding is deferred;
    /// implies the mirror holds records the store has not seen yet.
    deferred_cost: Option<usize>,
    seg_target: usize,
    /// Records pushed so far (the store lags this while deferred).
    count: usize,
    pack_scratch: Vec<u8>,
    rec_buf: Vec<u8>,
    read_buf: Vec<u8>,
}

struct Resident {
    states: Vec<State>,
    fps: Vec<u64>,
    parents: Vec<Option<(usize, usize)>>,
}

impl Arena {
    fn create(system: &System, dir: &Path, t: &Tuning) -> Result<Arena, StoreError> {
        let layout = PackedLayout::compile(system.vars());
        // 4-byte store length prefix + 17-byte record header + payload.
        let deferred_cost = layout.as_ref().map(|l| 4 + 17 + l.stride());
        Ok(Arena {
            store: SegmentStore::create(dir, "arena", t.seg_target, t.arena_cache)?,
            resident: Some(Resident {
                states: Vec::new(),
                fps: Vec::new(),
                parents: Vec::new(),
            }),
            layout,
            deferred_cost,
            seg_target: t.seg_target,
            count: 0,
            pack_scratch: Vec::new(),
            rec_buf: Vec::new(),
            read_buf: Vec::new(),
        })
    }

    fn len(&self) -> usize {
        self.count
    }

    fn push(
        &mut self,
        state: &State,
        fp: u64,
        parent: Option<(usize, usize)>,
        meter: &Meter,
        rec: &RecorderHandle,
    ) -> Result<(), StoreError> {
        self.count += 1;
        if let Some(cost) = self.deferred_cost {
            let r = self.resident.as_mut().expect("deferred implies resident");
            r.states.push(state.clone());
            r.fps.push(fp);
            r.parents.push(parent);
            if self.count * cost >= self.seg_target {
                // The mirror no longer fits one segment: materialize
                // the byte stream and run eagerly from here on.
                self.flush_deferred(meter, rec)?;
            }
            return Ok(());
        }
        checkpoint::encode_arena_record(
            state,
            fp,
            parent,
            self.layout.as_ref(),
            &mut self.pack_scratch,
            &mut self.rec_buf,
        );
        if let Some(meta) = self.store.append(&self.rec_buf)? {
            note_spill(meter, rec, &seal_info("arena", &self.store, &meta));
            // First seal: the arena no longer fits the budget, so the
            // mirror goes too. Reads fall back to the store.
            self.resident = None;
        } else if let Some(r) = &mut self.resident {
            r.states.push(state.clone());
            r.fps.push(fp);
            r.parents.push(parent);
        }
        Ok(())
    }

    /// Encodes and appends every deferred record, producing exactly the
    /// byte stream (and so exactly the segment boundaries) an eager run
    /// would have. No-op when encoding is not deferred.
    fn flush_deferred(&mut self, meter: &Meter, rec: &RecorderHandle) -> Result<(), StoreError> {
        if self.deferred_cost.take().is_none() {
            return Ok(());
        }
        let mut sealed_any = false;
        if let Some(r) = &self.resident {
            for i in 0..r.states.len() {
                checkpoint::encode_arena_record(
                    &r.states[i],
                    r.fps[i],
                    r.parents[i],
                    self.layout.as_ref(),
                    &mut self.pack_scratch,
                    &mut self.rec_buf,
                );
                if let Some(meta) = self.store.append(&self.rec_buf)? {
                    note_spill(meter, rec, &seal_info("arena", &self.store, &meta));
                    sealed_any = true;
                }
            }
        }
        if sealed_any {
            self.resident = None;
        }
        Ok(())
    }

    /// The state and (unmasked) fingerprint of record `id`.
    fn entry(&mut self, id: usize) -> Result<(State, u64), CheckpointError> {
        if let Some(r) = &self.resident {
            return Ok((r.states[id].clone(), r.fps[id]));
        }
        self.store.read(id as u64, &mut self.read_buf)?;
        let rec = checkpoint::decode_arena_record(&self.read_buf, self.layout.as_ref())?;
        Ok((rec.state, rec.fp))
    }

    /// Whether arena record `id` holds exactly `state` — the exact-mode
    /// collision check, reading through the cache only when the
    /// resident mirror is gone.
    fn holds(&mut self, id: usize, state: &State) -> Result<bool, CheckpointError> {
        if let Some(r) = &self.resident {
            return Ok(&r.states[id] == state);
        }
        self.entry(id).map(|(s, _)| &s == state)
    }

    /// Tears the arena down into `(states, fps, parents)` in id order,
    /// for final graph materialization. With the mirror alive this is a
    /// move; otherwise every record is decoded.
    #[allow(clippy::type_complexity)]
    fn into_parts(
        self,
    ) -> Result<(Vec<State>, Vec<u64>, Vec<Option<(usize, usize)>>), CheckpointError> {
        let n = self.len();
        if let Some(r) = self.resident {
            return Ok((r.states, r.fps, r.parents));
        }
        let mut parents = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n);
        let mut fps = Vec::with_capacity(n);
        let mut take = |rec: &[u8]| -> Result<(), CheckpointError> {
            let rec = checkpoint::decode_arena_record(rec, self.layout.as_ref())?;
            states.push(rec.state);
            fps.push(rec.fp);
            parents.push(rec.parent);
            Ok(())
        };
        for meta in self.store.sealed() {
            for rec in store::read_segment(&self.store.dir().join(&meta.name), Some(meta))? {
                take(&rec)?;
            }
        }
        for rec in self.store.hot_records() {
            take(rec)?;
        }
        Ok((states, fps, parents))
    }
}

/// The edge store plus a deferred mirror, the same trick the arena
/// plays: while every record still fits one segment, records live as
/// `(id, edges)` pairs in RAM and the encoded byte stream — identical,
/// since encoding depends only on the pairs — is produced the first
/// time a snapshot or the size budget demands it. A completed
/// in-budget run assembles its final edge lists by moving the mirror
/// into place, never decoding a record.
struct EdgeSink {
    store: SegmentStore,
    mirror: Option<Vec<(u32, Vec<Edge>)>>,
    mirror_bytes: usize,
    seg_target: usize,
    rec_buf: Vec<u8>,
}

impl EdgeSink {
    fn create(dir: &Path, t: &Tuning) -> Result<EdgeSink, StoreError> {
        Ok(EdgeSink {
            store: SegmentStore::create(dir, "edges", t.seg_target, t.edge_cache)?,
            mirror: Some(Vec::new()),
            mirror_bytes: 0,
            seg_target: t.seg_target,
            rec_buf: Vec::new(),
        })
    }

    fn push(
        &mut self,
        id: usize,
        edges: &[Edge],
        meter: &Meter,
        rec: &RecorderHandle,
    ) -> Result<(), StoreError> {
        if let Some(m) = &mut self.mirror {
            // 4-byte store prefix + 8-byte record header + 8 per edge.
            self.mirror_bytes += 12 + 8 * edges.len();
            m.push((id as u32, edges.to_vec()));
            if self.mirror_bytes >= self.seg_target {
                self.flush_deferred(meter, rec)?;
            }
            return Ok(());
        }
        checkpoint::encode_edge_record(id, edges, &mut self.rec_buf);
        if let Some(meta) = self.store.append(&self.rec_buf)? {
            note_spill(meter, rec, &seal_info("edges", &self.store, &meta));
        }
        Ok(())
    }

    /// Encodes and appends every mirrored record in recorded order —
    /// exactly the byte stream an eager run would have produced. No-op
    /// when the mirror is already gone.
    fn flush_deferred(&mut self, meter: &Meter, rec: &RecorderHandle) -> Result<(), StoreError> {
        let Some(m) = self.mirror.take() else {
            return Ok(());
        };
        for (id, es) in &m {
            checkpoint::encode_edge_record(*id as usize, es, &mut self.rec_buf);
            if let Some(meta) = self.store.append(&self.rec_buf)? {
                note_spill(meter, rec, &seal_info("edges", &self.store, &meta));
            }
        }
        Ok(())
    }

    /// Tears the sink down into per-state edge lists: a move when the
    /// mirror survived, a full record decode otherwise.
    fn into_edges(self, n: usize) -> Result<Vec<Vec<Edge>>, CheckpointError> {
        if let Some(m) = self.mirror {
            let mut edges = vec![Vec::new(); n];
            for (id, es) in m {
                edges[id as usize] = es;
            }
            return Ok(edges);
        }
        collect_edges(&self.store, n)
    }
}

/// Reassembles the per-state edge lists from the edge store's records.
pub(super) fn collect_edges(store: &SegmentStore, n: usize) -> Result<Vec<Vec<Edge>>, CheckpointError> {
    let mut edges = vec![Vec::new(); n];
    let mut take = |rec: &[u8]| -> Result<(), CheckpointError> {
        let (id, es) = checkpoint::decode_edge_record(rec, n)?;
        edges[id] = es;
        Ok(())
    };
    for meta in store.sealed() {
        for rec in store::read_segment(&store.dir().join(&meta.name), Some(meta))? {
            take(&rec)?;
        }
    }
    for rec in store.hot_records() {
        take(rec)?;
    }
    Ok(edges)
}

/// Builds the O(hot tier) periodic checkpoint: sealed segments by
/// reference, unsealed tails inline. Deferred arena records are
/// materialized first — a snapshot embeds real store bytes.
#[allow(clippy::too_many_arguments)]
fn spill_snapshot(
    arena: &mut Arena,
    edge_store: &mut EdgeSink,
    init: &[usize],
    queue: &VecDeque<usize>,
    options: &ExploreOptions,
    sys_hash: u64,
    transitions: u64,
    meter: &Meter,
    rec: &RecorderHandle,
) -> Result<Snapshot, StoreError> {
    arena.flush_deferred(meter, rec)?;
    edge_store.flush_deferred(meter, rec)?;
    let mut frontier: Vec<usize> = queue.iter().copied().collect();
    frontier.sort_unstable();
    frontier.dedup();
    Ok(Snapshot {
        fp_bits: options.fp_bits.clamp(1, 64),
        mode: options.mode,
        reduced: false,
        system_hash: sys_hash,
        seq: 0,
        states: Vec::new(),
        init: init.to_vec(),
        edges: Vec::new(),
        parents: Vec::new(),
        frontier,
        reduction: None,
        spill: Some(SpillManifest {
            dir: arena.store.dir().to_path_buf(),
            states: arena.store.len(),
            transitions,
            arena_segments: arena.store.sealed().to_vec(),
            arena_hot: arena.store.hot_records().map(<[u8]>::to_vec).collect(),
            edge_segments: edge_store.store.sealed().to_vec(),
            edge_hot: edge_store.store.hot_records().map(<[u8]>::to_vec).collect(),
        }),
    })
}

/// Where the segment files live: next to the checkpoint when one is
/// configured (so a resumed process finds them), otherwise a
/// process-private temp directory removed when the run returns.
pub(super) fn spill_dir(budget: &Budget) -> (PathBuf, bool) {
    use std::sync::atomic::{AtomicU64, Ordering};
    if let Some(spec) = &budget.checkpoint {
        return (PathBuf::from(format!("{}.segs", spec.path.display())), false);
    }
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    (
        std::env::temp_dir().join(format!("opentla-spill-{}-{n}", std::process::id())),
        true,
    )
}

/// Re-seeds the stores from a materialized snapshot, mirroring the
/// in-RAM engines' resume paths: arena records are re-appended in id
/// order, the visited set is rebuilt with the same first-id-wins
/// insertion discipline, and every *non-frontier* state gets its edge
/// record back (frontier states re-expand, so they must have none).
#[allow(clippy::too_many_arguments)]
fn reingest(
    snap: &Snapshot,
    options: &ExploreOptions,
    mask: u64,
    arena: &mut Arena,
    edge_store: &mut EdgeSink,
    visited: &mut SpillVisited,
    init: &mut Vec<usize>,
    queue: &mut VecDeque<usize>,
    transitions_total: &mut u64,
    meter: &Meter,
    rec: &RecorderHandle,
) -> Result<(), CheckError> {
    let n = snap.states.len();
    let mut in_frontier = vec![false; n];
    for &f in &snap.frontier {
        in_frontier[f] = true;
    }
    for (id, s) in snap.states.iter().enumerate() {
        let fp = s.fingerprint();
        let spilled = match options.mode {
            VisitedMode::Fingerprint => {
                let key = fp & mask;
                match visited.lookup_fp(key).map_err(CheckpointError::from)? {
                    Some(_) => None,
                    None => visited
                        .insert(key, id as u64)
                        .map_err(CheckpointError::from)?,
                }
            }
            VisitedMode::Exact => visited.insert(fp, id as u64).map_err(CheckpointError::from)?,
        };
        if let Some(info) = spilled {
            note_spill(meter, rec, &info);
        }
        arena
            .push(s, fp, snap.parents[id], meter, rec)
            .map_err(CheckpointError::from)?;
        if !in_frontier[id] {
            edge_store
                .push(id, &snap.edges[id], meter, rec)
                .map_err(CheckpointError::from)?;
        }
    }
    *init = snap.init.clone();
    queue.extend(snap.frontier.iter().copied());
    *transitions_total = snap.transitions_used() as u64;
    Ok(())
}

/// Routes one spill exploration by visited mode and cleans up an
/// ephemeral segment directory afterwards.
pub(super) fn explore_spill(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    resume: Option<&Snapshot>,
) -> Result<Exploration, CheckError> {
    let mem = options
        .resolved_mem_budget()
        .unwrap_or(DEFAULT_SPILL_BUDGET);
    let (dir, ephemeral) = spill_dir(budget);
    let result = match options.mode {
        VisitedMode::Fingerprint => explore_spill_fp(system, budget, options, resume, mem, &dir),
        VisitedMode::Exact => explore_spill_exact(system, budget, options, resume, mem, &dir),
    };
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

/// Why a successor sweep stopped early: a budget cut (normal, mirrors
/// the in-RAM engines) or a store failure (typed error).
enum Stop {
    Cut(ExhaustReason),
    Fail(CheckpointError),
}

/// The fingerprint-mode engine; mirrors `explore_sequential_fp`
/// statement for statement so completed graphs are byte-identical.
fn explore_spill_fp(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    resume: Option<&Snapshot>,
    mem: usize,
    dir: &Path,
) -> Result<Exploration, CheckError> {
    use std::ops::ControlFlow;

    let compiled = CompiledSystem::compile(system);
    let mut scratch = EvalScratch::new();
    let mask = options.mask();
    let sys_hash = checkpoint::system_hash(system);
    let mut ck = Checkpointer::new(budget.checkpoint.clone());
    let rec = budget.recorder.clone();
    let t = Tuning::for_budget(mem);
    let mut arena = Arena::create(system, dir, &t).map_err(CheckpointError::from)?;
    let mut edge_store = EdgeSink::create(dir, &t).map_err(CheckpointError::from)?;
    let mut visited = SpillVisited::create(dir, &t).map_err(CheckpointError::from)?;
    let mut init: Vec<usize> = Vec::new();
    let mut queue = VecDeque::new();
    let mut transitions_total: u64 = 0;
    let mut exhausted: Option<ExhaustReason> = None;
    let mut exhausted_in_init = false;
    let mut cut_edges: Option<(usize, Vec<Edge>)> = None;
    let mut edge_buf: Vec<Edge> = Vec::new();
    let meter;
    if let Some(snap) = resume {
        meter = Meter::start_resumed(budget, snap.states_used(), snap.transitions_used());
        reingest(
            snap,
            options,
            mask,
            &mut arena,
            &mut edge_store,
            &mut visited,
            &mut init,
            &mut queue,
            &mut transitions_total,
            &meter,
            &rec,
        )?;
    } else {
        let init_states = system.init().states(system.universe())?;
        if init_states.is_empty() {
            return Err(CheckError::NoInitialStates);
        }
        meter = Meter::start(budget);
        let _init_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreInit);
        for s in init_states {
            let fp = s.fingerprint();
            let key = fp & mask;
            let id = arena.len();
            let (out, spilled) = visited
                .fp_entry(key, id as u64, || meter.charge_state().map_or(Ok(()), Err))
                .map_err(CheckpointError::from)?;
            if let Some(info) = spilled {
                note_spill(&meter, &rec, &info);
            }
            match out {
                FpOutcome::Found(_) => continue,
                FpOutcome::Cut(reason) => {
                    exhausted = Some(reason);
                    exhausted_in_init = true;
                    break;
                }
                FpOutcome::Inserted => {
                    arena
                        .push(&s, fp, None, &meter, &rec)
                        .map_err(CheckpointError::from)?;
                    init.push(id);
                    queue.push_back(id);
                }
            }
        }
    }
    let expand_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreExpand);
    'bfs: while exhausted.is_none() {
        if let Some(reason) = meter.checkpoint() {
            exhausted = Some(reason);
            break;
        }
        // Periodic snapshot at the loop head — a clean cut, like the
        // in-RAM engines, but O(hot tier): sealed segments go in by
        // reference.
        if ck.due(1) {
            let snap = spill_snapshot(
                &mut arena,
                &mut edge_store,
                &init,
                &queue,
                options,
                sys_hash,
                transitions_total,
                &meter,
                &rec,
            )
            .map_err(CheckpointError::from)?;
            ck.write(snap, &budget.recorder);
        }
        let Some(id) = queue.pop_front() else {
            break;
        };
        let (parent, parent_fp) = arena.entry(id)?;
        edge_buf.clear();
        let stop = compiled.for_each_successor(&parent, &mut scratch, |action, assignments| {
            if let Some(reason) = meter.charge_transition() {
                return ControlFlow::Break(Stop::Cut(reason));
            }
            let child_fp = parent.fingerprint_with(parent_fp, assignments);
            let key = child_fp & mask;
            let nid = arena.len();
            let (out, spilled) = match visited.fp_entry(key, nid as u64, || {
                meter.charge_state().map_or(Ok(()), Err)
            }) {
                Ok(v) => v,
                Err(e) => return ControlFlow::Break(Stop::Fail(e.into())),
            };
            if let Some(info) = spilled {
                note_spill(&meter, &rec, &info);
            }
            let target = match out {
                FpOutcome::Found(existing) => existing as usize,
                FpOutcome::Cut(reason) => return ControlFlow::Break(Stop::Cut(reason)),
                FpOutcome::Inserted => {
                    if let Err(e) = arena.push(
                        &parent.with(assignments),
                        child_fp,
                        Some((id, action)),
                        &meter,
                        &rec,
                    ) {
                        return ControlFlow::Break(Stop::Fail(e.into()));
                    }
                    queue.push_back(nid);
                    nid
                }
            };
            edge_buf.push(Edge { action, target });
            ControlFlow::Continue(())
        })?;
        match stop {
            None => {
                edge_store
                    .push(id, &edge_buf, &meter, &rec)
                    .map_err(CheckpointError::from)?;
                transitions_total += edge_buf.len() as u64;
            }
            Some(Stop::Cut(reason)) => {
                // Re-queue the half-expanded state so the frontier
                // honestly reports it as uncovered; its partial edges
                // go to the in-RAM graph only, never the store.
                queue.push_front(id);
                cut_edges = Some((id, std::mem::take(&mut edge_buf)));
                exhausted = Some(reason);
                break 'bfs;
            }
            Some(Stop::Fail(e)) => return Err(e.into()),
        }
    }
    drop(expand_phase);
    if rec.enabled() {
        let a = arena.store.cache_stats();
        let e = edge_store.store.cache_stats();
        rec.record(&Event::CacheStats {
            hits: a.hits + e.hits,
            misses: a.misses + e.misses,
            evictions: a.evictions + e.evictions,
            resident_bytes: a.resident_bytes + e.resident_bytes,
            spilled_bytes: meter.spilled_bytes(),
        });
    }
    // Exhaustion snapshot, spill form: when a checkpoint spec keeps
    // the segment directory alive the final snapshot references the
    // sealed segments too — O(hot tier), like the periodic ones. With
    // an ephemeral directory (about to be removed) the in-memory
    // snapshot must be self-contained, so the shared v1 path below
    // takes over after materialization.
    let spill_exh = if exhausted.is_some() && !exhausted_in_init && ck.active() {
        let snap = spill_snapshot(
            &mut arena,
            &mut edge_store,
            &init,
            &queue,
            options,
            sys_hash,
            transitions_total,
            &meter,
            &rec,
        )
        .map_err(CheckpointError::from)?;
        let token = ck.write(snap.clone(), &budget.recorder);
        Some((Some(Box::new(snap)), token))
    } else {
        None
    };
    let n = arena.len();
    let (states, fps, parents) = arena.into_parts()?;
    let mut edges = edge_store.into_edges(n)?;
    if let Some((id, partial)) = cut_edges {
        edges[id] = partial;
    }
    let (snapshot, resume_token) = match spill_exh {
        Some(pair) => pair,
        None => match &exhausted {
            Some(_) if !exhausted_in_init => seq_exhaustion_snapshot(
                &mut ck,
                budget,
                &states,
                &init,
                &edges,
                &parents,
                states.len(),
                queue.make_contiguous(),
                options,
                false,
                sys_hash,
                None,
            ),
            _ => (None, None),
        },
    };
    // The final visited map: with no spilled runs the hot tier *is*
    // the first-id-wins map — move it. Otherwise rebuild it from the
    // fingerprints, exactly like the resume path does.
    let map: FxHashMap<u64, usize> = if visited.runs.is_empty() {
        visited.hot
    } else {
        let mut map = FxHashMap::default();
        for (id, &fp) in fps.iter().enumerate() {
            map.entry(fp & mask).or_insert(id);
        }
        map
    };
    let graph = StateGraph {
        states,
        visited: Visited::Fingerprint { map, mask },
        init,
        edges,
        parents,
        reduced: false,
        canon: None,
    };
    let outcome = match exhausted {
        None => Outcome::Complete,
        Some(reason) => Outcome::Exhausted {
            reason,
            frontier_size: queue.len(),
            stats: graph.stats(),
            resume: resume_token,
        },
    };
    Ok(Exploration {
        frontier: queue.into_iter().collect(),
        graph,
        outcome,
        reduction: None,
        snapshot,
    })
}

/// The exact-mode engine; mirrors `explore_sequential_exact`, with the
/// whole-state visited map replaced by fingerprint candidates verified
/// against arena bytes — collision-free like the original, bounded
/// like the store.
fn explore_spill_exact(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    resume: Option<&Snapshot>,
    mem: usize,
    dir: &Path,
) -> Result<Exploration, CheckError> {
    let compiled = CompiledSystem::compile(system);
    let mut scratch = EvalScratch::new();
    let mut succ: Vec<(usize, State)> = Vec::new();
    let mask = options.mask();
    let sys_hash = checkpoint::system_hash(system);
    let mut ck = Checkpointer::new(budget.checkpoint.clone());
    let rec = budget.recorder.clone();
    let t = Tuning::for_budget(mem);
    let mut arena = Arena::create(system, dir, &t).map_err(CheckpointError::from)?;
    let mut edge_store = EdgeSink::create(dir, &t).map_err(CheckpointError::from)?;
    let mut visited = SpillVisited::create(dir, &t).map_err(CheckpointError::from)?;
    let mut init: Vec<usize> = Vec::new();
    let mut queue = VecDeque::new();
    let mut transitions_total: u64 = 0;
    let mut exhausted: Option<ExhaustReason> = None;
    let mut exhausted_in_init = false;
    let mut cut_edges: Option<(usize, Vec<Edge>)> = None;
    let mut edge_buf: Vec<Edge> = Vec::new();
    let mut cand: Vec<u64> = Vec::new();
    let meter;
    if let Some(snap) = resume {
        meter = Meter::start_resumed(budget, snap.states_used(), snap.transitions_used());
        reingest(
            snap,
            options,
            mask,
            &mut arena,
            &mut edge_store,
            &mut visited,
            &mut init,
            &mut queue,
            &mut transitions_total,
            &meter,
            &rec,
        )?;
    } else {
        let init_states = system.init().states(system.universe())?;
        if init_states.is_empty() {
            return Err(CheckError::NoInitialStates);
        }
        meter = Meter::start(budget);
        let _init_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreInit);
        for s in init_states {
            let fp = s.fingerprint();
            if find_exact(&mut visited, &mut arena, &mut cand, &s, fp)?.is_some() {
                continue;
            }
            if let Some(reason) = meter.charge_state() {
                exhausted = Some(reason);
                exhausted_in_init = true;
                break;
            }
            let id = arena.len();
            if let Some(info) = visited.insert(fp, id as u64).map_err(CheckpointError::from)? {
                note_spill(&meter, &rec, &info);
            }
            arena
                .push(&s, fp, None, &meter, &rec)
                .map_err(CheckpointError::from)?;
            init.push(id);
            queue.push_back(id);
        }
    }
    let expand_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreExpand);
    'bfs: while exhausted.is_none() {
        if let Some(reason) = meter.checkpoint() {
            exhausted = Some(reason);
            break;
        }
        if ck.due(1) {
            let snap = spill_snapshot(
                &mut arena,
                &mut edge_store,
                &init,
                &queue,
                options,
                sys_hash,
                transitions_total,
                &meter,
                &rec,
            )
            .map_err(CheckpointError::from)?;
            ck.write(snap, &budget.recorder);
        }
        let Some(id) = queue.pop_front() else {
            break;
        };
        let (parent, _) = arena.entry(id)?;
        compiled.successors_into(&parent, &mut succ, &mut scratch)?;
        edge_buf.clear();
        let mut cut = false;
        for (action, s) in succ.drain(..) {
            if let Some(reason) = meter.charge_transition() {
                queue.push_front(id);
                exhausted = Some(reason);
                cut = true;
                break;
            }
            let fp = s.fingerprint();
            let target = match find_exact(&mut visited, &mut arena, &mut cand, &s, fp)? {
                Some(existing) => existing,
                None => {
                    if let Some(reason) = meter.charge_state() {
                        queue.push_front(id);
                        exhausted = Some(reason);
                        cut = true;
                        break;
                    }
                    let nid = arena.len();
                    if let Some(info) =
                        visited.insert(fp, nid as u64).map_err(CheckpointError::from)?
                    {
                        note_spill(&meter, &rec, &info);
                    }
                    arena
                        .push(&s, fp, Some((id, action)), &meter, &rec)
                        .map_err(CheckpointError::from)?;
                    queue.push_back(nid);
                    nid
                }
            };
            edge_buf.push(Edge { action, target });
        }
        if cut {
            cut_edges = Some((id, std::mem::take(&mut edge_buf)));
            break 'bfs;
        }
        edge_store
            .push(id, &edge_buf, &meter, &rec)
            .map_err(CheckpointError::from)?;
        transitions_total += edge_buf.len() as u64;
    }
    drop(expand_phase);
    if rec.enabled() {
        let a = arena.store.cache_stats();
        let e = edge_store.store.cache_stats();
        rec.record(&Event::CacheStats {
            hits: a.hits + e.hits,
            misses: a.misses + e.misses,
            evictions: a.evictions + e.evictions,
            resident_bytes: a.resident_bytes + e.resident_bytes,
            spilled_bytes: meter.spilled_bytes(),
        });
    }
    // Exhaustion snapshot, spill form: when a checkpoint spec keeps
    // the segment directory alive the final snapshot references the
    // sealed segments too — O(hot tier), like the periodic ones. With
    // an ephemeral directory (about to be removed) the in-memory
    // snapshot must be self-contained, so the shared v1 path below
    // takes over after materialization.
    let spill_exh = if exhausted.is_some() && !exhausted_in_init && ck.active() {
        let snap = spill_snapshot(
            &mut arena,
            &mut edge_store,
            &init,
            &queue,
            options,
            sys_hash,
            transitions_total,
            &meter,
            &rec,
        )
        .map_err(CheckpointError::from)?;
        let token = ck.write(snap.clone(), &budget.recorder);
        Some((Some(Box::new(snap)), token))
    } else {
        None
    };
    let n = arena.len();
    let (states, _, parents) = arena.into_parts()?;
    let mut edges = edge_store.into_edges(n)?;
    if let Some((id, partial)) = cut_edges {
        edges[id] = partial;
    }
    let (snapshot, resume_token) = match spill_exh {
        Some(pair) => pair,
        None => match &exhausted {
            Some(_) if !exhausted_in_init => seq_exhaustion_snapshot(
                &mut ck,
                budget,
                &states,
                &init,
                &edges,
                &parents,
                states.len(),
                queue.make_contiguous(),
                options,
                false,
                sys_hash,
                None,
            ),
            _ => (None, None),
        },
    };
    let mut exact = std::collections::HashMap::new();
    for (id, s) in states.iter().enumerate() {
        exact.insert(s.clone(), id);
    }
    let graph = StateGraph {
        states,
        visited: Visited::Exact(exact),
        init,
        edges,
        parents,
        reduced: false,
        canon: None,
    };
    let outcome = match exhausted {
        None => Outcome::Complete,
        Some(reason) => Outcome::Exhausted {
            reason,
            frontier_size: queue.len(),
            stats: graph.stats(),
            resume: resume_token,
        },
    };
    Ok(Exploration {
        frontier: queue.into_iter().collect(),
        graph,
        outcome,
        reduction: None,
        snapshot,
    })
}

/// Exact-mode membership: gathers fingerprint candidates from both
/// visited tiers, then verifies each against the arena. Returns the
/// id whose record *is* `s`, or `None` — fingerprint collisions give
/// false candidates, never false answers.
fn find_exact(
    visited: &mut SpillVisited,
    arena: &mut Arena,
    cand: &mut Vec<u64>,
    s: &State,
    fp: u64,
) -> Result<Option<usize>, CheckpointError> {
    visited.candidates(fp, cand)?;
    for &cid in cand.iter() {
        let id = cid as usize;
        if arena.holds(id, s)? {
            return Ok(Some(id));
        }
    }
    Ok(None)
}
