//! The barrier-free work-stealing exploration engine
//! ([`explore_parallel_ws`](crate::explore_parallel_ws)).
//!
//! Where the level-synchronous engine alternates compute levels with
//! full barriers (every worker idles while the slowest finishes the
//! level, then a renumber/checkpoint window runs single-threaded),
//! this engine keeps every worker continuously fed:
//!
//! * **Per-worker deques, work stealing.** Each worker owns a deque of
//!   discovered-but-unexpanded states. It pops from the front of its
//!   own deque and pushes children to the back; when its deque runs
//!   dry it steals from the *back* of a peer's. There is no frontier
//!   cursor and no level boundary.
//! * **Quiescence termination.** A shared `in_flight` counter tracks
//!   states that are queued or mid-expansion (incremented when a new
//!   state is interned, decremented when its expansion completes —
//!   children are counted before the parent is released, so the
//!   counter cannot transiently hit zero while work remains). Workers
//!   that find nothing to claim spin-yield until `in_flight == 0`,
//!   which proves global exhaustion.
//! * **Packed states.** When the system's declared domains compile to
//!   a [`PackedLayout`], states live as fixed-width packed byte runs
//!   in per-shard arenas: guards and updates evaluate against a
//!   buffer unpacked into a *reused* `Vec<Value>`
//!   ([`CompiledSystem::for_each_successor_values`]), child
//!   fingerprints come from the layout's incremental Zobrist delta,
//!   and the hot path allocates no `Value` trees at all. Systems
//!   whose domains do not compile fall back to the `Value`-tree
//!   representation transparently.
//! * **Lock-striped visited set.** The visited set is sharded by
//!   fingerprint prefix into [`NUM_SHARDS`] independently-locked
//!   stripes (reusing the provisional-id scheme of the
//!   level-synchronous engine), so interning scales with workers.
//!
//! Determinism is recovered after the fact, not maintained during the
//! run: workers record `(parent, action, child)` edges exactly as the
//! level-synchronous engine does, and the same canonical renumbering
//! replay ([`replay_records`]) rebuilds the sequential BFS discovery
//! order — the finished graph is **byte-identical** to the sequential
//! engine's.
//!
//! Checkpointing: the engine has no level boundaries, so it takes no
//! mid-run snapshots; a checkpointing budget gets one `OTLASNAP`
//! snapshot at the exhaustion point (a quiescent point — all workers
//! stopped), rolled back to the deepest consistent level boundary by
//! the shared [`rollback_cut`], and resumable by any engine. Worker
//! panics are *not* survived degraded here (that is the
//! level-synchronous engine's feature): a panicking worker raises the
//! stop flag so its peers quiesce, then the panic propagates to the
//! caller instead of deadlocking quiescence detection.

use super::*;
use opentla_kernel::{PackedLayout, Value};
use std::collections::hash_map::Entry;
use std::collections::VecDeque;

/// One stripe of the concurrent visited set: dedup keys plus the
/// append-only arena behind them. Exactly one of `packed` / `states`
/// is in use per run, decided by whether a [`PackedLayout`] compiled.
struct WsShard {
    keys: WsKeys,
    /// Packed arena: `fps.len()` states of `stride` bytes each.
    packed: Vec<u8>,
    /// Tree arena (layout fallback).
    states: Vec<State>,
    /// Unmasked fingerprints, indexed by local id.
    fps: Vec<u64>,
}

enum WsKeys {
    /// Fingerprint mode: masked fingerprint → local id, for either
    /// arena representation.
    Fingerprint(FxHashMap<u64, u32>),
    /// Exact mode over packed arenas: the packed bytes *are* the key —
    /// packing is injective on in-domain states, so this is exact even
    /// under forced fingerprint collisions, with no tree states built.
    PackedExact(FxHashMap<Box<[u8]>, u32>),
    /// Exact mode over tree arenas: full-state keys, as in the other
    /// engines.
    TreeExact(HashMap<State, u32>),
}

impl WsShard {
    fn new(mode: VisitedMode, packed: bool) -> WsShard {
        WsShard {
            keys: match (mode, packed) {
                (VisitedMode::Fingerprint, _) => WsKeys::Fingerprint(FxHashMap::default()),
                (VisitedMode::Exact, true) => WsKeys::PackedExact(FxHashMap::default()),
                (VisitedMode::Exact, false) => WsKeys::TreeExact(HashMap::new()),
            },
            packed: Vec::new(),
            states: Vec::new(),
            fps: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.fps.len()
    }
}

/// Shared coordination state of one work-stealing run.
struct WsShared<'a> {
    shards: Striped<WsShard>,
    /// One deque per worker; owners pop the front, thieves the back.
    deques: Vec<Mutex<VecDeque<Pid>>>,
    /// Queued-or-expanding state count; zero proves quiescence.
    in_flight: AtomicUsize,
    /// Packed size of one state (0 on the tree fallback).
    stride: usize,
    mask: u64,
    meter: &'a Meter,
    stop: AtomicBool,
    reason: Mutex<Option<ExhaustReason>>,
    error: Mutex<Option<CheckError>>,
}

impl WsShared<'_> {
    fn note_exhaustion(&self, r: ExhaustReason) {
        lock(&self.reason).get_or_insert(r);
        self.stop.store(true, Ordering::Relaxed);
    }

    fn note_error(&self, e: CheckError) {
        lock(&self.error).get_or_insert(e);
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Fingerprint-mode intern over packed arenas: probes by
    /// fingerprint alone and materializes the child bytes — via
    /// `append`, writing directly into the shard arena — only on a
    /// vacant insert. Already-visited successors (the majority, once
    /// the frontier is deep) never build their bytes at all, the
    /// packed analogue of what [`State::fingerprint_with`] buys the
    /// sequential engine.
    fn intern_packed_fp(
        &self,
        fp: u64,
        append: impl FnOnce(&mut Vec<u8>),
    ) -> Result<(Pid, bool), ExhaustReason> {
        let key = fp & self.mask;
        let (shard_i, mut shard) = self.shards.lock_key(key);
        let WsShard {
            keys, packed, fps, ..
        } = &mut *shard;
        match keys {
            WsKeys::Fingerprint(map) => match map.entry(key) {
                Entry::Occupied(e) => Ok((pid(shard_i, *e.get() as usize), false)),
                Entry::Vacant(e) => {
                    if let Some(reason) = self.meter.charge_state() {
                        return Err(reason);
                    }
                    let local = fps.len();
                    append(packed);
                    fps.push(fp);
                    e.insert(local as u32);
                    Ok((pid(shard_i, local), true))
                }
            },
            _ => unreachable!("fingerprint intern on an exact-mode shard"),
        }
    }

    /// Exact-mode intern of a fully-built packed state (the bytes are
    /// the dedup key, so they must exist before the probe), charging
    /// the meter for genuinely new states (see [`ParShared::intern_with`]
    /// for the shared discipline).
    fn intern_packed(&self, fp: u64, child: &[u8]) -> Result<(Pid, bool), ExhaustReason> {
        let key = fp & self.mask;
        let (shard_i, mut shard) = self.shards.lock_key(key);
        let WsShard {
            keys, packed, fps, ..
        } = &mut *shard;
        match keys {
            WsKeys::PackedExact(map) => {
                if let Some(&local) = map.get(child) {
                    return Ok((pid(shard_i, local as usize), false));
                }
                if let Some(reason) = self.meter.charge_state() {
                    return Err(reason);
                }
                let local = fps.len();
                packed.extend_from_slice(child);
                fps.push(fp);
                map.insert(child.into(), local as u32);
                Ok((pid(shard_i, local), true))
            }
            _ => unreachable!("exact packed intern on a non-packed-exact shard"),
        }
    }

    /// The tree-fallback intern, mirroring [`ParShared::intern_with`].
    fn intern_tree(
        &self,
        fp: u64,
        make: impl FnOnce() -> State,
    ) -> Result<(Pid, bool), ExhaustReason> {
        let key = fp & self.mask;
        let (shard_i, mut shard) = self.shards.lock_key(key);
        let WsShard {
            keys, states, fps, ..
        } = &mut *shard;
        match keys {
            WsKeys::Fingerprint(map) => match map.entry(key) {
                Entry::Occupied(e) => Ok((pid(shard_i, *e.get() as usize), false)),
                Entry::Vacant(e) => {
                    if let Some(reason) = self.meter.charge_state() {
                        return Err(reason);
                    }
                    let local = fps.len();
                    states.push(make());
                    fps.push(fp);
                    e.insert(local as u32);
                    Ok((pid(shard_i, local), true))
                }
            },
            WsKeys::TreeExact(map) => {
                let t = make();
                if let Some(&local) = map.get(&t) {
                    return Ok((pid(shard_i, local as usize), false));
                }
                if let Some(reason) = self.meter.charge_state() {
                    return Err(reason);
                }
                let local = fps.len();
                states.push(t.clone());
                fps.push(fp);
                map.insert(t, local as u32);
                Ok((pid(shard_i, local), true))
            }
            WsKeys::PackedExact(_) => unreachable!("tree intern on a packed-mode shard"),
        }
    }

    /// Resume seeding for packed arenas — no meter charge (the meter
    /// is pre-charged with the snapshot's banked totals), first-id
    /// wins on masked-fingerprint collisions, as in [`ParShared::seed`].
    fn seed_packed(&self, fp: u64, bytes: &[u8]) -> Pid {
        let key = fp & self.mask;
        let (shard_i, mut shard) = self.shards.lock_key(key);
        let WsShard {
            keys, packed, fps, ..
        } = &mut *shard;
        match keys {
            WsKeys::Fingerprint(map) => match map.entry(key) {
                Entry::Occupied(e) => pid(shard_i, *e.get() as usize),
                Entry::Vacant(e) => {
                    let local = fps.len();
                    packed.extend_from_slice(bytes);
                    fps.push(fp);
                    e.insert(local as u32);
                    pid(shard_i, local)
                }
            },
            WsKeys::PackedExact(map) => {
                if let Some(&local) = map.get(bytes) {
                    return pid(shard_i, local as usize);
                }
                let local = fps.len();
                packed.extend_from_slice(bytes);
                fps.push(fp);
                map.insert(bytes.into(), local as u32);
                pid(shard_i, local)
            }
            WsKeys::TreeExact(_) => unreachable!("packed seed on a tree-mode shard"),
        }
    }

    /// Resume seeding for tree arenas.
    fn seed_tree(&self, s: &State, fp: u64) -> Pid {
        let key = fp & self.mask;
        let (shard_i, mut shard) = self.shards.lock_key(key);
        let WsShard {
            keys, states, fps, ..
        } = &mut *shard;
        match keys {
            WsKeys::Fingerprint(map) => match map.entry(key) {
                Entry::Occupied(e) => pid(shard_i, *e.get() as usize),
                Entry::Vacant(e) => {
                    let local = fps.len();
                    states.push(s.clone());
                    fps.push(fp);
                    e.insert(local as u32);
                    pid(shard_i, local)
                }
            },
            WsKeys::TreeExact(map) => {
                if let Some(&local) = map.get(s) {
                    return pid(shard_i, local as usize);
                }
                let local = fps.len();
                states.push(s.clone());
                fps.push(fp);
                map.insert(s.clone(), local as u32);
                pid(shard_i, local)
            }
            WsKeys::PackedExact(_) => unreachable!("tree seed on a packed-mode shard"),
        }
    }
}

/// One worker's accumulated output (owned by the coordinator, like
/// the level-synchronous engine's `WorkerOut`).
#[derive(Default)]
struct WsOut {
    /// `(parent, action, child)` records — each state is claimed by
    /// exactly one worker (deque pop is exclusive), so its edges form
    /// one contiguous run in action order in exactly one of these.
    edges: Vec<(Pid, u32, Pid)>,
    /// Parents whose expansion was cut short by budget exhaustion.
    interrupted: Vec<Pid>,
    claimed: u64,
    inserted: u64,
}

/// Claims the next parent: own deque front first, then a sweep
/// stealing from the backs of the peers'.
fn claim(shared: &WsShared<'_>, me: usize) -> Option<Pid> {
    if let Some(p) = lock(&shared.deques[me]).pop_front() {
        return Some(p);
    }
    let n = shared.deques.len();
    for k in 1..n {
        if let Some(p) = lock(&shared.deques[(me + k) % n]).pop_back() {
            return Some(p);
        }
    }
    None
}

/// The worker loop over packed arenas: copy the parent's bytes out of
/// its shard, unpack into a reused value buffer, evaluate successors,
/// derive child fingerprints incrementally, intern child bytes.
fn run_ws_worker_packed(
    shared: &WsShared<'_>,
    compiled: &CompiledSystem<'_>,
    layout: &PackedLayout,
    mode: VisitedMode,
    me: usize,
    out: &mut WsOut,
) {
    use std::ops::ControlFlow;

    let stride = shared.stride;
    let fp_probe = matches!(mode, VisitedMode::Fingerprint);
    let mut scratch = EvalScratch::new();
    let mut parent_buf: Vec<u8> = Vec::with_capacity(stride);
    let mut child_buf: Vec<u8> = Vec::with_capacity(stride);
    let mut values: Vec<Value> = Vec::new();
    // `(slot, new code)` deltas of the successor under construction —
    // duplicate-free because `GuardedAction` rejects duplicate update
    // targets, so old codes can be read from the parent bytes.
    let mut updates: Vec<(usize, u32)> = Vec::new();
    // Children discovered while expanding the current parent, pushed
    // to the deque in one batch (one lock per parent, not per child).
    let mut born: Vec<Pid> = Vec::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(reason) = shared.meter.checkpoint() {
            shared.note_exhaustion(reason);
            break;
        }
        let Some(parent) = claim(shared, me) else {
            if shared.in_flight.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::yield_now();
            continue;
        };
        out.claimed += 1;
        let parent_fp = {
            let shard = shared.shards.lock_shard(shard_of(parent));
            let local = local_of(parent);
            parent_buf.clear();
            parent_buf.extend_from_slice(&shard.packed[local * stride..(local + 1) * stride]);
            shard.fps[local]
        };
        layout.unpack_into(&parent_buf, &mut values);
        let result = compiled.for_each_successor_values(&values, &mut scratch, |action, assignments| {
            if let Some(reason) = shared.meter.charge_transition() {
                shared.note_exhaustion(reason);
                out.interrupted.push(parent);
                return ControlFlow::Break(());
            }
            let mut child_fp = parent_fp;
            updates.clear();
            for (v, val) in assignments {
                let slot = v.index();
                let old = layout.read_code(&parent_buf, slot);
                let new = layout
                    .code_of(slot, val)
                    .expect("stepper domain-checks every update value");
                if new != old {
                    child_fp ^= layout.fingerprint_delta(slot, old, new);
                    updates.push((slot, new));
                }
            }
            let interned = if fp_probe {
                // Fingerprint dedup: probe first, build the child's
                // bytes only if it is genuinely new.
                shared.intern_packed_fp(child_fp, |arena| {
                    let start = arena.len();
                    arena.extend_from_slice(&parent_buf);
                    for &(slot, new) in &updates {
                        layout.write_code(&mut arena[start..], slot, new);
                    }
                })
            } else {
                // Exact dedup keys on the bytes themselves, so they
                // must exist before the probe.
                child_buf.clear();
                child_buf.extend_from_slice(&parent_buf);
                for &(slot, new) in &updates {
                    layout.write_code(&mut child_buf, slot, new);
                }
                shared.intern_packed(child_fp, &child_buf)
            };
            match interned {
                Ok((child, is_new)) => {
                    if is_new {
                        out.inserted += 1;
                        shared.in_flight.fetch_add(1, Ordering::AcqRel);
                        born.push(child);
                    }
                    out.edges.push((parent, action as u32, child));
                    ControlFlow::Continue(())
                }
                Err(reason) => {
                    shared.note_exhaustion(reason);
                    out.interrupted.push(parent);
                    ControlFlow::Break(())
                }
            }
        });
        // Flush on every exit path — a counted-but-unqueued child
        // would wedge quiescence or drop out of the resume frontier.
        if !born.is_empty() {
            lock(&shared.deques[me]).extend(born.drain(..));
        }
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        if let Err(e) = result {
            shared.note_error(e);
            break;
        }
    }
}

/// The worker loop for the tree fallback: as the packed loop, but
/// states clone out of the arena and child fingerprints come from
/// [`State::fingerprint_with`].
fn run_ws_worker_tree(
    shared: &WsShared<'_>,
    compiled: &CompiledSystem<'_>,
    me: usize,
    out: &mut WsOut,
) {
    use std::ops::ControlFlow;

    let mut scratch = EvalScratch::new();
    let mut born: Vec<Pid> = Vec::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(reason) = shared.meter.checkpoint() {
            shared.note_exhaustion(reason);
            break;
        }
        let Some(parent) = claim(shared, me) else {
            if shared.in_flight.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::yield_now();
            continue;
        };
        out.claimed += 1;
        let (s, s_fp) = {
            let shard = shared.shards.lock_shard(shard_of(parent));
            let local = local_of(parent);
            (shard.states[local].clone(), shard.fps[local])
        };
        let result = compiled.for_each_successor(&s, &mut scratch, |action, assignments| {
            if let Some(reason) = shared.meter.charge_transition() {
                shared.note_exhaustion(reason);
                out.interrupted.push(parent);
                return ControlFlow::Break(());
            }
            let child_fp = s.fingerprint_with(s_fp, assignments);
            match shared.intern_tree(child_fp, || s.with(assignments)) {
                Ok((child, is_new)) => {
                    if is_new {
                        out.inserted += 1;
                        shared.in_flight.fetch_add(1, Ordering::AcqRel);
                        born.push(child);
                    }
                    out.edges.push((parent, action as u32, child));
                    ControlFlow::Continue(())
                }
                Err(reason) => {
                    shared.note_exhaustion(reason);
                    out.interrupted.push(parent);
                    ControlFlow::Break(())
                }
            }
        });
        // Flush on every exit path — a counted-but-unqueued child
        // would wedge quiescence or drop out of the resume frontier.
        if !born.is_empty() {
            lock(&shared.deques[me]).extend(born.drain(..));
        }
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        if let Err(e) = result {
            shared.note_error(e);
            break;
        }
    }
}

/// The work-stealing engine entry point; see the module docs. Called
/// by `explore_dispatch` whenever [`ExploreOptions::engine`] routes
/// here (reduction and panic-injection runs never do).
pub(super) fn explore_ws(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    threads: usize,
    resume: Option<&Snapshot>,
) -> Result<Exploration, CheckError> {
    let threads = threads.max(1);
    let compiled = CompiledSystem::compile(system);
    let sys_hash = checkpoint::system_hash(system);
    let mut ck = Checkpointer::new(budget.checkpoint.clone());
    let meter = match resume {
        Some(snap) => Meter::start_resumed(budget, snap.states_used(), snap.transitions_used()),
        None => Meter::start(budget),
    };

    let init_states: Option<Vec<State>> = match resume {
        Some(_) => None,
        None => {
            let states = system.init().states(system.universe())?;
            if states.is_empty() {
                return Err(CheckError::NoInitialStates);
            }
            Some(states)
        }
    };

    // Layout election: packed when the declared domains compile *and*
    // every seed state actually packs (any state this repo's engines
    // produce is in-domain, but the contract is checked, not assumed —
    // an out-of-domain seed falls the whole run back to trees).
    let layout_owned = PackedLayout::compile(system.vars()).filter(|l| {
        let packs = |s: &State| l.pack(s).is_some();
        match (&init_states, resume) {
            (Some(states), _) => states.iter().all(packs),
            (None, Some(snap)) => snap.states.iter().all(packs),
            (None, None) => true,
        }
    });
    let layout = layout_owned.as_ref();
    let stride = layout.map_or(0, |l| l.stride());

    let shared = WsShared {
        shards: Striped::new(|| WsShard::new(options.mode, layout.is_some())),
        deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        in_flight: AtomicUsize::new(0),
        stride,
        mask: options.mask(),
        meter: &meter,
        stop: AtomicBool::new(false),
        reason: Mutex::new(None),
        error: Mutex::new(None),
    };

    let mut init_pids: Vec<Pid> = Vec::new();
    let mut all_edges: Vec<Vec<(Pid, u32, Pid)>> = Vec::new();
    let mut exhausted_in_init = false;
    let frontier_seed: Vec<Pid>;
    let mut buf: Vec<u8> = Vec::new();
    match (init_states, resume) {
        (None, Some(snap)) => {
            // Resume: seed the shards with the snapshot arena in
            // canonical order (reproducing first-id-wins fingerprint
            // dedup) and turn the snapshot's edges into one
            // pre-recorded run vector, exactly as the level engine
            // does — the canonical replay cannot tell banked work from
            // new work. Seeding is meter-free; the meter was
            // pre-charged above.
            let pid_of: Vec<Pid> = snap
                .states
                .iter()
                .map(|s| {
                    let fp = s.fingerprint();
                    match layout {
                        Some(l) => {
                            let ok = l.pack_into(s.values(), &mut buf);
                            debug_assert!(ok, "layout election verified snapshot states pack");
                            shared.seed_packed(fp, &buf)
                        }
                        None => shared.seed_tree(s, fp),
                    }
                })
                .collect();
            init_pids = snap.init.iter().map(|&i| pid_of[i]).collect();
            let mut records: Vec<(Pid, u32, Pid)> = Vec::new();
            for (id, run) in snap.edges.iter().enumerate() {
                for e in run {
                    records.push((pid_of[id], e.action as u32, pid_of[e.target]));
                }
            }
            if !records.is_empty() {
                all_edges.push(records);
            }
            frontier_seed = snap.frontier.iter().map(|&i| pid_of[i]).collect();
        }
        (Some(states), _) => {
            // Initial states intern sequentially so their canonical
            // order is the enumeration order, as in every engine.
            let _init_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreInit);
            for s in states {
                let fp = s.fingerprint();
                let r = match layout {
                    Some(l) => {
                        let ok = l.pack_into(s.values(), &mut buf);
                        debug_assert!(ok, "layout election verified init states pack");
                        match options.mode {
                            VisitedMode::Fingerprint => shared
                                .intern_packed_fp(fp, |arena| arena.extend_from_slice(&buf)),
                            VisitedMode::Exact => shared.intern_packed(fp, &buf),
                        }
                    }
                    None => shared.intern_tree(fp, move || s),
                };
                match r {
                    Ok((p, true)) => init_pids.push(p),
                    Ok((_, false)) => {}
                    Err(reason) => {
                        shared.note_exhaustion(reason);
                        exhausted_in_init = true;
                        break;
                    }
                }
            }
            frontier_seed = init_pids.clone();
        }
        (None, None) => unreachable!("fresh runs enumerate initial states above"),
    }

    let observe = meter.observed();
    let mut pending: Vec<Pid> = Vec::new();
    if exhausted_in_init {
        pending.extend(&frontier_seed);
    } else {
        // Seed the deques round-robin (ownership is only a locality
        // hint — stealing erases any imbalance) and prime the
        // quiescence counter with the seeded work.
        for (i, &p) in frontier_seed.iter().enumerate() {
            lock(&shared.deques[i % threads]).push_back(p);
        }
        shared
            .in_flight
            .store(frontier_seed.len(), Ordering::Release);
        let expand_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreExpand);
        let outs: Vec<WsOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|me| {
                    let shared = &shared;
                    let compiled = &compiled;
                    scope.spawn(move || {
                        let mut out = WsOut::default();
                        let body = std::panic::AssertUnwindSafe(|| match layout {
                            Some(l) => {
                                run_ws_worker_packed(shared, compiled, l, options.mode, me, &mut out)
                            }
                            None => run_ws_worker_tree(shared, compiled, me, &mut out),
                        });
                        if let Err(payload) = std::panic::catch_unwind(body) {
                            // Backstop, not panic *tolerance*: raise
                            // the stop flag so the peers' quiescence
                            // spin terminates (this worker's in_flight
                            // contribution is lost with it), then let
                            // the panic surface through the scope.
                            shared.stop.store(true, Ordering::Relaxed);
                            std::panic::resume_unwind(payload);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| -> WsOut { std::panic::resume_unwind(p) }))
                .collect()
        });
        drop(expand_phase);
        for (worker, out) in outs.iter().enumerate() {
            if observe {
                budget.recorder.record(&Event::WorkerLevel {
                    worker,
                    level: 0,
                    claimed: out.claimed,
                    inserted: out.inserted,
                });
            }
        }
        for mut out in outs {
            if !out.edges.is_empty() {
                all_edges.push(std::mem::take(&mut out.edges));
            }
            pending.append(&mut out.interrupted);
        }
        // Deque remnants after a budget stop are honestly pending.
        for d in &shared.deques {
            pending.extend(lock(d).drain(..));
        }
    }

    if let Some(e) = lock(&shared.error).take() {
        return Err(e);
    }
    let WsShared { shards, reason, .. } = shared;
    let shards: Vec<WsShard> = shards.into_shards();
    let reason = reason.into_inner().unwrap_or_else(PoisonError::into_inner);

    let renumber_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreRenumber);
    let arena_lens: Vec<usize> = shards.iter().map(WsShard::len).collect();
    let (mut replay, order) = replay_records_order(&arena_lens, &all_edges, &init_pids);
    let state_of = |p: Pid| {
        let sh = &shards[shard_of(p)];
        let local = local_of(p);
        match layout {
            Some(l) => l.unpack(&sh.packed[local * stride..(local + 1) * stride]),
            None => sh.states[local].clone(),
        }
    };
    // Materialization is the renumber pass's dominant cost on packed
    // runs (one unpack + tree allocation per state) and each state is
    // independent once the canonical order is fixed — fan it out.
    replay.states = if threads > 1 && order.len() >= 4096 {
        let chunk = order.len().div_ceil(threads);
        let mut states: Vec<State> = Vec::with_capacity(order.len());
        std::thread::scope(|scope| {
            let parts: Vec<_> = order
                .chunks(chunk)
                .map(|c| scope.spawn(|| c.iter().map(|&p| state_of(p)).collect::<Vec<_>>()))
                .collect();
            for h in parts {
                states.extend(
                    h.join()
                        .unwrap_or_else(|p| -> Vec<State> { std::panic::resume_unwind(p) }),
                );
            }
        });
        states
    } else {
        order.iter().map(|&p| state_of(p)).collect()
    };
    let Replay {
        canon,
        states,
        edges,
        parents,
        init,
        depth,
    } = replay;

    // Exhaustion snapshot at the quiescent point: the shared rollback
    // cut lands on the deepest consistent level boundary of the
    // *canonical* graph — sound here for the same reason as in the
    // level engine, because the cut is computed on replay depths, not
    // on the nondeterministic discovery order.
    let (snapshot, resume_token) = match reason {
        Some(_) if !exhausted_in_init => {
            let (keep, frontier_ids) = rollback_cut(&canon, &depth, states.len(), &pending);
            seq_exhaustion_snapshot(
                &mut ck,
                budget,
                &states,
                &init,
                &edges,
                &parents,
                keep,
                &frontier_ids,
                options,
                false,
                sys_hash,
                None,
            )
        }
        _ => (None, None),
    };

    let visited = match options.mode {
        VisitedMode::Fingerprint => {
            let mut map: FxHashMap<u64, usize> = FxHashMap::default();
            map.reserve(states.len());
            for (si, shard) in shards.iter().enumerate() {
                if let WsKeys::Fingerprint(m) = &shard.keys {
                    for (&fp, &local) in m {
                        let id = canon[si][local as usize];
                        if id != u32::MAX {
                            map.insert(fp, id as usize);
                        }
                    }
                }
            }
            Visited::Fingerprint {
                map,
                mask: options.mask(),
            }
        }
        VisitedMode::Exact => {
            // Exact keys are the states themselves, and the canonical
            // arena lists each exactly once — rebuilding from it is
            // equivalent to remapping the shard maps (and avoids
            // unpacking the packed keys a second time).
            let mut map: HashMap<State, usize> = HashMap::with_capacity(states.len());
            for (id, s) in states.iter().enumerate() {
                map.insert(s.clone(), id);
            }
            Visited::Exact(map)
        }
    };
    let graph = StateGraph {
        states,
        visited,
        init,
        edges,
        parents,
        reduced: false,
        canon: None,
    };
    drop(renumber_phase);

    let outcome = match reason {
        None => Outcome::Complete,
        Some(reason) => Outcome::Exhausted {
            reason,
            frontier_size: {
                pending.sort_unstable();
                pending.dedup();
                pending.len()
            },
            stats: graph.stats(),
            resume: resume_token,
        },
    };
    let mut frontier: Vec<usize> = pending
        .iter()
        .filter_map(|&p| {
            let c = canon[shard_of(p)][local_of(p)];
            (c != u32::MAX).then_some(c as usize)
        })
        .collect();
    frontier.sort_unstable();
    frontier.dedup();
    Ok(Exploration {
        graph,
        outcome,
        frontier,
        reduction: None,
        snapshot,
    })
}
