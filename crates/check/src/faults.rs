//! Fault-injection combinators: `System` → `System` transformers that
//! add adversarial behavior.
//!
//! In *Open Systems in TLA* the environment is an adversary: `E ⊳ M`
//! obliges the guarantee `M` to hold strictly longer than the
//! assumption `E`, so the interesting behaviors are exactly the ones
//! where the environment misbehaves. These combinators manufacture
//! such behaviors mechanically:
//!
//! * [`lossy`] — a faulty variant of an action completes its
//!   handshake but *drops* designated payload variables;
//! * [`duplicate`] — a faulty variant fires an action twice in one
//!   step (sequential self-composition), duplicating its effect;
//! * [`crash_restart`] — a component's state spontaneously reverts to
//!   an initial assignment;
//! * [`hostile_env`] — a saboteur falsifies a given assumption
//!   predicate at a controllable step, driven by a fresh step clock.
//!
//! Every combinator only **adds** actions (and, for [`hostile_env`], a
//! fresh clock variable), never removes or strengthens existing ones —
//! so the faulted system's state space is a superset of the original's
//! and every original behavior survives fault injection. Fault actions
//! are appended after the original action list, which keeps BFS
//! exploration deterministic and keeps original action indices (and
//! thus fairness constraints) valid.

use crate::{CheckError, GuardedAction, Init, System};
use opentla_kernel::{Domain, Expr, State, Substitution, Value, VarId};

/// Prefix given to every injected fault action, so diagnostics can
/// tell faults from protocol steps (`faults::is_fault_action`).
pub const FAULT_PREFIX: &str = "fault:";

/// Whether an action name denotes an injected fault.
pub fn is_fault_action(name: &str) -> bool {
    name.starts_with(FAULT_PREFIX)
}

fn bad_id(action_id: usize, system: &System) -> CheckError {
    CheckError::Precondition {
        message: format!(
            "fault injection refers to action #{action_id}, but the system has only {} actions",
            system.actions().len()
        ),
    }
}

/// Reports each injected fault action as *armed* to the process-wide
/// recorder (`OPENTLA_OBS`), so a run report shows which adversarial
/// behaviors were in play even before any of them fires on a trace.
fn note_armed(extra: &[GuardedAction]) {
    let rec = crate::obs::global();
    if !rec.enabled() {
        return;
    }
    for a in extra {
        rec.record(&crate::obs::Event::FaultActivation {
            action: a.name(),
            step: 0,
            kind: "armed",
        });
    }
}

/// Rebuilds `system` with `extra` actions appended (fairness
/// constraints carry over: they refer to original action indices,
/// which appending preserves).
fn with_extra_actions(system: &System, extra: Vec<GuardedAction>) -> System {
    note_armed(&extra);
    let mut actions = system.actions().to_vec();
    actions.extend(extra);
    let mut faulted = System::new(system.vars().clone(), system.init().clone(), actions);
    for f in system.fairness() {
        faulted = faulted.with_fairness(f.clone());
    }
    faulted
}

/// Adds a *lossy* variant of each targeted action: the variant has the
/// same guard but omits the updates of every variable in `dropped` —
/// the handshake completes while the payload is lost in transit.
///
/// Variables in `dropped` that a targeted action never updates are
/// ignored for that action. An action whose every update is dropped
/// becomes a pure handshake (the guard fires, nothing changes).
///
/// # Errors
///
/// [`CheckError::Precondition`] if an action id is out of range.
pub fn lossy(
    system: &System,
    action_ids: &[usize],
    dropped: &[VarId],
) -> Result<System, CheckError> {
    let mut extra = Vec::new();
    for &id in action_ids {
        let action = system.actions().get(id).ok_or_else(|| bad_id(id, system))?;
        let kept: Vec<(VarId, Expr)> = action
            .updates()
            .iter()
            .filter(|(v, _)| !dropped.contains(v))
            .cloned()
            .collect();
        extra.push(GuardedAction::new(
            format!("{FAULT_PREFIX}lossy[{}]", action.name()),
            action.guard().clone(),
            kept,
        ));
    }
    Ok(with_extra_actions(system, extra))
}

/// Adds a *duplicating* variant of each targeted action: the variant
/// performs the action **twice in one step** (sequential
/// self-composition), modeling e.g. a channel that delivers a message
/// two times. The variant's guard requires both firings to be enabled
/// (the second under the first's updates), so an action that disables
/// itself — a bit-flip handshake, say — simply has an unsatisfiable
/// duplicate, which is itself a meaningful robustness finding.
///
/// # Errors
///
/// [`CheckError::Precondition`] if an action id is out of range;
/// kernel errors if the substitution fails.
pub fn duplicate(system: &System, action_ids: &[usize]) -> Result<System, CheckError> {
    let mut extra = Vec::new();
    for &id in action_ids {
        let action = system.actions().get(id).ok_or_else(|| bad_id(id, system))?;
        // σ maps each updated variable to its first-firing value, so
        // σ(e) evaluates e in the intermediate state.
        let sigma = Substitution::new(action.updates().iter().cloned());
        let second_guard = sigma.expr(action.guard())?;
        let updates: Vec<(VarId, Expr)> = action
            .updates()
            .iter()
            .map(|(v, e)| Ok((*v, sigma.expr(e)?)))
            .collect::<Result<_, CheckError>>()?;
        extra.push(GuardedAction::new(
            format!("{FAULT_PREFIX}dup[{}]", action.name()),
            action.guard().clone().and(second_guard),
            updates,
        ));
    }
    Ok(with_extra_actions(system, extra))
}

/// Adds a *crash-restart* fault: at any moment, the component owning
/// `component_vars` may lose its state and revert to the assignment
/// `reset_init` (typically the component's initial assignment). The
/// fault is guarded on the component actually being away from its
/// reset state, so it never introduces pure self-loops.
///
/// # Errors
///
/// [`CheckError::Precondition`] if `reset_init` does not cover exactly
/// `component_vars`, or assigns a value outside a variable's domain.
pub fn crash_restart(
    system: &System,
    component_vars: &[VarId],
    reset_init: &[(VarId, Value)],
) -> Result<System, CheckError> {
    for &v in component_vars {
        if !reset_init.iter().any(|(rv, _)| *rv == v) {
            return Err(CheckError::Precondition {
                message: format!(
                    "crash_restart: component variable {} has no reset value",
                    system.vars().name(v)
                ),
            });
        }
    }
    for (v, value) in reset_init {
        if !component_vars.contains(v) {
            return Err(CheckError::Precondition {
                message: format!(
                    "crash_restart: reset assigns {} which is not a component variable",
                    system.vars().name(*v)
                ),
            });
        }
        if !system.vars().domain(*v).contains(value) {
            return Err(CheckError::Precondition {
                message: format!(
                    "crash_restart: reset value {value} is outside the domain of {}",
                    system.vars().name(*v)
                ),
            });
        }
    }
    let at_reset = Expr::all(
        reset_init
            .iter()
            .map(|(v, value)| Expr::var(*v).eq(Expr::con(value.clone()))),
    );
    let updates: Vec<(VarId, Expr)> = reset_init
        .iter()
        .map(|(v, value)| (*v, Expr::con(value.clone())))
        .collect();
    let crash = GuardedAction::new(
        format!("{FAULT_PREFIX}crash_restart"),
        at_reset.not(),
        updates,
    );
    Ok(with_extra_actions(system, vec![crash]))
}

/// The name of the step clock [`hostile_env`] declares.
pub const HOSTILE_CLOCK: &str = "hostile_clock";

/// Manufactures a hostile environment inside `system`: declares a
/// fresh step clock (every action now also advances the clock,
/// saturating at `break_at`) and adds saboteur actions that are
/// enabled exactly when the clock has reached `break_at` and the
/// `assumption` predicate still holds — each saboteur overwrites the
/// assumption's variables with an assignment that **falsifies** it.
///
/// The returned system therefore contains, alongside every original
/// behavior, behaviors in which the assumption `E` is broken at step
/// `break_at` (or any later step, if the saboteur defers) — precisely
/// the adversarial runs against which `E ⊳ M` demands that the
/// guarantee hold one step longer. Once broken, the assumption stays
/// broken for the saboteur's purposes (its guard requires `E` to
/// hold), but normal actions continue, letting checkers observe how
/// long `M` outlives `E`.
///
/// Falsifying assignments are found by brute-force search over the
/// product of the assumption's variables' domains (exponential in the
/// number of distinct variables in `assumption` — keep assumptions
/// local, as the paper's per-component assumptions are).
///
/// # Errors
///
/// [`CheckError::Precondition`] if `assumption` mentions primed
/// variables, is unfalsifiable over its variables' domains, or
/// `break_at` is negative; evaluation errors if `assumption` is not
/// boolean.
pub fn hostile_env(
    system: &System,
    assumption: &Expr,
    break_at: i64,
) -> Result<System, CheckError> {
    if break_at < 0 {
        return Err(CheckError::Precondition {
            message: format!("hostile_env: break_at must be non-negative, got {break_at}"),
        });
    }
    if !assumption.is_state_fn() {
        return Err(CheckError::Precondition {
            message: "hostile_env: the assumption must be a state predicate (no primes)"
                .to_string(),
        });
    }
    let support: Vec<VarId> = {
        let mut vs: Vec<VarId> = assumption.unprimed_vars().iter().collect();
        vs.sort();
        vs
    };
    if support.is_empty() {
        return Err(CheckError::Precondition {
            message: "hostile_env: the assumption mentions no variables, so no \
                      assignment can falsify it"
                .to_string(),
        });
    }

    // Fresh clock variable counting steps (saturating at break_at).
    let mut vars = system.vars().clone();
    let clock = vars.declare(HOSTILE_CLOCK, Domain::int_range(0, break_at));
    let tick = Expr::var(clock)
        .lt(Expr::int(break_at))
        .ite(Expr::var(clock).add(Expr::int(1)), Expr::var(clock));

    // Every original action also advances the clock.
    let mut actions: Vec<GuardedAction> = system
        .actions()
        .iter()
        .map(|a| {
            let mut updates = a.updates().to_vec();
            updates.push((clock, tick.clone()));
            GuardedAction::new(a.name(), a.guard().clone(), updates)
        })
        .collect();

    // Brute-force the falsifying assignments of the assumption over
    // its support's domains, evaluated on a scratch state (the
    // predicate's value depends only on the support).
    let mut scratch: Vec<Value> = system
        .vars()
        .iter()
        .map(|v| system.vars().domain(v).values()[0].clone())
        .collect();
    scratch.push(Value::Int(0)); // the clock
    let mut falsifying: Vec<Vec<Value>> = Vec::new();
    let mut combo = vec![0usize; support.len()];
    loop {
        for (slot, &v) in combo.iter().zip(&support) {
            scratch[v.index()] = vars.domain(v).values()[*slot].clone();
        }
        let state = State::new(scratch.clone());
        if !assumption.holds_state(&state)? {
            falsifying.push(
                support
                    .iter()
                    .map(|v| scratch[v.index()].clone())
                    .collect(),
            );
        }
        // Advance the mixed-radix counter over the support domains.
        let mut i = 0;
        loop {
            if i == combo.len() {
                break;
            }
            combo[i] += 1;
            if combo[i] < vars.domain(support[i]).len() {
                break;
            }
            combo[i] = 0;
            i += 1;
        }
        if i == combo.len() {
            break;
        }
    }
    if falsifying.is_empty() {
        return Err(CheckError::Precondition {
            message: "hostile_env: the assumption is valid over its variables' domains; \
                      nothing to falsify"
                .to_string(),
        });
    }

    let armed = Expr::var(clock).eq(Expr::int(break_at));
    let saboteurs_from = actions.len();
    for (i, assignment) in falsifying.iter().enumerate() {
        let updates: Vec<(VarId, Expr)> = support
            .iter()
            .zip(assignment)
            .map(|(v, value)| (*v, Expr::con(value.clone())))
            .collect();
        actions.push(GuardedAction::new(
            format!("{FAULT_PREFIX}hostile_env[{i}]"),
            armed.clone().and(assumption.clone()),
            updates,
        ));
    }
    note_armed(&actions[saboteurs_from..]);

    let init = system.init().clone().merge(&Init::new([(clock, Value::Int(0))]));
    let mut faulted = System::new(vars, init, actions);
    for f in system.fairness() {
        faulted = faulted.with_fairness(f.clone());
    }
    Ok(faulted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, explore_governed, Budget, ExploreOptions};
    use opentla_kernel::Vars;

    /// A two-variable handshake: `send` raises a flag and writes a
    /// payload; `ack` lowers the flag.
    fn handshake() -> (System, VarId, VarId) {
        let mut vars = Vars::new();
        let flag = vars.declare("flag", Domain::bits());
        let data = vars.declare("data", Domain::int_range(0, 2));
        let send = GuardedAction::new(
            "send",
            Expr::var(flag).eq(Expr::int(0)),
            vec![(flag, Expr::int(1)), (data, Expr::int(2))],
        );
        let ack = GuardedAction::new(
            "ack",
            Expr::var(flag).eq(Expr::int(1)),
            vec![(flag, Expr::int(0)), (data, Expr::int(0))],
        );
        let sys = System::new(
            vars,
            Init::new([(flag, Value::Int(0)), (data, Value::Int(0))]),
            vec![send, ack],
        );
        (sys, flag, data)
    }

    #[test]
    fn lossy_adds_payload_dropping_variant() {
        let (sys, _, data) = handshake();
        let faulted = lossy(&sys, &[0], &[data]).unwrap();
        assert_eq!(faulted.actions().len(), 3);
        let fault = &faulted.actions()[2];
        assert!(is_fault_action(fault.name()));
        assert_eq!(fault.updates().len(), 1); // data dropped, flag kept
        // The faulted system reaches a state the original cannot:
        // flag = 1 with data still 0.
        let base = explore(&sys, &ExploreOptions::default()).unwrap();
        let bad = explore(&faulted, &ExploreOptions::default()).unwrap();
        assert!(bad.len() > base.len());
    }

    #[test]
    fn duplicate_composes_action_with_itself() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 8));
        let bump = GuardedAction::new(
            "bump",
            Expr::var(x).lt(Expr::int(7)),
            vec![(x, Expr::var(x).add(Expr::int(1)))],
        );
        let sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![bump]);
        let faulted = duplicate(&sys, &[0]).unwrap();
        let graph = explore(&faulted, &ExploreOptions::default()).unwrap();
        // From x the duplicate reaches x+2 in one step.
        let s0 = graph.init()[0];
        let targets: Vec<i64> = graph
            .edges(s0)
            .iter()
            .map(|e| match graph.state(e.target).get(x) {
                Value::Int(i) => *i,
                other => panic!("unexpected value {other}"),
            })
            .collect();
        assert!(targets.contains(&1) && targets.contains(&2));
    }

    #[test]
    fn duplicate_of_self_disabling_action_is_unsatisfiable() {
        let (sys, _, _) = handshake();
        // `send` flips flag 0→1 and is guarded on flag = 0: firing it
        // twice in a row is impossible, so the duplicate never fires.
        let faulted = duplicate(&sys, &[0]).unwrap();
        let base = explore(&sys, &ExploreOptions::default()).unwrap();
        let dup = explore(&faulted, &ExploreOptions::default()).unwrap();
        assert_eq!(base.len(), dup.len());
        assert_eq!(base.edge_count(), dup.edge_count());
    }

    #[test]
    fn crash_restart_reverts_to_reset_assignment() {
        let (sys, flag, data) = handshake();
        let reset = [(flag, Value::Int(0)), (data, Value::Int(0))];
        let faulted = crash_restart(&sys, &[flag, data], &reset).unwrap();
        let graph = explore(&faulted, &ExploreOptions::default()).unwrap();
        // Some non-initial state has a crash edge straight back to
        // the reset assignment.
        let crash_id = faulted.actions().len() - 1;
        let mut saw_crash = false;
        for id in 0..graph.len() {
            for e in graph.edges(id) {
                if e.action == crash_id {
                    saw_crash = true;
                    let t = graph.state(e.target);
                    assert_eq!(t.get(flag), &Value::Int(0));
                    assert_eq!(t.get(data), &Value::Int(0));
                    assert_ne!(e.target, id, "crash must not be a self-loop");
                }
            }
        }
        assert!(saw_crash, "crash_restart edge never fired");
    }

    #[test]
    fn crash_restart_validates_reset_assignment() {
        let (sys, flag, data) = handshake();
        assert!(matches!(
            crash_restart(&sys, &[flag, data], &[(flag, Value::Int(0))]),
            Err(CheckError::Precondition { .. })
        ));
        assert!(matches!(
            crash_restart(&sys, &[flag], &[(flag, Value::Int(7))]),
            Err(CheckError::Precondition { .. })
        ));
    }

    #[test]
    fn hostile_env_breaks_assumption_at_chosen_step() {
        let (sys, flag, _) = handshake();
        // Assumption: the flag is never raised... falsified by flag=1.
        let assumption = Expr::var(flag).eq(Expr::int(0));
        let faulted = hostile_env(&sys, &assumption, 2).unwrap();
        let clock = faulted.vars().find(HOSTILE_CLOCK).unwrap();
        let graph = explore(&faulted, &ExploreOptions::default()).unwrap();
        // Saboteur edges exist, and only out of states with clock = 2.
        let mut saw_sabotage = false;
        for id in 0..graph.len() {
            for e in graph.edges(id) {
                if is_fault_action(faulted.actions()[e.action].name()) {
                    saw_sabotage = true;
                    assert_eq!(graph.state(id).get(clock), &Value::Int(2));
                    assert!(!assumption
                        .holds_state(graph.state(e.target))
                        .unwrap());
                }
            }
        }
        assert!(saw_sabotage, "hostile_env never fired");
    }

    #[test]
    fn hostile_env_rejects_unfalsifiable_assumptions() {
        let (sys, flag, _) = handshake();
        let valid = Expr::var(flag).ge(Expr::int(0));
        assert!(matches!(
            hostile_env(&sys, &valid, 1),
            Err(CheckError::Precondition { .. })
        ));
        let closed = Expr::bool(true);
        assert!(matches!(
            hostile_env(&sys, &closed, 1),
            Err(CheckError::Precondition { .. })
        ));
    }

    #[test]
    fn faulted_systems_respect_budgets_too() {
        let (sys, flag, data) = handshake();
        let faulted = lossy(&sys, &[0, 1], &[data]).unwrap();
        let faulted =
            crash_restart(&faulted, &[flag, data], &[(flag, Value::Int(0)), (data, Value::Int(0))])
                .unwrap();
        let run = explore_governed(&faulted, &Budget::default().states(2)).unwrap();
        assert_eq!(run.graph.len(), 2);
        assert!(run.outcome.exhaustion().is_some());
    }
}
