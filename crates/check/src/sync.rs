//! Small synchronization utilities shared by the exploration and
//! liveness engines: the poison-recovering [`lock`] helper and the
//! [`Striped`] lock-striping building block every parallel visited
//! set in this crate is built on.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering from poisoning: the engines tolerate
/// worker panics, and the data a panicking worker may have left
/// behind is rolled back explicitly (re-queued claims, truncated
/// partial expansions) rather than abandoned to a poisoned lock.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shard count of every lock-striped structure in this crate (a power
/// of two; shards are picked from a key's low bits, see [`shard_for`]).
/// The level-synchronous, work-stealing, and parallel-spill visited
/// sets stripe across this many locks, and the liveness engine's
/// parallel reachability pass stripes its visited flags the same way.
pub(crate) const NUM_SHARDS: usize = 64;

/// The shard a (masked-fingerprint) key lands in.
pub(crate) fn shard_for(key: u64) -> usize {
    (key as usize) & (NUM_SHARDS - 1)
}

/// [`NUM_SHARDS`] independently-locked stripes of `T` — the shared
/// sharding machinery of the parallel engines' visited sets. All
/// locking goes through the poison-recovering [`lock`]: every
/// stripe's critical sections keep its data structurally consistent
/// (map inserts and arena pushes happen together), so a panicking
/// worker never leaves torn state behind a poisoned lock, and
/// propagating the poison would only turn one worker's bug into a
/// whole-run abort.
pub(crate) struct Striped<T> {
    shards: Vec<Mutex<T>>,
}

impl<T> Striped<T> {
    /// One stripe per shard, each built by `make`.
    pub(crate) fn new(mut make: impl FnMut() -> T) -> Striped<T> {
        Striped {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(make())).collect(),
        }
    }

    /// Locks the stripe `key` lands in, returning the shard index too
    /// (provisional ids encode it).
    pub(crate) fn lock_key(&self, key: u64) -> (usize, MutexGuard<'_, T>) {
        let i = shard_for(key);
        (i, lock(&self.shards[i]))
    }

    /// Locks stripe `i` directly.
    pub(crate) fn lock_shard(&self, i: usize) -> MutexGuard<'_, T> {
        lock(&self.shards[i])
    }

    /// Locks each stripe in shard order, one at a time.
    pub(crate) fn iter_locked(&self) -> impl Iterator<Item = MutexGuard<'_, T>> {
        self.shards.iter().map(lock)
    }

    /// Tears the striping down into the plain shard values (poison
    /// recovered), in shard order. Callers hold the only reference by
    /// then — workers are joined — so no lock is contended.
    pub(crate) fn into_shards(self) -> Vec<T> {
        self.shards
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect()
    }
}
