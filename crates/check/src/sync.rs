//! Small synchronization utilities shared by the exploration engines.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering from poisoning: the engines tolerate
/// worker panics, and the data a panicking worker may have left
/// behind is rolled back explicitly (re-queued claims, truncated
/// partial expansions) rather than abandoned to a poisoned lock.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
