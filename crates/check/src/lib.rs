//! # opentla-check
//!
//! An explicit-state model checker: the "complete system" verification
//! substrate that the Composition Theorem of *Open Systems in TLA*
//! (Abadi & Lamport, PODC 1994) reduces open-system reasoning to.
//!
//! The checker works on [`System`]s — transition systems in guarded-
//! command form whose variables range over finite domains — and
//! provides:
//!
//! * [`explore`] — deterministic breadth-first reachability, producing
//!   a [`StateGraph`];
//! * [`check_invariant`] / [`check_step_invariant`] — state and action
//!   invariants with shortest counterexample traces;
//! * [`check_simulation`] — step simulation against a safety-canonical
//!   specification under a refinement mapping (the safety half of
//!   refinement and of the Composition Theorem's hypotheses);
//! * [`check_liveness`] — fairness-aware liveness checking by
//!   strongly-connected-component analysis, producing fair lasso
//!   counterexamples ([`Counterexample`] converts into a semantic
//!   [`Lasso`](opentla_semantics::Lasso) so every counterexample can be
//!   re-checked against the trace semantics);
//! * [`faults`] — adversarial fault-injection combinators
//!   ([`faults::lossy`], [`faults::duplicate`], [`faults::crash_restart`],
//!   [`faults::hostile_env`]) that transform a [`System`] into a
//!   degraded variant for robustness checking;
//! * [`Budget`] / [`Outcome`] — a resource governor: every engine has a
//!   `*_governed` variant that stops gracefully when states,
//!   transitions, wall-clock, or a cancellation flag run out, returning
//!   partial results instead of an error, with [`escalate`] for
//!   geometric-retry loops;
//! * [`Snapshot`] / [`explore_resumable`] — crash tolerance: budgeted
//!   runs periodically checkpoint their resumable core to a versioned,
//!   checksummed on-disk snapshot ([`Budget::with_checkpoint`]) and
//!   resume from the preserved frontier instead of restarting, with
//!   panic-isolated parallel workers degrading gracefully instead of
//!   aborting the run;
//! * [`obs`] — the observability layer: structured run events, live
//!   progress metrics, and exportable schema-versioned [`RunReport`]s
//!   from every engine, routed by `OPENTLA_OBS=/path.jsonl` or an
//!   explicit [`RecorderHandle`] on the [`Budget`].
//!
//! # Example
//!
//! ```
//! use opentla_kernel::{Domain, Expr, Value, Vars};
//! use opentla_check::{GuardedAction, Init, System, explore, ExploreOptions};
//!
//! let mut vars = Vars::new();
//! let x = vars.declare("x", Domain::int_range(0, 3));
//! let incr = GuardedAction::new(
//!     "incr",
//!     Expr::var(x).lt(Expr::int(3)),
//!     vec![(x, Expr::var(x).add(Expr::int(1)))],
//! );
//! let system = System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr]);
//! let graph = explore(&system, &ExploreOptions::default()).unwrap();
//! assert_eq!(graph.len(), 4); // x ∈ {0, 1, 2, 3}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod checkpoint;
mod compiled;
mod counterexample;
mod error;
mod explore;
pub mod faults;
mod invariant;
mod liveness;
pub mod obs;
mod reduction;
mod sample;
mod simulate;
mod sync;
mod system;

pub use budget::{escalate, Budget, ExhaustReason, Governed, Meter, Outcome};
pub use checkpoint::{
    CheckpointError, CheckpointSpec, LiveSnapshot, ResumeToken, Snapshot,
    DEFAULT_CHECKPOINT_CADENCE, LIVE_SNAPSHOT_VERSION, SNAPSHOT_VERSION,
    SNAPSHOT_VERSION_SPILL,
};
pub use obs::{
    CountingRecorder, Event, JsonlRecorder, NullRecorder, Phase, ProgressSnapshot,
    Recorder, RecorderHandle, RunReport,
};
pub use compiled::{CompiledExpr, CompiledSystem, EvalScratch};
pub use counterexample::Counterexample;
pub use error::CheckError;
pub use explore::{
    explore, explore_escalating, explore_governed, explore_governed_with,
    explore_parallel, explore_parallel_governed, explore_parallel_ws,
    explore_parallel_ws_governed, explore_resumable, resume_exploration, Edge, Engine,
    Exploration, ExploreOptions, GraphStats, StateGraph, VisitedMode, WorkerPanic,
    PAR_SMALL_GRAPH_CUTOFF,
};
pub use invariant::{check_invariant, check_step_invariant};
pub use reduction::{
    Canonicalize, PorConfig, Reduction, ReductionStats, SlotPermutations,
};
pub use liveness::{
    check_liveness, check_liveness_governed, check_liveness_governed_with,
    check_liveness_resumable, LiveTarget, LivenessOptions, LivenessRun,
    LIVENESS_SMALL_GRAPH_CUTOFF,
};
pub use sample::sample_behavior;
pub use simulate::{
    check_simulation, check_simulation_governed, SimulationReport, SimulationRun,
};
pub use system::{GuardedAction, Init, System, SystemFairness};

/// The outcome of a check: either the property holds, or it is violated
/// with a counterexample.
///
/// Engine failures (type errors in the specification, exhausted limits)
/// are reported separately as [`CheckError`]s.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The property holds on every behavior of the system.
    Holds,
    /// The property is violated; the counterexample demonstrates it.
    Violated(Counterexample),
}

impl Verdict {
    /// Whether the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }

    /// The counterexample, if the property is violated.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Holds => None,
            Verdict::Violated(cx) => Some(cx),
        }
    }
}
