//! State and step invariants.

use crate::reduction::concretize_trace;
use crate::{CheckError, Counterexample, StateGraph, System, Verdict};
use opentla_kernel::{box_action, Expr, StatePair, VarId};

/// Builds the counterexample trace leading to `id`.
///
/// On a symmetry-reduced graph the BFS tree runs through *canonical*
/// representatives, whose steps need not be genuine transitions of the
/// system; the trace is re-concretized by walking real successors whose
/// canonical forms match, so the returned counterexample replays under
/// the trace semantics. (If concretization fails — which only happens
/// for a canonicalizer that is not automorphism-induced — the canonical
/// trace is returned as-is, clearly better than nothing.)
pub(crate) fn trace_counterexample(
    system: &System,
    graph: &StateGraph,
    id: usize,
    reason: String,
) -> Counterexample {
    let trace = graph.trace_to(id);
    let states: Vec<_> = trace
        .iter()
        .map(|(_, s)| graph.state(*s).clone())
        .collect();
    if let Some(canon) = graph.canonicalizer() {
        if let Some((concrete, actions)) = concretize_trace(system, canon, &states) {
            return Counterexample::new(reason, concrete, actions, None);
        }
    }
    let actions = trace
        .iter()
        .map(|(a, _)| a.map(|i| system.actions()[i].name().to_string()))
        .collect();
    Counterexample::new(reason, states, actions, None)
}

/// Checks that `pred` holds in every reachable state.
///
/// # Errors
///
/// Propagates evaluation errors (e.g. type errors in `pred`).
///
/// # Example
///
/// ```
/// use opentla_check::{check_invariant, explore, ExploreOptions, GuardedAction, Init, System};
/// use opentla_kernel::{Domain, Expr, Value, Vars};
///
/// # fn main() -> Result<(), opentla_check::CheckError> {
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::int_range(0, 3));
/// let incr = GuardedAction::new(
///     "incr",
///     Expr::var(x).lt(Expr::int(3)),
///     vec![(x, Expr::var(x).add(Expr::int(1)))],
/// );
/// let sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr]);
/// let graph = explore(&sys, &ExploreOptions::default())?;
/// assert!(check_invariant(&sys, &graph, &Expr::var(x).le(Expr::int(3)))?.holds());
/// let verdict = check_invariant(&sys, &graph, &Expr::var(x).lt(Expr::int(3)))?;
/// assert_eq!(verdict.counterexample().unwrap().states().len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn check_invariant(
    system: &System,
    graph: &StateGraph,
    pred: &Expr,
) -> Result<Verdict, CheckError> {
    for (id, s) in graph.states().iter().enumerate() {
        if !pred.holds_state(s)? {
            return Ok(Verdict::Violated(trace_counterexample(
                system,
                graph,
                id,
                format!("state invariant violated: {}", pred.display(system.vars())),
            )));
        }
    }
    Ok(Verdict::Holds)
}

/// Checks that every reachable transition satisfies `[action]_sub`
/// (i.e. is an `action` step or leaves `sub` unchanged). Stuttering
/// steps satisfy `[A]_v` trivially, so only graph edges are examined.
///
/// # Errors
///
/// Propagates evaluation errors. Rejects reduced graphs with
/// [`CheckError::Precondition`]: a reduced graph's edges are not the
/// system's full transition relation (partial-order reduction omits
/// transitions; symmetry edges connect canonical representatives rather
/// than genuine step endpoints), so a per-edge property cannot be
/// decided on one — re-explore with [`Reduction::none`](crate::Reduction::none).
pub fn check_step_invariant(
    system: &System,
    graph: &StateGraph,
    action: &Expr,
    sub: &[VarId],
) -> Result<Verdict, CheckError> {
    if graph.is_reduced() {
        return Err(CheckError::Precondition {
            message: "step invariants need the full transition relation; \
                      this graph was explored under a Reduction (re-explore \
                      with Reduction::none())"
                .to_string(),
        });
    }
    let boxed = box_action(action.clone(), sub);
    for (id, s) in graph.states().iter().enumerate() {
        for e in graph.edges(id) {
            let t = graph.state(e.target);
            if !boxed.holds_action(StatePair::new(s, t))? {
                let mut cx = trace_counterexample(
                    system,
                    graph,
                    id,
                    format!(
                        "step invariant violated by action {}: not a [{}]_v step",
                        system.actions()[e.action].name(),
                        action.display(system.vars()),
                    ),
                );
                // Append the offending step.
                let mut states = cx.states().to_vec();
                let mut actions = cx.actions().to_vec();
                states.push(t.clone());
                actions.push(Some(system.actions()[e.action].name().to_string()));
                cx = Counterexample::new(cx.reason().to_string(), states, actions, None);
                return Ok(Verdict::Violated(cx));
            }
        }
    }
    Ok(Verdict::Holds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, ExploreOptions, GuardedAction, Init};
    use opentla_kernel::{Domain, Value, Vars};

    fn counter(max: i64) -> System {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, max));
        let incr = GuardedAction::new(
            "incr",
            Expr::var(x).lt(Expr::int(max)),
            vec![(x, Expr::var(x).add(Expr::int(1)))],
        );
        System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr])
    }

    #[test]
    fn invariant_holds() {
        let sys = counter(3);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let x = sys.vars().find("x").unwrap();
        let v = check_invariant(&sys, &graph, &Expr::var(x).le(Expr::int(3))).unwrap();
        assert!(v.holds());
        assert!(v.counterexample().is_none());
    }

    #[test]
    fn invariant_violation_has_shortest_trace() {
        let sys = counter(5);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let x = sys.vars().find("x").unwrap();
        let v = check_invariant(&sys, &graph, &Expr::var(x).lt(Expr::int(3))).unwrap();
        let cx = v.counterexample().expect("violated");
        // Shortest trace to x = 3 has 4 states: 0 1 2 3.
        assert_eq!(cx.states().len(), 4);
        assert_eq!(cx.states().last().unwrap().get(x), &Value::Int(3));
        assert!(cx.reason().contains("invariant"));
    }

    #[test]
    fn step_invariant() {
        let sys = counter(3);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let x = sys.vars().find("x").unwrap();
        // Every step increments: x' = x + 1 (or stutters).
        let incr = Expr::prime(x).eq(Expr::var(x).add(Expr::int(1)));
        assert!(check_step_invariant(&sys, &graph, &incr, &[x])
            .unwrap()
            .holds());
        // Every step decrements: violated immediately.
        let decr = Expr::prime(x).eq(Expr::var(x).sub(Expr::int(1)));
        let v = check_step_invariant(&sys, &graph, &decr, &[x]).unwrap();
        let cx = v.counterexample().expect("violated");
        assert_eq!(cx.states().len(), 2);
        assert!(cx.reason().contains("incr"));
    }

    #[test]
    fn counterexamples_are_semantically_valid() {
        // The violating trace, stutter-extended, must fail the formula
        // □(x < 3) under the trace semantics.
        let sys = counter(5);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let x = sys.vars().find("x").unwrap();
        let v = check_invariant(&sys, &graph, &Expr::var(x).lt(Expr::int(3))).unwrap();
        let lasso = v.counterexample().unwrap().to_lasso();
        let f = opentla_kernel::Formula::pred(Expr::var(x).lt(Expr::int(3))).always();
        let ctx = opentla_semantics::EvalCtx::default();
        assert!(!opentla_semantics::eval(&f, &lasso, &ctx).unwrap());
        // And it must be a real behavior of the system: satisfy the
        // system's safety formula.
        let spec = opentla_kernel::Formula::pred(sys.init().as_pred()).and(
            opentla_kernel::Formula::act_box(sys.next_expr(), sys.frame()),
        );
        assert!(opentla_semantics::eval(&spec, &lasso, &ctx).unwrap());
    }
}
