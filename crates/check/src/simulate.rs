//! Step simulation against safety-canonical specifications under
//! refinement mappings.
//!
//! To prove `System ⊨ Target` for a safety-canonical `Target` whose
//! internal variables are eliminated by a refinement mapping (a
//! [`Substitution`]), it suffices that:
//!
//! 1. every initial state satisfies the (mapped) initial predicates;
//! 2. every reachable state satisfies the (mapped) invariants;
//! 3. every reachable transition satisfies every (mapped) step box
//!    `[A]_v` — stuttering steps satisfy them trivially.
//!
//! This is the standard refinement-mapping argument of TLA [10 in the
//! paper], and it is how the safety hypotheses (1 and 2(a), after
//! Propositions 1–4 strip `C` and `+v`) of the Composition Theorem are
//! discharged.

use crate::budget::{Budget, Governed, Meter, Outcome};
use crate::invariant::trace_counterexample;
use crate::{CheckError, Counterexample, ExhaustReason, StateGraph, System, Verdict};
use opentla_kernel::{box_action, Formula, StatePair, Substitution};
use opentla_semantics::safety_canonical;

/// The result of a simulation check, with workload statistics.
#[derive(Clone, Debug)]
pub struct SimulationReport {
    /// Whether the simulation holds, or a counterexample.
    pub verdict: Verdict,
    /// Reachable states examined.
    pub states: usize,
    /// Transitions examined.
    pub edges: usize,
}

impl SimulationReport {
    /// Whether the simulation holds.
    pub fn holds(&self) -> bool {
        self.verdict.holds()
    }
}

/// The result of a governed simulation check: a report when the run
/// reached a decision before the budget ran out, and the resource
/// [`Outcome`] either way.
#[derive(Clone, Debug)]
pub struct SimulationRun {
    /// The simulation report, or `None` if the budget ran out before
    /// every state and edge was checked. A `Some` violation is always
    /// authoritative, even under an exhausted budget.
    pub report: Option<SimulationReport>,
    /// Whether the run covered every proof obligation.
    pub outcome: Outcome,
}

impl Governed for SimulationRun {
    fn exhaustion(&self) -> Option<&ExhaustReason> {
        self.outcome.exhaustion()
    }
}

/// Checks that every behavior of `system` satisfies the
/// safety-canonical formula `target` under the refinement `mapping`
/// (mapping the target's internal variables to state functions of the
/// system's variables; pass an empty substitution when there are
/// none).
///
/// # Errors
///
/// * [`CheckError::NotCanonical`] if `target` is not safety-canonical
///   after applying the mapping;
/// * substitution capture errors;
/// * evaluation errors.
pub fn check_simulation(
    system: &System,
    graph: &StateGraph,
    target: &Formula,
    mapping: &Substitution,
) -> Result<SimulationReport, CheckError> {
    let run =
        check_simulation_governed(system, graph, target, mapping, &Budget::unlimited())?;
    Ok(run
        .report
        .expect("unlimited budget always reaches a report"))
}

/// [`check_simulation`] under a resource [`Budget`].
///
/// Each state examined for the target's invariants charges the state
/// budget and each edge examined for the target's step boxes charges
/// the transition budget; the deadline and the cancellation flag are
/// polled at every state. When the budget runs out the run returns
/// `report: None` tagged [`Outcome::Exhausted`] — every obligation
/// checked up to that point held, but the verdict is undecided.
///
/// # Errors
///
/// Same as [`check_simulation`].
pub fn check_simulation_governed(
    system: &System,
    graph: &StateGraph,
    target: &Formula,
    mapping: &Substitution,
    budget: &Budget,
) -> Result<SimulationRun, CheckError> {
    let _phase =
        crate::obs::PhaseGuard::enter(&budget.recorder, crate::obs::Phase::Simulation);
    // Step-box obligations are per-edge: a reduced graph omits edges
    // (POR) or replaces their endpoints by canonical representatives
    // (symmetry), so simulation cannot be decided on one.
    if graph.is_reduced() {
        return Err(CheckError::Precondition {
            message: "simulation checking needs the full state graph; this \
                      graph was explored under a Reduction (re-explore with \
                      Reduction::none())"
                .to_string(),
        });
    }
    let mapped = mapping.formula(target)?;
    let Some(sc) = safety_canonical(&mapped) else {
        return Err(CheckError::NotCanonical {
            context: "check_simulation",
        });
    };
    let vars = system.vars();
    let meter = &mut Meter::start(budget);
    let exhausted = |reason: ExhaustReason, pending: usize| SimulationRun {
        report: None,
        outcome: Outcome::Exhausted {
            reason,
            frontier_size: pending,
            stats: graph.stats(),
            resume: None,
        },
    };
    let violated = |cx: Counterexample, edges: usize| {
        crate::obs::emit_counterexample(&budget.recorder, "simulation", &cx);
        SimulationRun {
            report: Some(SimulationReport {
                verdict: Verdict::Violated(cx),
                states: graph.len(),
                edges,
            }),
            outcome: Outcome::Complete,
        }
    };

    // 1. Initial predicates.
    for id in graph.init() {
        if let Some(reason) = meter.checkpoint() {
            return Ok(exhausted(reason, graph.len()));
        }
        let s = graph.state(*id);
        for p in &sc.init {
            if !p.holds_state(s)? {
                let cx = trace_counterexample(
                    system,
                    graph,
                    *id,
                    format!(
                        "initial condition of the target fails: {}",
                        p.display(vars)
                    ),
                );
                return Ok(violated(cx, meter.transitions_used()));
            }
        }
    }
    // 2. Invariants.
    for (id, s) in graph.states().iter().enumerate() {
        if let Some(reason) =
            meter.checkpoint().or_else(|| meter.charge_state())
        {
            return Ok(exhausted(reason, graph.len() - id));
        }
        for p in &sc.invariants {
            if !p.holds_state(s)? {
                let cx = trace_counterexample(
                    system,
                    graph,
                    id,
                    format!("target invariant fails: {}", p.display(vars)),
                );
                return Ok(violated(cx, meter.transitions_used()));
            }
        }
    }
    // 3. Step boxes on every edge.
    let boxes: Vec<_> = sc
        .boxes
        .iter()
        .map(|(a, sub)| box_action(a.clone(), sub))
        .collect();
    for (id, s) in graph.states().iter().enumerate() {
        if let Some(reason) = meter.checkpoint() {
            return Ok(exhausted(reason, graph.len() - id));
        }
        for e in graph.edges(id) {
            if let Some(reason) = meter.charge_transition() {
                return Ok(exhausted(reason, graph.len() - id));
            }
            let t = graph.state(e.target);
            let pair = StatePair::new(s, t);
            for (bi, b) in boxes.iter().enumerate() {
                if !b.holds_action(pair)? {
                    let base = trace_counterexample(
                        system,
                        graph,
                        id,
                        format!(
                            "step of action {} violates target box #{bi}: {}",
                            system.actions()[e.action].name(),
                            sc.boxes[bi].0.display(vars),
                        ),
                    );
                    let mut states = base.states().to_vec();
                    let mut actions = base.actions().to_vec();
                    states.push(t.clone());
                    actions.push(Some(system.actions()[e.action].name().to_string()));
                    let cx = Counterexample::new(
                        base.reason().to_string(),
                        states,
                        actions,
                        None,
                    );
                    return Ok(violated(cx, meter.transitions_used()));
                }
            }
        }
    }
    Ok(SimulationRun {
        report: Some(SimulationReport {
            verdict: Verdict::Holds,
            states: graph.len(),
            edges: meter.transitions_used(),
        }),
        outcome: Outcome::Complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, ExploreOptions, GuardedAction, Init};
    use opentla_kernel::{Domain, Expr, Value, VarId, Vars};

    /// Two-bit counter that increments modulo 4 via low/high bits; the
    /// abstract view is a mod-4 counter variable.
    fn setup() -> (System, VarId, VarId, VarId) {
        let mut vars = Vars::new();
        let lo = vars.declare("lo", Domain::bits());
        let hi = vars.declare("hi", Domain::bits());
        // Abstract counter (internal to the target spec).
        let n = vars.declare("n", Domain::int_range(0, 3));
        let tick = GuardedAction::new(
            "tick",
            Expr::bool(true),
            vec![
                (lo, Expr::int(1).sub(Expr::var(lo))),
                (
                    hi,
                    Expr::var(lo)
                        .eq(Expr::int(1))
                        .ite(Expr::int(1).sub(Expr::var(hi)), Expr::var(hi)),
                ),
            ],
        );
        let sys = System::new(
            vars,
            Init::new([
                (lo, Value::Int(0)),
                (hi, Value::Int(0)),
                (n, Value::Int(0)), // n is not used by the system; pin it.
            ]),
            vec![tick],
        );
        (sys, lo, hi, n)
    }

    fn abstract_spec(n: VarId) -> Formula {
        // n = 0 ∧ □[n' = (n + 1) mod 4]_n, with mod expressed by Ite.
        let next = Expr::var(n)
            .eq(Expr::int(3))
            .ite(Expr::int(0), Expr::var(n).add(Expr::int(1)));
        Formula::pred(Expr::var(n).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::prime(n).eq(next), vec![n]))
    }

    #[test]
    fn simulation_with_mapping_holds() {
        let (sys, lo, hi, n) = setup();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        // Mapping: n ↦ 2*hi + lo.
        let mapping = Substitution::new([(
            n,
            Expr::int(2).mul(Expr::var(hi)).add(Expr::var(lo)),
        )]);
        let report =
            check_simulation(&sys, &graph, &abstract_spec(n), &mapping).unwrap();
        assert!(report.holds(), "{:?}", report.verdict);
        assert!(report.edges > 0);
    }

    #[test]
    fn wrong_mapping_fails_with_trace() {
        let (sys, lo, _, n) = setup();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        // Bogus mapping: n ↦ lo. The step from lo=1 wraps to 0, which
        // the abstract spec only allows from n = 3.
        let mapping = Substitution::new([(n, Expr::var(lo))]);
        let report =
            check_simulation(&sys, &graph, &abstract_spec(n), &mapping).unwrap();
        let cx = report.verdict.counterexample().expect("must fail");
        assert!(cx.reason().contains("box"));
        assert!(cx.states().len() >= 2);
    }

    #[test]
    fn wrong_init_detected() {
        let (sys, _, _, n) = setup();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let target = Formula::pred(Expr::var(n).eq(Expr::int(1)));
        let mapping = Substitution::new([(n, Expr::int(0))]);
        let report = check_simulation(&sys, &graph, &target, &mapping).unwrap();
        let cx = report.verdict.counterexample().expect("must fail");
        assert!(cx.reason().contains("initial"));
    }

    #[test]
    fn invariant_part_checked() {
        let (sys, lo, hi, n) = setup();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let mapping = Substitution::new([(
            n,
            Expr::int(2).mul(Expr::var(hi)).add(Expr::var(lo)),
        )]);
        // Target: □(n ≤ 3) — holds.
        let ok = Formula::pred(Expr::var(n).le(Expr::int(3))).always();
        assert!(check_simulation(&sys, &graph, &ok, &mapping).unwrap().holds());
        // Target: □(n ≤ 2) — fails at n = 3.
        let bad = Formula::pred(Expr::var(n).le(Expr::int(2))).always();
        let report = check_simulation(&sys, &graph, &bad, &mapping).unwrap();
        assert!(!report.holds());
    }

    #[test]
    fn governed_simulation_reports_exhaustion_not_error() {
        use crate::{escalate, Budget, ExhaustReason};
        let (sys, lo, hi, n) = setup();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let mapping = Substitution::new([(
            n,
            Expr::int(2).mul(Expr::var(hi)).add(Expr::var(lo)),
        )]);
        let spec = abstract_spec(n);
        // One transition is not enough for the 4 edges of the graph.
        let budget = Budget::default().transitions(1);
        let run = check_simulation_governed(&sys, &graph, &spec, &mapping, &budget)
            .unwrap();
        assert!(run.report.is_none());
        assert_eq!(
            run.outcome.exhaustion(),
            Some(&ExhaustReason::TransitionLimit { limit: 1 })
        );
        // Escalating the budget reaches a decision.
        let run = escalate(&budget, 8, 3, |b| {
            check_simulation_governed(&sys, &graph, &spec, &mapping, b)
        })
        .unwrap();
        assert!(run.outcome.is_complete());
        assert!(run.report.unwrap().holds());
    }

    #[test]
    fn governed_simulation_honors_cancellation() {
        use crate::Budget;
        let (sys, lo, hi, n) = setup();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let mapping = Substitution::new([(
            n,
            Expr::int(2).mul(Expr::var(hi)).add(Expr::var(lo)),
        )]);
        let budget = Budget::default();
        budget.request_cancel();
        let run = check_simulation_governed(
            &sys,
            &graph,
            &abstract_spec(n),
            &mapping,
            &budget,
        )
        .unwrap();
        assert!(run.report.is_none());
        assert!(!run.outcome.is_complete());
    }

    #[test]
    fn non_canonical_rejected() {
        let (sys, _, _, n) = setup();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let live = Formula::pred(Expr::var(n).eq(Expr::int(3))).eventually();
        let mapping = Substitution::new([(n, Expr::int(0))]);
        assert!(matches!(
            check_simulation(&sys, &graph, &live, &mapping),
            Err(CheckError::NotCanonical { .. })
        ));
    }
}
