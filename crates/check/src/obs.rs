//! Run observability: structured events, live progress metrics, and
//! exportable run reports.
//!
//! Every checking engine in this workspace can narrate what it is doing
//! through a [`Recorder`] — a zero-dependency, lock-free-friendly sink
//! for [`Event`]s:
//!
//! * [`NullRecorder`] (the default) discards everything; engines gate
//!   their instrumentation on [`Recorder::enabled`], so the hot loops
//!   pay a single predictable branch and stay allocation-free;
//! * [`CountingRecorder`] tallies events in `AtomicU64` counters and
//!   accumulates monotonic per-[`Phase`] timers — cheap enough to leave
//!   on in tests, and exact: its state/transition/depth totals come
//!   from the engine's own final statistics;
//! * [`JsonlRecorder`] serializes every event as one JSON line
//!   (schema-versioned, see [`OBS_SCHEMA_VERSION`]), the same
//!   progress-statistics discipline TLC earns trust with.
//!
//! Events sample the hot path by piggybacking on the existing
//! [`Meter`](crate::Meter) checkpoint cadence: the meter emits a
//! [`Event::Progress`] snapshot every [`PROGRESS_SAMPLE`] checkpoints,
//! so instrumentation cost scales with checkpoints, not with states.
//!
//! The `OPENTLA_OBS=/path.jsonl` environment variable (mirroring
//! `OPENTLA_EXPLORE_THREADS`) routes every engine that did not receive
//! an explicit recorder to an appending [`JsonlRecorder`] at that path;
//! see [`global`].
//!
//! The module also ships its own consumer: [`validate_stream`] parses a
//! JSONL event stream back (with the built-in minimal [`Json`] parser —
//! no serde), checks it against the schema (known event kinds, required
//! fields, monotonic timestamps, well-formed phase nesting, every run
//! closed by a report whose totals match the final snapshot), and
//! returns a [`StreamSummary`] for golden-shape tests and CI gates.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Version tag carried by every serialized event (`"v"`) and by
/// [`RunReport::schema_version`]. Bump when the event schema changes
/// shape.
pub const OBS_SCHEMA_VERSION: u64 = 1;

/// A [`Event::Progress`] snapshot is emitted every this many meter
/// checkpoints (when a recorder is enabled). Checkpoints run once per
/// state expansion, so this keeps the sampling cost at roughly one
/// event per `PROGRESS_SAMPLE` states.
pub const PROGRESS_SAMPLE: u64 = 1024;

// ---------------------------------------------------------------------
// Phases and events
// ---------------------------------------------------------------------

/// A named span of engine work. Phases nest like a stack within one
/// event stream; [`validate_stream`] enforces the discipline.
///
/// Each phase maps onto the paper's proof obligations — see
/// `docs/paper-map.md` § "Observability" for the correspondence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Enumerating and interning the initial states.
    ExploreInit,
    /// The BFS expansion loop (sequential or level-synchronous).
    ExploreExpand,
    /// The parallel engine's canonical renumbering pass.
    ExploreRenumber,
    /// Fairness-aware liveness analysis (SCC search).
    Liveness,
    /// Step simulation under a refinement mapping.
    Simulation,
    /// The `⊳` realization monitor (`check_ag_safety_diagnosed`).
    AgMonitor,
    /// The Composition Theorem / Corollary certificate build.
    Compose,
    /// A verification suite run.
    Suite,
}

/// Number of distinct [`Phase`]s (for fixed-size per-phase tables).
pub const PHASE_COUNT: usize = 8;

impl Phase {
    /// Dense index, `0..PHASE_COUNT`.
    pub fn index(self) -> usize {
        match self {
            Phase::ExploreInit => 0,
            Phase::ExploreExpand => 1,
            Phase::ExploreRenumber => 2,
            Phase::Liveness => 3,
            Phase::Simulation => 4,
            Phase::AgMonitor => 5,
            Phase::Compose => 6,
            Phase::Suite => 7,
        }
    }

    /// Stable wire name (the `"phase"` field of phase events).
    pub fn name(self) -> &'static str {
        match self {
            Phase::ExploreInit => "explore_init",
            Phase::ExploreExpand => "explore_expand",
            Phase::ExploreRenumber => "explore_renumber",
            Phase::Liveness => "liveness",
            Phase::Simulation => "simulation",
            Phase::AgMonitor => "ag_monitor",
            Phase::Compose => "compose",
            Phase::Suite => "suite",
        }
    }
}

/// A point-in-time progress measurement. All counts are cumulative
/// within the current run; optional fields are omitted from the wire
/// format when unknown.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProgressSnapshot {
    /// Unique states recorded so far.
    pub states: u64,
    /// Transitions processed so far.
    pub transitions: u64,
    /// Nanoseconds since the run (meter) started.
    pub elapsed_nanos: u64,
    /// Size of the pending BFS frontier, when the engine knows it.
    pub frontier: Option<u64>,
    /// Current BFS level / depth, when the engine tracks it.
    pub level: Option<u64>,
    /// Reporting worker, for per-worker snapshots.
    pub worker: Option<u64>,
    /// The finite state budget, if one is set (budget consumption =
    /// `states / budget_states`).
    pub budget_states: Option<u64>,
    /// The finite transition budget, if one is set.
    pub budget_transitions: Option<u64>,
}

impl ProgressSnapshot {
    /// Throughput implied by this snapshot (states per second).
    pub fn states_per_sec(&self) -> f64 {
        self.states as f64 / (self.elapsed_nanos as f64 / 1e9).max(1e-9)
    }
}

/// The final, exportable summary of one engine run. Serialized inside
/// the [`Event::RunEnd`] line and written standalone by the benchmark
/// and demo binaries.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Schema version ([`OBS_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Which engine ran (`"explore_sequential"`, `"explore_parallel"`,
    /// …).
    pub engine: String,
    /// Worker threads used.
    pub threads: usize,
    /// Visited-set mode (`"fingerprint"` / `"exact"`), or another
    /// engine-specific mode tag.
    pub mode: String,
    /// Unique states recorded.
    pub states: usize,
    /// Transitions recorded.
    pub transitions: usize,
    /// BFS depth of the explored graph.
    pub depth: usize,
    /// Deadlock (terminal-state) count.
    pub deadlocks: usize,
    /// Human-readable outcome (`"complete"`, an exhaustion
    /// description, or `"error: …"`).
    pub outcome: String,
    /// Whether the run covered everything it set out to cover.
    pub complete: bool,
    /// Wall-clock duration of the run in nanoseconds.
    pub duration_nanos: u64,
}

impl RunReport {
    /// The report as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema_version\":{},\"engine\":{},\"threads\":{},\"mode\":{},\
             \"states\":{},\"transitions\":{},\"depth\":{},\"deadlocks\":{},\
             \"outcome\":{},\"complete\":{},\"duration_nanos\":{}}}",
            self.schema_version,
            json_str(&self.engine),
            self.threads,
            json_str(&self.mode),
            self.states,
            self.transitions,
            self.depth,
            self.deadlocks,
            json_str(&self.outcome),
            self.complete,
            self.duration_nanos,
        )
    }
}

/// One structured observation. Borrowed fields keep event construction
/// allocation-free on the emitting side.
#[derive(Clone, Copy, Debug)]
pub enum Event<'a> {
    /// An engine run began.
    RunStart {
        /// Engine name (matches the eventual [`RunReport::engine`]).
        engine: &'a str,
        /// Worker threads.
        threads: usize,
        /// Visited-set / engine mode tag.
        mode: &'a str,
    },
    /// A work phase was entered.
    PhaseEnter {
        /// The phase.
        phase: Phase,
    },
    /// The matching phase was left.
    PhaseExit {
        /// The phase.
        phase: Phase,
    },
    /// A sampled progress measurement.
    Progress {
        /// The measurement.
        snapshot: ProgressSnapshot,
    },
    /// Per-worker throughput for one BFS level of the parallel engine.
    WorkerLevel {
        /// Worker index.
        worker: usize,
        /// Which level was processed.
        level: u64,
        /// Frontier entries this worker claimed.
        claimed: u64,
        /// New states this worker interned.
        inserted: u64,
    },
    /// A fault-injection combinator armed a fault action on a system,
    /// or a fault action was observed firing on a counterexample /
    /// assumption-break trace.
    FaultActivation {
        /// The fault action's name (`"fault:…"`).
        action: &'a str,
        /// Trace step at which it fired, or 0 when merely armed.
        step: u64,
        /// `"armed"` when the combinator built the faulty system,
        /// `"fired"` when the action appears on a trace.
        kind: &'a str,
    },
    /// A counterexample was produced, with provenance.
    Counterexample {
        /// Which check produced it (`"liveness"`, `"simulation"`,
        /// `"ag_safety"`, …).
        kind: &'a str,
        /// The counterexample's reason line.
        reason: &'a str,
        /// Trace length in states.
        length: usize,
        /// Lasso loop start, for liveness counterexamples.
        loop_start: Option<usize>,
        /// How many trace steps were fault actions.
        fault_steps: usize,
    },
    /// A named check completed (suite entries, certificate
    /// obligations).
    Check {
        /// Check category (`"invariant"`, `"obligation"`, …).
        kind: &'a str,
        /// The check's name.
        name: &'a str,
        /// Whether it passed.
        holds: bool,
    },
    /// Reduction counters of one exploration run (emitted once, before
    /// the run's final progress event, only when a
    /// [`Reduction`](crate::Reduction) was active).
    Reduction {
        /// States expanded through a proper ample set.
        ample_states: u64,
        /// States expanded fully (no eligible proper cluster, or the
        /// cycle proviso fired).
        full_states: u64,
        /// Enabled transitions pruned by the ample sets.
        skipped_transitions: u64,
        /// Generated successors changed by symmetry canonicalization.
        canon_hits: u64,
    },
    /// A resumable snapshot was written (see
    /// [`Budget::with_checkpoint`](crate::Budget::with_checkpoint)).
    Checkpoint {
        /// Sequence number of the snapshot within this run.
        seq: u64,
        /// States banked in the snapshot.
        states: u64,
        /// Transitions banked in the snapshot.
        transitions: u64,
        /// Discovered-but-unexpanded states awaiting resume.
        frontier: u64,
    },
    /// A parallel worker panicked; its in-flight work was re-queued
    /// and the run continued degraded on the surviving workers.
    WorkerFailure {
        /// Worker index that died.
        worker: usize,
        /// BFS level being processed when it died.
        level: u64,
        /// Frontier entries re-queued for make-up expansion.
        requeued: u64,
    },
    /// An exploration resumed from an on-disk snapshot instead of
    /// restarting.
    Resume {
        /// Sequence number of the snapshot resumed from.
        seq: u64,
        /// States restored from the snapshot.
        states: u64,
        /// Transitions restored from the snapshot.
        transitions: u64,
        /// Frontier states awaiting expansion.
        frontier: u64,
    },
    /// A parallel liveness worker finished its component-claiming
    /// loop.
    LivenessWorker {
        /// Worker index.
        worker: usize,
        /// Components the worker claimed and analyzed.
        components: u64,
        /// Fairness-satisfiable violation candidates it found.
        candidates: u64,
    },
    /// The bounded-memory engine spilled a tier to disk (sealed an
    /// arena/edge segment or wrote a visited-set fingerprint run).
    Spill {
        /// Which tier spilled: `"arena"`, `"edges"`, or `"visited"`.
        tier: &'a str,
        /// Sequence number of the spilled artifact within its tier.
        seq: u64,
        /// Records written in this spill.
        records: u64,
        /// Bytes written in this spill.
        bytes: u64,
        /// Cumulative bytes spilled across all tiers so far.
        total_spilled_bytes: u64,
    },
    /// A configured memory budget could not be honored by the selected
    /// configuration (reduction-active or panic-injection runs are
    /// pinned to the in-RAM level-synchronous engine), so the run
    /// proceeds unbounded. An explicit `mem_budget_bytes` option
    /// additionally fails the run with a precondition error; this
    /// event alone marks an environment-derived budget being dropped.
    BudgetIgnored {
        /// The budget, in bytes, that is not being enforced.
        budget_bytes: u64,
        /// Why the selected configuration cannot honor it.
        reason: &'a str,
    },
    /// Segment-cache counters of a bounded-memory run (emitted once,
    /// before the run's final progress event).
    CacheStats {
        /// Reads answered by a resident segment.
        hits: u64,
        /// Reads that loaded a segment from disk.
        misses: u64,
        /// Segments evicted to respect the cache byte budget.
        evictions: u64,
        /// Bytes resident in the cache at emission time.
        resident_bytes: u64,
        /// Total bytes spilled to disk over the run.
        spilled_bytes: u64,
    },
    /// The engine run ended; carries the full report.
    RunEnd {
        /// The final report.
        report: &'a RunReport,
    },
}

impl Event<'_> {
    /// Stable wire name (the `"ev"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::PhaseEnter { .. } => "phase_enter",
            Event::PhaseExit { .. } => "phase_exit",
            Event::Progress { .. } => "progress",
            Event::WorkerLevel { .. } => "worker_level",
            Event::FaultActivation { .. } => "fault_activation",
            Event::Counterexample { .. } => "counterexample",
            Event::Check { .. } => "check",
            Event::Reduction { .. } => "reduction",
            Event::Checkpoint { .. } => "checkpoint",
            Event::WorkerFailure { .. } => "worker_failure",
            Event::Resume { .. } => "resume",
            Event::LivenessWorker { .. } => "liveness_worker",
            Event::Spill { .. } => "spill",
            Event::BudgetIgnored { .. } => "budget_ignored",
            Event::CacheStats { .. } => "cache_stats",
            Event::RunEnd { .. } => "run_end",
        }
    }
}

// ---------------------------------------------------------------------
// Recorders
// ---------------------------------------------------------------------

/// A sink for engine [`Event`]s.
///
/// Implementations must be `Send + Sync`: one recorder is shared by
/// every worker of a parallel run. The hot loops consult
/// [`Recorder::enabled`] once per run and skip instrumentation
/// entirely when it is `false`, so a disabled recorder costs one
/// boolean.
pub trait Recorder: Send + Sync {
    /// Whether events should be produced at all. Engines hoist this
    /// out of their hot loops.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event. Called outside the allocation-free hot
    /// path (sampled checkpoints, phase boundaries, run boundaries),
    /// so implementations may format or lock here.
    fn record(&self, event: &Event<'_>);
}

/// The default recorder: discards everything,
/// [`Recorder::enabled`]` == false`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event<'_>) {}
}

/// Lock-free tallying recorder: event counts in `AtomicU64`s, plus
/// monotonic per-phase wall-clock accumulators and the totals of the
/// last [`RunReport`] seen.
///
/// The state/transition/depth totals come from the engine's final
/// report — the same [`GraphStats`](crate::GraphStats) the sequential
/// engine computes — so they are exact, not sampled.
#[derive(Debug)]
pub struct CountingRecorder {
    epoch: Instant,
    events: AtomicU64,
    run_starts: AtomicU64,
    run_ends: AtomicU64,
    progress: AtomicU64,
    worker_levels: AtomicU64,
    faults: AtomicU64,
    counterexamples: AtomicU64,
    checks: AtomicU64,
    reductions: AtomicU64,
    checkpoints: AtomicU64,
    worker_failures: AtomicU64,
    resumes: AtomicU64,
    liveness_workers: AtomicU64,
    spills: AtomicU64,
    budget_ignored_events: AtomicU64,
    cache_stats_events: AtomicU64,
    /// Cumulative spilled bytes of the most recent spill event.
    spilled_bytes: AtomicU64,
    /// Ample/full/skipped/canon totals of the most recent reduction
    /// event.
    red_ample_states: AtomicU64,
    red_full_states: AtomicU64,
    red_skipped_transitions: AtomicU64,
    red_canon_hits: AtomicU64,
    /// Totals of the most recent run report.
    states: AtomicU64,
    transitions: AtomicU64,
    depth: AtomicU64,
    /// Per-phase entry timestamp (nanos since epoch; `u64::MAX` when
    /// not inside the phase) and accumulated nanos.
    phase_entered: [AtomicU64; PHASE_COUNT],
    phase_nanos: [AtomicU64; PHASE_COUNT],
}

impl Default for CountingRecorder {
    fn default() -> Self {
        CountingRecorder::new()
    }
}

impl CountingRecorder {
    /// A fresh recorder with all counters at zero.
    pub fn new() -> Self {
        CountingRecorder {
            epoch: Instant::now(),
            events: AtomicU64::new(0),
            run_starts: AtomicU64::new(0),
            run_ends: AtomicU64::new(0),
            progress: AtomicU64::new(0),
            worker_levels: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            counterexamples: AtomicU64::new(0),
            checks: AtomicU64::new(0),
            reductions: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            worker_failures: AtomicU64::new(0),
            resumes: AtomicU64::new(0),
            liveness_workers: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            budget_ignored_events: AtomicU64::new(0),
            cache_stats_events: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
            red_ample_states: AtomicU64::new(0),
            red_full_states: AtomicU64::new(0),
            red_skipped_transitions: AtomicU64::new(0),
            red_canon_hits: AtomicU64::new(0),
            states: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            phase_entered: std::array::from_fn(|_| AtomicU64::new(u64::MAX)),
            phase_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// `run_start` events recorded.
    pub fn run_starts(&self) -> u64 {
        self.run_starts.load(Ordering::Relaxed)
    }

    /// `run_end` events recorded.
    pub fn run_ends(&self) -> u64 {
        self.run_ends.load(Ordering::Relaxed)
    }

    /// Progress snapshots recorded.
    pub fn progress_events(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Per-worker level reports recorded.
    pub fn worker_levels(&self) -> u64 {
        self.worker_levels.load(Ordering::Relaxed)
    }

    /// Fault activations recorded.
    pub fn fault_activations(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Counterexamples recorded.
    pub fn counterexamples(&self) -> u64 {
        self.counterexamples.load(Ordering::Relaxed)
    }

    /// Check results recorded.
    pub fn checks(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }

    /// Reduction events recorded.
    pub fn reductions(&self) -> u64 {
        self.reductions.load(Ordering::Relaxed)
    }

    /// Checkpoint snapshots recorded.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Worker failures recorded.
    pub fn worker_failures(&self) -> u64 {
        self.worker_failures.load(Ordering::Relaxed)
    }

    /// Resume events recorded.
    pub fn resumes(&self) -> u64 {
        self.resumes.load(Ordering::Relaxed)
    }

    /// Liveness-worker summaries recorded.
    pub fn liveness_worker_events(&self) -> u64 {
        self.liveness_workers.load(Ordering::Relaxed)
    }

    /// Spill events recorded.
    pub fn spills(&self) -> u64 {
        self.spills.load(Ordering::Relaxed)
    }

    /// Budget-ignored diagnostics recorded.
    pub fn budget_ignored_events(&self) -> u64 {
        self.budget_ignored_events.load(Ordering::Relaxed)
    }

    /// Cache-stats events recorded.
    pub fn cache_stats_events(&self) -> u64 {
        self.cache_stats_events.load(Ordering::Relaxed)
    }

    /// Cumulative spilled bytes reported by the most recent spill
    /// event (zero if none was recorded).
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// `(ample_states, full_states, skipped_transitions, canon_hits)`
    /// of the most recent reduction event (all zero if none was
    /// recorded).
    pub fn reduction_totals(&self) -> (u64, u64, u64, u64) {
        (
            self.red_ample_states.load(Ordering::Relaxed),
            self.red_full_states.load(Ordering::Relaxed),
            self.red_skipped_transitions.load(Ordering::Relaxed),
            self.red_canon_hits.load(Ordering::Relaxed),
        )
    }

    /// Unique states of the last completed run.
    pub fn states(&self) -> u64 {
        self.states.load(Ordering::Relaxed)
    }

    /// Transitions of the last completed run.
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// BFS depth of the last completed run.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Accumulated wall-clock nanoseconds spent inside `phase`.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()].load(Ordering::Relaxed)
    }
}

impl Recorder for CountingRecorder {
    fn record(&self, event: &Event<'_>) {
        self.events.fetch_add(1, Ordering::Relaxed);
        match event {
            Event::RunStart { .. } => {
                self.run_starts.fetch_add(1, Ordering::Relaxed);
            }
            Event::RunEnd { report } => {
                self.run_ends.fetch_add(1, Ordering::Relaxed);
                self.states.store(report.states as u64, Ordering::Relaxed);
                self.transitions
                    .store(report.transitions as u64, Ordering::Relaxed);
                self.depth.store(report.depth as u64, Ordering::Relaxed);
            }
            Event::Progress { .. } => {
                self.progress.fetch_add(1, Ordering::Relaxed);
            }
            Event::WorkerLevel { .. } => {
                self.worker_levels.fetch_add(1, Ordering::Relaxed);
            }
            Event::FaultActivation { .. } => {
                self.faults.fetch_add(1, Ordering::Relaxed);
            }
            Event::Counterexample { .. } => {
                self.counterexamples.fetch_add(1, Ordering::Relaxed);
            }
            Event::Check { .. } => {
                self.checks.fetch_add(1, Ordering::Relaxed);
            }
            Event::Reduction {
                ample_states,
                full_states,
                skipped_transitions,
                canon_hits,
            } => {
                self.reductions.fetch_add(1, Ordering::Relaxed);
                self.red_ample_states.store(*ample_states, Ordering::Relaxed);
                self.red_full_states.store(*full_states, Ordering::Relaxed);
                self.red_skipped_transitions
                    .store(*skipped_transitions, Ordering::Relaxed);
                self.red_canon_hits.store(*canon_hits, Ordering::Relaxed);
            }
            Event::Checkpoint { .. } => {
                self.checkpoints.fetch_add(1, Ordering::Relaxed);
            }
            Event::WorkerFailure { .. } => {
                self.worker_failures.fetch_add(1, Ordering::Relaxed);
            }
            Event::Resume { .. } => {
                self.resumes.fetch_add(1, Ordering::Relaxed);
            }
            Event::LivenessWorker { .. } => {
                self.liveness_workers.fetch_add(1, Ordering::Relaxed);
            }
            Event::Spill {
                total_spilled_bytes,
                ..
            } => {
                self.spills.fetch_add(1, Ordering::Relaxed);
                self.spilled_bytes
                    .store(*total_spilled_bytes, Ordering::Relaxed);
            }
            Event::BudgetIgnored { .. } => {
                self.budget_ignored_events.fetch_add(1, Ordering::Relaxed);
            }
            Event::CacheStats { .. } => {
                self.cache_stats_events.fetch_add(1, Ordering::Relaxed);
            }
            Event::PhaseEnter { phase } => {
                self.phase_entered[phase.index()]
                    .store(self.now_nanos(), Ordering::Relaxed);
            }
            Event::PhaseExit { phase } => {
                let entered =
                    self.phase_entered[phase.index()].swap(u64::MAX, Ordering::Relaxed);
                if entered != u64::MAX {
                    let spent = self.now_nanos().saturating_sub(entered);
                    self.phase_nanos[phase.index()].fetch_add(spent, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Serializes every event as one JSON line into a shared writer.
///
/// Lines are written under a mutex — events are emitted at sampled
/// cadence, never from the allocation-free hot loop, so the lock is
/// cold. Timestamps (`"t"`, nanoseconds since the recorder was
/// created) are taken *inside* the lock, which makes them monotonic in
/// file order regardless of the emitting thread.
pub struct JsonlRecorder {
    epoch: Instant,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder").finish_non_exhaustive()
    }
}

impl JsonlRecorder {
    /// Records into an arbitrary writer (e.g. an in-memory buffer for
    /// tests).
    pub fn from_writer(writer: impl Write + Send + 'static) -> Self {
        JsonlRecorder {
            epoch: Instant::now(),
            sink: Mutex::new(Box::new(writer)),
        }
    }

    /// Creates (truncating) a JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors from creating the file.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonlRecorder::from_writer(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }

    /// Opens `path` for appending (creating it if missing) — the mode
    /// [`global`] uses, so successive runs accumulate in one stream.
    ///
    /// # Errors
    ///
    /// I/O errors from opening the file.
    pub fn append(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonlRecorder::from_writer(std::io::BufWriter::new(
            std::fs::OpenOptions::new().create(true).append(true).open(path)?,
        )))
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let _ = self.sink.lock().unwrap().flush();
    }

    // Flushing every line keeps the stream durable and live-tailable:
    // the process-wide recorder [`global`] installs lives in a
    // `OnceLock` and is never dropped, so `Drop`'s flush cannot be
    // relied on, and events are emitted at sampled cadence — never
    // from the allocation-free hot loop — so the extra write syscall
    // per event is noise.
    fn write_line(&self, body: &str) {
        let mut sink = self.sink.lock().unwrap();
        let t = self.epoch.elapsed().as_nanos() as u64;
        let _ = writeln!(sink, "{{\"v\":{OBS_SCHEMA_VERSION},\"t\":{t},{body}}}");
        let _ = sink.flush();
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        if let Ok(sink) = self.sink.get_mut() {
            let _ = sink.flush();
        }
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &Event<'_>) {
        let mut body = format!("\"ev\":\"{}\"", event.kind());
        match event {
            Event::RunStart {
                engine,
                threads,
                mode,
            } => {
                body.push_str(&format!(
                    ",\"engine\":{},\"threads\":{threads},\"mode\":{}",
                    json_str(engine),
                    json_str(mode)
                ));
            }
            Event::PhaseEnter { phase } | Event::PhaseExit { phase } => {
                body.push_str(&format!(",\"phase\":\"{}\"", phase.name()));
            }
            Event::Progress { snapshot } => {
                body.push_str(&format!(
                    ",\"states\":{},\"transitions\":{},\"elapsed_nanos\":{},\
                     \"states_per_sec\":{:.0}",
                    snapshot.states,
                    snapshot.transitions,
                    snapshot.elapsed_nanos,
                    snapshot.states_per_sec()
                ));
                if let Some(f) = snapshot.frontier {
                    body.push_str(&format!(",\"frontier\":{f}"));
                }
                if let Some(l) = snapshot.level {
                    body.push_str(&format!(",\"level\":{l}"));
                }
                if let Some(w) = snapshot.worker {
                    body.push_str(&format!(",\"worker\":{w}"));
                }
                if let Some(b) = snapshot.budget_states {
                    body.push_str(&format!(",\"budget_states\":{b}"));
                }
                if let Some(b) = snapshot.budget_transitions {
                    body.push_str(&format!(",\"budget_transitions\":{b}"));
                }
            }
            Event::WorkerLevel {
                worker,
                level,
                claimed,
                inserted,
            } => {
                body.push_str(&format!(
                    ",\"worker\":{worker},\"level\":{level},\"claimed\":{claimed},\
                     \"inserted\":{inserted}"
                ));
            }
            Event::FaultActivation { action, step, kind } => {
                body.push_str(&format!(
                    ",\"action\":{},\"step\":{step},\"kind\":{}",
                    json_str(action),
                    json_str(kind)
                ));
            }
            Event::Counterexample {
                kind,
                reason,
                length,
                loop_start,
                fault_steps,
            } => {
                body.push_str(&format!(
                    ",\"kind\":{},\"reason\":{},\"length\":{length},\"fault_steps\":{fault_steps}",
                    json_str(kind),
                    json_str(reason)
                ));
                if let Some(l) = loop_start {
                    body.push_str(&format!(",\"loop_start\":{l}"));
                }
            }
            Event::Check { kind, name, holds } => {
                body.push_str(&format!(
                    ",\"kind\":{},\"name\":{},\"holds\":{holds}",
                    json_str(kind),
                    json_str(name)
                ));
            }
            Event::Reduction {
                ample_states,
                full_states,
                skipped_transitions,
                canon_hits,
            } => {
                body.push_str(&format!(
                    ",\"ample_states\":{ample_states},\"full_states\":{full_states},\
                     \"skipped_transitions\":{skipped_transitions},\
                     \"canon_hits\":{canon_hits}"
                ));
            }
            Event::Checkpoint {
                seq,
                states,
                transitions,
                frontier,
            }
            | Event::Resume {
                seq,
                states,
                transitions,
                frontier,
            } => {
                body.push_str(&format!(
                    ",\"seq\":{seq},\"states\":{states},\
                     \"transitions\":{transitions},\"frontier\":{frontier}"
                ));
            }
            Event::WorkerFailure {
                worker,
                level,
                requeued,
            } => {
                body.push_str(&format!(
                    ",\"worker\":{worker},\"level\":{level},\"requeued\":{requeued}"
                ));
            }
            Event::LivenessWorker {
                worker,
                components,
                candidates,
            } => {
                body.push_str(&format!(
                    ",\"worker\":{worker},\"components\":{components},\
                     \"candidates\":{candidates}"
                ));
            }
            Event::Spill {
                tier,
                seq,
                records,
                bytes,
                total_spilled_bytes,
            } => {
                body.push_str(&format!(
                    ",\"tier\":{},\"seq\":{seq},\"records\":{records},\"bytes\":{bytes},\
                     \"total_spilled_bytes\":{total_spilled_bytes}",
                    json_str(tier)
                ));
            }
            Event::BudgetIgnored {
                budget_bytes,
                reason,
            } => {
                body.push_str(&format!(
                    ",\"budget_bytes\":{budget_bytes},\"reason\":{}",
                    json_str(reason)
                ));
            }
            Event::CacheStats {
                hits,
                misses,
                evictions,
                resident_bytes,
                spilled_bytes,
            } => {
                body.push_str(&format!(
                    ",\"hits\":{hits},\"misses\":{misses},\"evictions\":{evictions},\
                     \"resident_bytes\":{resident_bytes},\"spilled_bytes\":{spilled_bytes}"
                ));
            }
            Event::RunEnd { report } => {
                body.push_str(&format!(",\"report\":{}", report.to_json()));
            }
        }
        self.write_line(&body);
    }
}

// ---------------------------------------------------------------------
// Handles, env routing, and helpers
// ---------------------------------------------------------------------

/// A cheap, cloneable, always-`Send + Sync` reference to a recorder.
///
/// `None` inside means the null recorder — the default — without an
/// allocation. This is the form engines carry (inside
/// [`Budget`](crate::Budget)) and consult on the hot path.
#[derive(Clone, Default)]
pub struct RecorderHandle {
    inner: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("RecorderHandle(null)"),
            Some(r) => write!(
                f,
                "RecorderHandle({})",
                if r.enabled() { "enabled" } else { "disabled" }
            ),
        }
    }
}

impl RecorderHandle {
    /// The null handle (no recorder, zero overhead).
    pub fn null() -> Self {
        RecorderHandle { inner: None }
    }

    /// Wraps a shared recorder.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        RecorderHandle {
            inner: Some(recorder),
        }
    }

    /// Whether events should be produced. Hoist this out of hot loops.
    pub fn enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|r| r.enabled())
    }

    /// Forwards one event (no-op when disabled).
    pub fn record(&self, event: &Event<'_>) {
        if let Some(r) = &self.inner {
            if r.enabled() {
                r.record(event);
            }
        }
    }
}

/// RAII phase bracket: emits [`Event::PhaseEnter`] on construction and
/// the matching [`Event::PhaseExit`] on drop, so early returns and `?`
/// propagation cannot leave a phase open.
pub struct PhaseGuard {
    handle: Option<(RecorderHandle, Phase)>,
}

impl PhaseGuard {
    /// Enters `phase` on `handle` (a no-op guard when the handle is
    /// disabled).
    pub fn enter(handle: &RecorderHandle, phase: Phase) -> PhaseGuard {
        if handle.enabled() {
            handle.record(&Event::PhaseEnter { phase });
            PhaseGuard {
                handle: Some((handle.clone(), phase)),
            }
        } else {
            PhaseGuard { handle: None }
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((handle, phase)) = self.handle.take() {
            handle.record(&Event::PhaseExit { phase });
        }
    }
}

/// The name of the routing environment variable: set
/// `OPENTLA_OBS=/path.jsonl` and every engine that did not receive an
/// explicit recorder appends its events there.
pub const OBS_ENV: &str = "OPENTLA_OBS";

/// The process-wide default recorder, initialized once from
/// [`OBS_ENV`]: an appending [`JsonlRecorder`] when the variable names
/// a writable path, the null handle otherwise. `Budget::default()`
/// starts from this handle, which is how the env routing reaches every
/// engine.
pub fn global() -> RecorderHandle {
    static GLOBAL: OnceLock<RecorderHandle> = OnceLock::new();
    GLOBAL
        .get_or_init(|| match std::env::var(OBS_ENV) {
            Ok(path) if !path.trim().is_empty() => match JsonlRecorder::append(path.trim())
            {
                Ok(rec) => RecorderHandle::new(Arc::new(rec)),
                Err(e) => {
                    eprintln!("opentla: {OBS_ENV}={path}: {e}; observability disabled");
                    RecorderHandle::null()
                }
            },
            _ => RecorderHandle::null(),
        })
        .clone()
}

/// How many of a counterexample's trace steps fired a fault-injection
/// action (actions named by the `faults` combinators carry a
/// `"fault:"` prefix).
pub fn count_fault_steps(actions: &[Option<String>]) -> usize {
    actions
        .iter()
        .flatten()
        .filter(|a| a.starts_with("fault:"))
        .count()
}

/// Emits a [`Event::Counterexample`] with provenance — and one
/// [`Event::FaultActivation`] per fault-injection step on the trace —
/// for a counterexample produced by check `kind`.
pub fn emit_counterexample(handle: &RecorderHandle, kind: &str, cx: &crate::Counterexample) {
    if !handle.enabled() {
        return;
    }
    for (step, action) in cx.actions().iter().enumerate() {
        if let Some(a) = action {
            if a.starts_with("fault:") {
                handle.record(&Event::FaultActivation {
                    action: a,
                    step: step as u64,
                    kind: "fired",
                });
            }
        }
    }
    handle.record(&Event::Counterexample {
        kind,
        reason: cx.reason(),
        length: cx.states().len(),
        loop_start: cx.loop_start(),
        fault_steps: count_fault_steps(cx.actions()),
    });
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Stream validation (the module's own consumer)
// ---------------------------------------------------------------------

/// A parsed JSON value — the minimal in-tree parser used to validate
/// event streams without external dependencies.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object's keys, in source order.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let Json::Str(key) = parse_value(bytes, pos)? else {
                    return Err(format!("object key must be a string at byte {pos}"));
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'"' => {
            *pos += 1;
            let mut out = String::new();
            loop {
                let Some(&c) = bytes.get(*pos) else {
                    return Err("unterminated string".into());
                };
                *pos += 1;
                match c {
                    b'"' => return Ok(Json::Str(out)),
                    b'\\' => {
                        let Some(&esc) = bytes.get(*pos) else {
                            return Err("unterminated escape".into());
                        };
                        *pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = bytes
                                    .get(*pos..*pos + 4)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                *pos += 4;
                                out.push(
                                    char::from_u32(code).unwrap_or('\u{fffd}'),
                                );
                            }
                            other => {
                                return Err(format!("bad escape '\\{}'", other as char))
                            }
                        }
                    }
                    c => {
                        // Re-decode multi-byte UTF-8 from the source.
                        if c < 0x80 {
                            out.push(c as char);
                        } else {
                            let start = *pos - 1;
                            let width = match c {
                                0xc0..=0xdf => 2,
                                0xe0..=0xef => 3,
                                _ => 4,
                            };
                            let slice = bytes
                                .get(start..start + width)
                                .ok_or("truncated UTF-8 sequence")?;
                            out.push_str(
                                std::str::from_utf8(slice).map_err(|e| e.to_string())?,
                            );
                            *pos = start + width;
                        }
                    }
                }
            }
        }
        b't' if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        b'f' if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        b'n' if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        _ => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

/// Totals of one completed run, extracted by [`validate_stream`] from
/// its `run_end` report.
#[derive(Clone, Debug, PartialEq)]
pub struct RunTotals {
    /// Engine name.
    pub engine: String,
    /// Worker threads.
    pub threads: u64,
    /// Visited-set mode.
    pub mode: String,
    /// Unique states.
    pub states: u64,
    /// Transitions.
    pub transitions: u64,
    /// BFS depth.
    pub depth: u64,
    /// Whether the run completed.
    pub complete: bool,
}

/// What [`validate_stream`] learned about a schema-valid stream.
#[derive(Clone, Debug, Default)]
pub struct StreamSummary {
    /// Total events.
    pub events: usize,
    /// Event count per kind.
    pub kinds: BTreeMap<String, usize>,
    /// For every event kind seen, the set of field names observed
    /// (union across events of that kind) — the stream's *shape*, for
    /// golden tests that must not depend on timings.
    pub fields: BTreeMap<String, Vec<String>>,
    /// Totals of each completed run, in stream order.
    pub runs: Vec<RunTotals>,
    /// Deepest phase nesting observed.
    pub max_phase_depth: usize,
}

fn req_u64(obj: &Json, key: &str, line: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line}: missing/invalid \"{key}\""))
}

fn req_str<'j>(obj: &'j Json, key: &str, line: usize) -> Result<&'j str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line}: missing/invalid \"{key}\""))
}

/// Validates a JSONL event stream against the schema.
///
/// Checks, per line: it parses; `"v"` equals [`OBS_SCHEMA_VERSION`];
/// `"t"` is present and non-decreasing in file order (the recorder
/// timestamps under its write lock, so this holds across threads);
/// `"ev"` is a known kind carrying its required fields. Structurally:
/// phase enter/exit events obey stack discipline, runs do not nest,
/// every `run_start` is closed by a `run_end` whose engine matches,
/// and the last `progress` snapshot inside a run agrees with the final
/// report's state/transition totals.
///
/// # Errors
///
/// The first violation, as a human-readable string prefixed with the
/// 1-based line number.
pub fn validate_stream(text: &str) -> Result<StreamSummary, String> {
    let mut summary = StreamSummary::default();
    let mut last_t: u64 = 0;
    let mut phase_stack: Vec<String> = Vec::new();
    let mut open_run: Option<String> = None;
    let mut last_progress: Option<(u64, u64)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(raw).map_err(|e| format!("line {line}: {e}"))?;
        let v = req_u64(&obj, "v", line)?;
        if v != OBS_SCHEMA_VERSION {
            return Err(format!(
                "line {line}: schema version {v}, expected {OBS_SCHEMA_VERSION}"
            ));
        }
        let t = req_u64(&obj, "t", line)?;
        if t < last_t {
            return Err(format!(
                "line {line}: timestamp {t} went backwards (previous {last_t})"
            ));
        }
        last_t = t;
        let ev = req_str(&obj, "ev", line)?.to_string();
        summary.events += 1;
        *summary.kinds.entry(ev.clone()).or_insert(0) += 1;
        let fields = summary.fields.entry(ev.clone()).or_default();
        for k in obj.keys() {
            if !fields.iter().any(|f| f == k) {
                fields.push(k.to_string());
            }
        }
        match ev.as_str() {
            "run_start" => {
                let engine = req_str(&obj, "engine", line)?;
                req_u64(&obj, "threads", line)?;
                req_str(&obj, "mode", line)?;
                if let Some(open) = &open_run {
                    return Err(format!(
                        "line {line}: run_start({engine}) inside open run {open}"
                    ));
                }
                open_run = Some(engine.to_string());
                last_progress = None;
            }
            "run_end" => {
                let report = obj
                    .get("report")
                    .ok_or_else(|| format!("line {line}: run_end without report"))?;
                let engine = req_str(report, "engine", line)?;
                let sv = req_u64(report, "schema_version", line)?;
                if sv != OBS_SCHEMA_VERSION {
                    return Err(format!("line {line}: report schema version {sv}"));
                }
                match open_run.take() {
                    Some(open) if open == engine => {}
                    Some(open) => {
                        return Err(format!(
                            "line {line}: run_end({engine}) closes run_start({open})"
                        ))
                    }
                    None => {
                        return Err(format!("line {line}: run_end without run_start"))
                    }
                }
                let totals = RunTotals {
                    engine: engine.to_string(),
                    threads: req_u64(report, "threads", line)?,
                    mode: req_str(report, "mode", line)?.to_string(),
                    states: req_u64(report, "states", line)?,
                    transitions: req_u64(report, "transitions", line)?,
                    depth: req_u64(report, "depth", line)?,
                    complete: report
                        .get("complete")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| format!("line {line}: report missing complete"))?,
                };
                req_u64(report, "duration_nanos", line)?;
                req_str(report, "outcome", line)?;
                if let Some((ps, pt)) = last_progress {
                    if totals.complete && (ps != totals.states || pt != totals.transitions)
                    {
                        return Err(format!(
                            "line {line}: final snapshot ({ps} states, {pt} transitions) \
                             disagrees with report ({} states, {} transitions)",
                            totals.states, totals.transitions
                        ));
                    }
                }
                summary.runs.push(totals);
            }
            "phase_enter" => {
                phase_stack.push(req_str(&obj, "phase", line)?.to_string());
                summary.max_phase_depth = summary.max_phase_depth.max(phase_stack.len());
            }
            "phase_exit" => {
                let phase = req_str(&obj, "phase", line)?;
                match phase_stack.pop() {
                    Some(top) if top == phase => {}
                    Some(top) => {
                        return Err(format!(
                            "line {line}: phase_exit({phase}) closes phase_enter({top})"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "line {line}: phase_exit({phase}) with empty phase stack"
                        ))
                    }
                }
            }
            "progress" => {
                let states = req_u64(&obj, "states", line)?;
                let transitions = req_u64(&obj, "transitions", line)?;
                req_u64(&obj, "elapsed_nanos", line)?;
                last_progress = Some((states, transitions));
            }
            "worker_level" => {
                req_u64(&obj, "worker", line)?;
                req_u64(&obj, "level", line)?;
                req_u64(&obj, "claimed", line)?;
                req_u64(&obj, "inserted", line)?;
            }
            "fault_activation" => {
                req_str(&obj, "action", line)?;
                req_u64(&obj, "step", line)?;
                req_str(&obj, "kind", line)?;
            }
            "counterexample" => {
                req_str(&obj, "kind", line)?;
                req_str(&obj, "reason", line)?;
                req_u64(&obj, "length", line)?;
                req_u64(&obj, "fault_steps", line)?;
            }
            "check" => {
                req_str(&obj, "kind", line)?;
                req_str(&obj, "name", line)?;
                obj.get("holds")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| format!("line {line}: check missing holds"))?;
            }
            "reduction" => {
                req_u64(&obj, "ample_states", line)?;
                req_u64(&obj, "full_states", line)?;
                req_u64(&obj, "skipped_transitions", line)?;
                req_u64(&obj, "canon_hits", line)?;
            }
            "checkpoint" | "resume" => {
                req_u64(&obj, "seq", line)?;
                req_u64(&obj, "states", line)?;
                req_u64(&obj, "transitions", line)?;
                req_u64(&obj, "frontier", line)?;
            }
            "worker_failure" => {
                req_u64(&obj, "worker", line)?;
                req_u64(&obj, "level", line)?;
                req_u64(&obj, "requeued", line)?;
            }
            "liveness_worker" => {
                req_u64(&obj, "worker", line)?;
                req_u64(&obj, "components", line)?;
                req_u64(&obj, "candidates", line)?;
            }
            "spill" => {
                let tier = req_str(&obj, "tier", line)?;
                if !matches!(tier, "arena" | "edges" | "visited") {
                    return Err(format!("line {line}: unknown spill tier \"{tier}\""));
                }
                req_u64(&obj, "seq", line)?;
                req_u64(&obj, "records", line)?;
                req_u64(&obj, "bytes", line)?;
                req_u64(&obj, "total_spilled_bytes", line)?;
            }
            "budget_ignored" => {
                req_u64(&obj, "budget_bytes", line)?;
                req_str(&obj, "reason", line)?;
            }
            "cache_stats" => {
                req_u64(&obj, "hits", line)?;
                req_u64(&obj, "misses", line)?;
                req_u64(&obj, "evictions", line)?;
                req_u64(&obj, "resident_bytes", line)?;
                req_u64(&obj, "spilled_bytes", line)?;
            }
            other => return Err(format!("line {line}: unknown event kind \"{other}\"")),
        }
    }
    if let Some(open) = open_run {
        return Err(format!("stream ended inside open run {open}"));
    }
    if !phase_stack.is_empty() {
        return Err(format!("stream ended inside open phase(s) {phase_stack:?}"));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let handle = RecorderHandle::null();
        assert!(!handle.enabled());
        handle.record(&Event::PhaseEnter {
            phase: Phase::Suite,
        });
        assert!(!RecorderHandle::default().enabled());
    }

    #[test]
    fn counting_recorder_tallies_and_times_phases() {
        let rec = CountingRecorder::new();
        rec.record(&Event::RunStart {
            engine: "explore_sequential",
            threads: 1,
            mode: "fingerprint",
        });
        rec.record(&Event::PhaseEnter {
            phase: Phase::ExploreExpand,
        });
        std::thread::sleep(std::time::Duration::from_millis(1));
        rec.record(&Event::PhaseExit {
            phase: Phase::ExploreExpand,
        });
        let report = RunReport {
            schema_version: OBS_SCHEMA_VERSION,
            engine: "explore_sequential".into(),
            threads: 1,
            mode: "fingerprint".into(),
            states: 42,
            transitions: 99,
            depth: 7,
            deadlocks: 1,
            outcome: "complete".into(),
            complete: true,
            duration_nanos: 5,
        };
        rec.record(&Event::RunEnd { report: &report });
        assert_eq!(rec.run_starts(), 1);
        assert_eq!(rec.run_ends(), 1);
        assert_eq!(rec.states(), 42);
        assert_eq!(rec.transitions(), 99);
        assert_eq!(rec.depth(), 7);
        assert!(rec.phase_nanos(Phase::ExploreExpand) > 0);
        assert_eq!(rec.phase_nanos(Phase::Liveness), 0);
        assert_eq!(rec.events(), 4);
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let rec = JsonlRecorder::from_writer(Shared(Arc::clone(&buf)));
        rec.record(&Event::RunStart {
            engine: "explore_sequential",
            threads: 1,
            mode: "fingerprint",
        });
        rec.record(&Event::PhaseEnter {
            phase: Phase::ExploreExpand,
        });
        rec.record(&Event::Progress {
            snapshot: ProgressSnapshot {
                states: 3,
                transitions: 2,
                elapsed_nanos: 10,
                frontier: Some(1),
                ..ProgressSnapshot::default()
            },
        });
        rec.record(&Event::PhaseExit {
            phase: Phase::ExploreExpand,
        });
        let report = RunReport {
            schema_version: OBS_SCHEMA_VERSION,
            engine: "explore_sequential".into(),
            threads: 1,
            mode: "fingerprint".into(),
            states: 3,
            transitions: 2,
            depth: 2,
            deadlocks: 1,
            outcome: "complete".into(),
            complete: true,
            duration_nanos: 11,
        };
        rec.record(&Event::RunEnd { report: &report });
        rec.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let summary = validate_stream(&text).expect("stream validates");
        assert_eq!(summary.events, 5);
        assert_eq!(summary.runs.len(), 1);
        assert_eq!(summary.runs[0].states, 3);
        assert_eq!(summary.kinds["progress"], 1);
        assert_eq!(summary.max_phase_depth, 1);
    }

    #[test]
    fn liveness_worker_event_counts_serializes_and_validates() {
        let rec = CountingRecorder::new();
        rec.record(&Event::LivenessWorker {
            worker: 2,
            components: 17,
            candidates: 1,
        });
        assert_eq!(rec.liveness_worker_events(), 1);
        assert_eq!(rec.events(), 1);

        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let rec = JsonlRecorder::from_writer(Shared(Arc::clone(&buf)));
        rec.record(&Event::LivenessWorker {
            worker: 2,
            components: 17,
            candidates: 1,
        });
        rec.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let summary = validate_stream(&text).expect("stream validates");
        assert_eq!(summary.kinds["liveness_worker"], 1);
        // The fields are required: dropping one fails validation.
        let bad = "{\"v\":1,\"t\":1,\"ev\":\"liveness_worker\",\"worker\":0,\"components\":3}\n";
        assert!(validate_stream(bad).unwrap_err().contains("candidates"));
    }

    #[test]
    fn validator_rejects_malformed_streams() {
        // Backwards timestamp.
        let bad = "{\"v\":1,\"t\":5,\"ev\":\"phase_enter\",\"phase\":\"suite\"}\n\
                   {\"v\":1,\"t\":4,\"ev\":\"phase_exit\",\"phase\":\"suite\"}\n";
        assert!(validate_stream(bad).unwrap_err().contains("backwards"));
        // Mismatched phase nesting.
        let bad = "{\"v\":1,\"t\":1,\"ev\":\"phase_enter\",\"phase\":\"suite\"}\n\
                   {\"v\":1,\"t\":2,\"ev\":\"phase_exit\",\"phase\":\"liveness\"}\n";
        assert!(validate_stream(bad).unwrap_err().contains("closes"));
        // Unclosed run.
        let bad = "{\"v\":1,\"t\":1,\"ev\":\"run_start\",\"engine\":\"e\",\"threads\":1,\"mode\":\"m\"}\n";
        assert!(validate_stream(bad).unwrap_err().contains("open run"));
        // Wrong version.
        let bad = "{\"v\":99,\"t\":1,\"ev\":\"progress\",\"states\":0,\"transitions\":0,\"elapsed_nanos\":0}\n";
        assert!(validate_stream(bad).unwrap_err().contains("schema version"));
        // Unknown kind.
        let bad = "{\"v\":1,\"t\":1,\"ev\":\"mystery\"}\n";
        assert!(validate_stream(bad).unwrap_err().contains("unknown event"));
    }

    #[test]
    fn json_parser_handles_escapes_and_structure() {
        let v = Json::parse(
            "{\"a\": [1, 2.5, -3], \"s\": \"x\\n\\\"y\\\" ⊳\", \"b\": true, \"n\": null}",
        )
        .unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![
            Json::Num(1.0),
            Json::Num(2.5),
            Json::Num(-3.0)
        ])));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"y\" ⊳"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1, 2").is_err());
    }

    #[test]
    fn fault_step_counting_and_emission() {
        let actions = vec![
            None,
            Some("deliver".to_string()),
            Some("fault:lossy[sync]".to_string()),
            Some("fault:crash[q]".to_string()),
        ];
        assert_eq!(count_fault_steps(&actions), 2);
        let counting = Arc::new(CountingRecorder::new());
        let handle = RecorderHandle::new(counting.clone());
        let blank = || opentla_kernel::State::new(Vec::<opentla_kernel::Value>::new());
        let cx = crate::Counterexample::new(
            "test",
            vec![blank(), blank(), blank(), blank()],
            actions,
            None,
        );
        emit_counterexample(&handle, "liveness", &cx);
        assert_eq!(counting.counterexamples(), 1);
        assert_eq!(counting.fault_activations(), 2);
    }

    #[test]
    fn report_json_is_parseable() {
        let report = RunReport {
            schema_version: OBS_SCHEMA_VERSION,
            engine: "explore_parallel".into(),
            threads: 4,
            mode: "exact".into(),
            states: 10,
            transitions: 20,
            depth: 5,
            deadlocks: 0,
            outcome: "exhausted (state limit of 10 reached)".into(),
            complete: false,
            duration_nanos: 1234,
        };
        let parsed = Json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("states").unwrap().as_u64(), Some(10));
        assert_eq!(parsed.get("engine").unwrap().as_str(), Some("explore_parallel"));
        assert_eq!(parsed.get("complete").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn phase_guard_brackets_even_on_early_exit() {
        let counting = Arc::new(CountingRecorder::new());
        let handle = RecorderHandle::new(counting.clone());
        let attempt = || -> Result<(), ()> {
            let _g = PhaseGuard::enter(&handle, Phase::Liveness);
            Err(())
        };
        assert!(attempt().is_err());
        // Enter and exit both fired despite the early return.
        assert_eq!(counting.events(), 2);
        assert!(counting.phase_nanos(Phase::Liveness) < u64::MAX);
    }
}
