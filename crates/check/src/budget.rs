//! Resource governance for the checking engines.
//!
//! Explicit-state checking is open-ended: a mis-specified system can
//! have a state space far beyond what the caller intended to pay for.
//! Following TLC's practice of bounded, diagnostics-first checking,
//! every engine in this crate can run under a [`Budget`] — a limit on
//! states, transitions, wall-clock time, and an external cancellation
//! flag. Exhausting the budget is **not an error**: the engine stops,
//! keeps everything it learned (a partial [`StateGraph`]
//! (crate::StateGraph), an undecided verdict), and tags the result
//! with an [`Outcome::Exhausted`] carrying the reason, the frontier
//! still unexplored, and summary statistics. The [`escalate`] helper
//! turns that into a retry loop with geometrically growing budgets.

use crate::checkpoint::{CheckpointSpec, ResumeToken};
use crate::obs::{self, Event, ProgressSnapshot, RecorderHandle};
use crate::GraphStats;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A resource envelope for one checking run.
///
/// The default budget is unlimited on every axis; callers narrow the
/// axes they care about:
///
/// ```
/// use opentla_check::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::default()
///     .states(10_000)
///     .transitions(100_000)
///     .with_deadline(Duration::from_secs(5));
/// assert_eq!(budget.max_states, 10_000);
/// ```
#[derive(Clone, Debug)]
pub struct Budget {
    /// Maximum number of *unique* states an engine may record.
    pub max_states: usize,
    /// Maximum number of transitions (graph edges / step checks) an
    /// engine may process.
    pub max_transitions: usize,
    /// Wall-clock allowance for the run, measured from the engine's
    /// entry point.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation: set this flag from another thread and
    /// the engine stops at its next checkpoint.
    pub cancel: Arc<AtomicBool>,
    /// Where the engines running under this budget narrate their work.
    /// Defaults to [`obs::global`] — the null recorder unless
    /// `OPENTLA_OBS=/path.jsonl` is set — so observability rides along
    /// wherever a budget already travels.
    pub recorder: RecorderHandle,
    /// Crash tolerance: when set, exploration engines periodically
    /// write a resumable snapshot of the run to
    /// [`CheckpointSpec::path`] (and a final one on exhaustion), and
    /// [`Outcome::Exhausted`] carries a [`ResumeToken`] pointing at it.
    /// `None` (the default) disables checkpointing entirely.
    pub checkpoint: Option<CheckpointSpec>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_states: usize::MAX,
            max_transitions: usize::MAX,
            deadline: None,
            cancel: Arc::new(AtomicBool::new(false)),
            recorder: obs::global(),
            checkpoint: None,
        }
    }
}

impl Budget {
    /// An unlimited budget (alias of [`Budget::default`], for call
    /// sites where the name reads better).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Replaces the unique-state limit.
    pub fn states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Replaces the transition limit.
    pub fn transitions(mut self, max_transitions: usize) -> Self {
        self.max_transitions = max_transitions;
        self
    }

    /// Replaces the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replaces the recorder (see [`crate::obs`]). Pass
    /// [`RecorderHandle::null`] to silence a budget that would
    /// otherwise inherit the `OPENTLA_OBS` global.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Enables periodic checkpointing: exploration engines running
    /// under this budget snapshot their resumable core to `path` every
    /// `cadence` state expansions (and once more at exhaustion), so an
    /// interrupted run can continue from where it stopped instead of
    /// restarting — TLC's `-checkpoint`/`-recover` discipline. Pass
    /// [`DEFAULT_CHECKPOINT_CADENCE`](crate::DEFAULT_CHECKPOINT_CADENCE)
    /// unless you have a reason not to;
    /// a `cadence` of 0 is treated as 1.
    ///
    /// The write is atomic (temp file + rename) and checksummed; see
    /// [`crate::Snapshot`]. Resume with [`crate::explore_resumable`].
    pub fn with_checkpoint(
        mut self,
        path: impl Into<std::path::PathBuf>,
        cadence: u64,
    ) -> Self {
        self.checkpoint = Some(CheckpointSpec {
            path: path.into(),
            cadence: cadence.max(1),
        });
        self
    }

    /// A handle to the cancellation flag, for handing to another
    /// thread (e.g. a ctrl-C handler).
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Requests cooperative cancellation of every engine sharing this
    /// budget's flag.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// The same budget with finite limits scaled by `factor`
    /// (saturating), sharing the cancellation flag. Deadlines scale
    /// too: a run that timed out deserves proportionally more time on
    /// the retry.
    pub fn escalated(&self, factor: u32) -> Budget {
        let factor = factor.max(1);
        let scale = |n: usize| {
            if n == usize::MAX {
                n
            } else {
                n.saturating_mul(factor as usize)
            }
        };
        Budget {
            max_states: scale(self.max_states),
            max_transitions: scale(self.max_transitions),
            deadline: self.deadline.map(|d| d.saturating_mul(factor)),
            cancel: Arc::clone(&self.cancel),
            recorder: self.recorder.clone(),
            // The checkpoint path is shared across escalations: each
            // retry overwrites the same snapshot, so the latest one
            // always reflects the furthest frontier reached.
            checkpoint: self.checkpoint.clone(),
        }
    }
}

/// Why a governed run stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExhaustReason {
    /// The unique-state limit was reached.
    StateLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The transition limit was reached.
    TransitionLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured allowance.
        allowed: Duration,
    },
    /// The cancellation flag was raised externally.
    Cancelled,
}

impl std::fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustReason::StateLimit { limit } => {
                write!(f, "state limit of {limit} reached")
            }
            ExhaustReason::TransitionLimit { limit } => {
                write!(f, "transition limit of {limit} reached")
            }
            ExhaustReason::Deadline { allowed } => {
                write!(f, "deadline of {allowed:?} expired")
            }
            ExhaustReason::Cancelled => write!(f, "cancelled by caller"),
        }
    }
}

/// How a governed run ended: either it covered everything it set out
/// to cover, or the budget ran out first.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The engine ran to completion; its answer is authoritative.
    Complete,
    /// The budget ran out. The partial results are still valid for
    /// everything that *was* covered.
    Exhausted {
        /// Which budget axis was exhausted.
        reason: ExhaustReason,
        /// Work items discovered but not yet processed (BFS frontier
        /// states, unchecked edges, …).
        frontier_size: usize,
        /// Statistics of the partial graph at the moment of
        /// exhaustion.
        stats: GraphStats,
        /// Where the run's final snapshot was written, when the budget
        /// carried a [`Budget::with_checkpoint`] spec and the engine
        /// supports resumption — hand it (or just the same budget) to
        /// [`crate::explore_resumable`] to continue from the preserved
        /// frontier instead of restarting.
        resume: Option<ResumeToken>,
    },
}

impl Outcome {
    /// Whether the run covered everything (its answer is
    /// authoritative).
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete)
    }

    /// The exhaustion reason, if the budget ran out.
    pub fn exhaustion(&self) -> Option<&ExhaustReason> {
        match self {
            Outcome::Complete => None,
            Outcome::Exhausted { reason, .. } => Some(reason),
        }
    }

    /// The resume token, if the exhausted run left a snapshot behind.
    pub fn resume_token(&self) -> Option<&ResumeToken> {
        match self {
            Outcome::Complete => None,
            Outcome::Exhausted { resume, .. } => resume.as_ref(),
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Complete => write!(f, "complete"),
            Outcome::Exhausted {
                reason,
                frontier_size,
                stats,
                resume,
            } => {
                write!(
                    f,
                    "exhausted ({reason}); partial coverage: {stats}; \
                     {frontier_size} frontier item(s) unexplored"
                )?;
                if let Some(token) = resume {
                    write!(f, "; resumable from {}", token.path.display())?;
                }
                Ok(())
            }
        }
    }
}

/// Running tally of a budget during one engine invocation.
///
/// Engines call [`Meter::charge_state`] / [`Meter::charge_transition`]
/// as they do work and [`Meter::checkpoint`] at loop heads; the first
/// call returning `Some` reason is where they stop.
///
/// Counters are atomic, so one meter can be shared by reference across
/// the scoped workers of a parallel engine without locks on the hot
/// loop: the charge methods take `&self` and enforce the limits with a
/// compare-and-swap, so at most `max_states` state charges ever succeed
/// regardless of how many threads race (and likewise for transitions).
/// The old single-threaded call shapes (`&mut Meter`) still compile
/// unchanged — `&mut` access trivially coerces to `&`.
#[derive(Debug)]
pub struct Meter {
    budget: Budget,
    start: Instant,
    states: AtomicUsize,
    transitions: AtomicUsize,
    /// `budget.recorder.enabled()`, hoisted once at start so a null
    /// recorder costs the hot loop a single predictable branch.
    observe: bool,
    /// Checkpoint counter driving sampled progress emission.
    ticks: AtomicU64,
    /// Bytes the bounded-memory engine has spilled to disk (zero for
    /// the in-RAM engines).
    spilled: AtomicU64,
}

impl Meter {
    /// Starts metering against `budget` (the deadline clock starts
    /// now).
    pub fn start(budget: &Budget) -> Self {
        Meter {
            budget: budget.clone(),
            start: Instant::now(),
            states: AtomicUsize::new(0),
            transitions: AtomicUsize::new(0),
            observe: budget.recorder.enabled(),
            ticks: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
        }
    }

    /// Starts metering a *resumed* run: the counters are pre-charged
    /// with the work already banked in the snapshot, so a `max_states`
    /// budget still bounds the run's cumulative total across
    /// interruptions, not just the new attempt. The deadline clock —
    /// deliberately — restarts: a wall-clock allowance budgets an
    /// attempt, not the lifetime of a checkpoint file.
    pub fn start_resumed(budget: &Budget, states: usize, transitions: usize) -> Self {
        let meter = Meter::start(budget);
        meter.states.store(states, Ordering::Relaxed);
        meter.transitions.store(transitions, Ordering::Relaxed);
        meter
    }

    /// Charges `counter` by one if it is still under `limit`.
    fn charge(counter: &AtomicUsize, limit: usize) -> bool {
        counter
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < limit).then(|| n + 1)
            })
            .is_ok()
    }

    /// Records one unique state; `Some` if that state was over the
    /// limit. The caller should *not* keep the state in that case, so
    /// the recorded graph never exceeds `max_states`.
    pub fn charge_state(&self) -> Option<ExhaustReason> {
        if Meter::charge(&self.states, self.budget.max_states) {
            None
        } else {
            Some(ExhaustReason::StateLimit {
                limit: self.budget.max_states,
            })
        }
    }

    /// Records one processed transition; `Some` if over the limit.
    pub fn charge_transition(&self) -> Option<ExhaustReason> {
        if Meter::charge(&self.transitions, self.budget.max_transitions) {
            None
        } else {
            Some(ExhaustReason::TransitionLimit {
                limit: self.budget.max_transitions,
            })
        }
    }

    /// Deadline and cancellation check, for loop heads. When a
    /// recorder is enabled, also emits a sampled
    /// [`Event::Progress`] every [`obs::PROGRESS_SAMPLE`] checkpoints
    /// — the instrumentation piggybacks on the cadence the loop
    /// already pays for, keeping the hot path allocation-free.
    pub fn checkpoint(&self) -> Option<ExhaustReason> {
        if self.budget.cancel.load(Ordering::Relaxed) {
            return Some(ExhaustReason::Cancelled);
        }
        if let Some(allowed) = self.budget.deadline {
            if self.start.elapsed() > allowed {
                return Some(ExhaustReason::Deadline { allowed });
            }
        }
        if self.observe {
            let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
            if tick % obs::PROGRESS_SAMPLE == obs::PROGRESS_SAMPLE - 1 {
                self.emit_progress(None, None, None);
            }
        }
        None
    }

    /// Emits one [`Event::Progress`] snapshot with the current counts
    /// (no-op when the recorder is disabled). Engines that know their
    /// frontier size, BFS level, or worker index pass them here.
    pub fn emit_progress(
        &self,
        frontier: Option<u64>,
        level: Option<u64>,
        worker: Option<u64>,
    ) {
        if !self.observe {
            return;
        }
        let finite = |n: usize| (n != usize::MAX).then_some(n as u64);
        self.budget.recorder.record(&Event::Progress {
            snapshot: ProgressSnapshot {
                states: self.states_used() as u64,
                transitions: self.transitions_used() as u64,
                elapsed_nanos: self.start.elapsed().as_nanos() as u64,
                frontier,
                level,
                worker,
                budget_states: finite(self.budget.max_states),
                budget_transitions: finite(self.budget.max_transitions),
            },
        });
    }

    /// Whether a recorder is enabled on this meter's budget.
    pub fn observed(&self) -> bool {
        self.observe
    }

    /// The budget's recorder handle (the null handle by default).
    pub fn recorder(&self) -> &RecorderHandle {
        &self.budget.recorder
    }

    /// Nanoseconds since this meter started.
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// States charged so far.
    pub fn states_used(&self) -> usize {
        self.states.load(Ordering::Relaxed)
    }

    /// Transitions charged so far.
    pub fn transitions_used(&self) -> usize {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Banks `bytes` written to disk by a spilling engine.
    pub fn add_spilled_bytes(&self, bytes: u64) {
        self.spilled.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total bytes spilled to disk so far (zero for in-RAM engines).
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled.load(Ordering::Relaxed)
    }
}

/// Results that know whether their run exhausted its budget, making
/// them eligible for [`escalate`].
pub trait Governed {
    /// The exhaustion reason, or `None` if the run completed.
    fn exhaustion(&self) -> Option<&ExhaustReason>;
}

/// Runs `attempt` under `budget`, retrying with geometrically larger
/// budgets (scaled by `factor` each round, up to `attempts` rounds in
/// total) while the result reports exhaustion. Returns the first
/// complete result, or the last partial one if every round exhausted.
///
/// ```
/// use opentla_check::{escalate, explore_governed, Budget, System, Init, GuardedAction};
/// use opentla_kernel::{Domain, Expr, Value, Vars};
///
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::int_range(0, 9));
/// let incr = GuardedAction::new(
///     "incr",
///     Expr::var(x).lt(Expr::int(9)),
///     vec![(x, Expr::var(x).add(Expr::int(1)))],
/// );
/// let sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr]);
/// // 2 states is not enough; 3 rounds of 4× escalation reach 32.
/// let run = escalate(&Budget::default().states(2), 4, 3, |b| {
///     explore_governed(&sys, b)
/// })
/// .unwrap();
/// assert!(run.outcome.is_complete());
/// assert_eq!(run.graph.len(), 10);
/// ```
pub fn escalate<T: Governed, E>(
    budget: &Budget,
    factor: u32,
    attempts: usize,
    mut attempt: impl FnMut(&Budget) -> Result<T, E>,
) -> Result<T, E> {
    let mut current = budget.clone();
    let mut result = attempt(&current)?;
    for _ in 1..attempts.max(1) {
        if result.exhaustion().is_none() {
            break;
        }
        current = current.escalated(factor);
        result = attempt(&current)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_narrows_axes() {
        let b = Budget::default()
            .states(5)
            .transitions(7)
            .with_deadline(Duration::from_millis(10));
        assert_eq!(b.max_states, 5);
        assert_eq!(b.max_transitions, 7);
        assert_eq!(b.deadline, Some(Duration::from_millis(10)));
    }

    #[test]
    fn escalated_scales_finite_limits_only() {
        let b = Budget::default().states(5);
        let bigger = b.escalated(4);
        assert_eq!(bigger.max_states, 20);
        assert_eq!(bigger.max_transitions, usize::MAX);
        // The cancel flag is shared across escalations.
        b.request_cancel();
        assert!(bigger.cancel.load(Ordering::Relaxed));
    }

    #[test]
    fn meter_trips_at_limits() {
        let m = Meter::start(&Budget::default().states(2).transitions(1));
        assert!(m.charge_state().is_none());
        assert!(m.charge_state().is_none());
        assert_eq!(
            m.charge_state(),
            Some(ExhaustReason::StateLimit { limit: 2 })
        );
        assert!(m.charge_transition().is_none());
        assert_eq!(
            m.charge_transition(),
            Some(ExhaustReason::TransitionLimit { limit: 1 })
        );
        assert_eq!(m.states_used(), 2);
        assert_eq!(m.transitions_used(), 1);
    }

    #[test]
    fn meter_is_shareable_and_exact_under_contention() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Budget>();
        assert_sync::<Meter>();

        let m = Meter::start(&Budget::default().states(100).transitions(100));
        let successes = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        if m.charge_state().is_none() {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // 400 racing charges against a limit of 100: exactly 100 win.
        assert_eq!(successes.load(Ordering::Relaxed), 100);
        assert_eq!(m.states_used(), 100);
    }

    #[test]
    fn checkpoint_sees_cancellation_and_deadline() {
        let b = Budget::default();
        let m = Meter::start(&b);
        assert!(m.checkpoint().is_none());
        b.request_cancel();
        assert_eq!(m.checkpoint(), Some(ExhaustReason::Cancelled));

        let b = Budget::default().with_deadline(Duration::from_secs(0));
        let m = Meter::start(&b);
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            m.checkpoint(),
            Some(ExhaustReason::Deadline { .. })
        ));
    }

    #[test]
    fn escalate_retries_until_complete() {
        struct Fake(Option<ExhaustReason>);
        impl Governed for Fake {
            fn exhaustion(&self) -> Option<&ExhaustReason> {
                self.0.as_ref()
            }
        }
        let mut budgets_seen = Vec::new();
        let result: Result<Fake, ()> =
            escalate(&Budget::default().states(1), 3, 4, |b| {
                budgets_seen.push(b.max_states);
                if b.max_states >= 9 {
                    Ok(Fake(None))
                } else {
                    Ok(Fake(Some(ExhaustReason::StateLimit {
                        limit: b.max_states,
                    })))
                }
            });
        assert!(result.unwrap().exhaustion().is_none());
        assert_eq!(budgets_seen, vec![1, 3, 9]);
    }
}
