//! State-space reduction: ample-set partial-order reduction and
//! symmetry reduction.
//!
//! Both reductions exploit structure the paper's canonical
//! interleaving form hands us for free:
//!
//! * **Partial-order reduction** ([`Reduction::with_por`]). Each
//!   component's next-state relation updates the variables it owns and
//!   asserts `e′ = e` for everything else (the *interleaving
//!   condition* of `crates/core/src/component.rs`), so commands of
//!   different components with disjoint
//!   [footprints](opentla_kernel::Footprint) are syntactically
//!   independent: they commute and cannot enable or disable one
//!   another. The explorer may then expand a single *ample* cluster of
//!   enabled actions in a state and defer the rest, preserving every
//!   stutter-invariant property over the *observable* variables —
//!   state invariants in particular. Three provisos keep this sound:
//!
//!   1. the ample cluster's actions are independent of every action
//!      outside the cluster (guaranteed by construction — clusters are
//!      connected components of the footprint-conflict graph);
//!   2. ample actions are *invisible* — they write no observable
//!      variable — so deferring the visible rest never hides a
//!      property change (checked per cluster when preparing);
//!   3. the **cycle proviso**: a deferred action must not be deferred
//!      forever around a cycle (the *ignoring problem*). The BFS
//!      engines use a level-based test: any state with an ample
//!      successor that closes a frontier level (lands in an
//!      already-completed BFS level, which every cycle must) is
//!      expanded fully. The test only consults levels finished before
//!      the current one began, so sequential and parallel engines
//!      decide it identically.
//!
//! * **Symmetry reduction** ([`Reduction::with_symmetry`]). A
//!   pluggable [`Canonicalize`]r maps each state to a canonical orbit
//!   representative before the visited-set lookup, so the explorer
//!   keeps one state per orbit. Sound when the canonicalizer is
//!   induced by automorphisms of the transition relation (e.g.
//!   process permutations of identical components) **and** the checked
//!   invariant is symmetric under the same group. Counterexamples are
//!   re-concretized into genuine system traces by
//!   [`concretize_trace`], replaying the canonical trace through the
//!   real successor relation.
//!
//! **Liveness is excluded by design.** A reduced graph omits
//! transitions (POR) or replaces states by orbit representatives
//! (symmetry), either of which breaks fairness and cycle analysis —
//! the classic ignoring problem. [`crate::check_liveness`] and
//! [`crate::check_step_invariant`] therefore refuse reduced graphs;
//! explore the full graph for those. We document the fallback rather
//! than fight it.

use crate::system::System;
use opentla_kernel::{Footprint, State, Value, VarId, VarSet};
use std::sync::Arc;

/// A pluggable state canonicalizer for symmetry reduction: maps every
/// state of an orbit (under some group of transition-relation
/// automorphisms) to one representative.
///
/// Implementations must be *idempotent*
/// (`canonicalize(canonicalize(s)) == canonicalize(s)`) and constant
/// on orbits; the provided [`SlotPermutations`] (lexicographic
/// minimum over an explicit permutation group) is both by
/// construction.
pub trait Canonicalize: Send + Sync + std::fmt::Debug {
    /// The orbit representative of `s`.
    fn canonicalize(&self, s: &State) -> State;

    /// A short label for reports and benchmarks.
    fn name(&self) -> &str {
        "custom"
    }
}

/// Symmetry by explicit slot permutations: the canonical form of a
/// state is the lexicographically smallest image under a fixed list
/// of permutations of its value slots.
///
/// A permutation `p` maps a state `s` to the image `m` with
/// `m[i] = s[p[i]]`. The identity is always included, so the
/// canonical form never compares worse than the state itself.
#[derive(Clone, Debug)]
pub struct SlotPermutations {
    name: String,
    /// Each entry is a permutation of `0..n_slots`.
    perms: Vec<Vec<usize>>,
    n_slots: usize,
}

impl SlotPermutations {
    /// Builds a canonicalizer from explicit slot permutations over
    /// states of `n_slots` variables. The identity permutation is
    /// added if missing.
    ///
    /// # Panics
    ///
    /// Panics if any entry is not a permutation of `0..n_slots` —
    /// that is a construction bug, not a checking outcome.
    pub fn new(
        name: impl Into<String>,
        n_slots: usize,
        mut perms: Vec<Vec<usize>>,
    ) -> SlotPermutations {
        for p in &perms {
            assert_eq!(p.len(), n_slots, "permutation length must equal slot count");
            let mut seen = vec![false; n_slots];
            for &j in p {
                assert!(j < n_slots && !seen[j], "not a permutation of 0..{n_slots}");
                seen[j] = true;
            }
        }
        let identity: Vec<usize> = (0..n_slots).collect();
        if !perms.contains(&identity) {
            perms.push(identity);
        }
        SlotPermutations {
            name: name.into(),
            perms,
            n_slots,
        }
    }

    /// Builds the group generated by permuting *process indices*
    /// `0..k` and applying each index permutation to every variable
    /// family simultaneously: `families[f][i]` is the `f`-th variable
    /// of process `i`, and index permutation `σ` maps the slot of
    /// `families[f][i]` to read from `families[f][σ(i)]`. Slots
    /// outside every family are fixed.
    ///
    /// # Panics
    ///
    /// Panics if families have unequal lengths or an index
    /// permutation is not over `0..k`.
    pub fn processes(
        name: impl Into<String>,
        n_slots: usize,
        families: &[&[VarId]],
        index_perms: &[Vec<usize>],
    ) -> SlotPermutations {
        let k = families.first().map_or(0, |f| f.len());
        for f in families {
            assert_eq!(f.len(), k, "all families must cover the same processes");
        }
        let perms = index_perms
            .iter()
            .map(|sigma| {
                assert_eq!(sigma.len(), k, "index permutation must be over 0..{k}");
                let mut p: Vec<usize> = (0..n_slots).collect();
                for family in families {
                    for (i, v) in family.iter().enumerate() {
                        p[v.index()] = family[sigma[i]].index();
                    }
                }
                p
            })
            .collect();
        SlotPermutations::new(name, n_slots, perms)
    }

    /// The `k` cyclic rotations of `0..k` (including the identity).
    pub fn rotations(k: usize) -> Vec<Vec<usize>> {
        (0..k)
            .map(|r| (0..k).map(|i| (i + r) % k).collect())
            .collect()
    }

    /// All `k!` permutations of `0..k`.
    pub fn all_index_permutations(k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut current: Vec<usize> = (0..k).collect();
        permute(&mut current, k, &mut out);
        out
    }
}

/// Heap's algorithm, recursion on the prefix length.
fn permute(current: &mut Vec<usize>, n: usize, out: &mut Vec<Vec<usize>>) {
    if n <= 1 {
        out.push(current.clone());
        return;
    }
    for i in 0..n {
        permute(current, n - 1, out);
        if n.is_multiple_of(2) {
            current.swap(i, n - 1);
        } else {
            current.swap(0, n - 1);
        }
    }
}

impl Canonicalize for SlotPermutations {
    fn canonicalize(&self, s: &State) -> State {
        let values = s.values();
        debug_assert_eq!(values.len(), self.n_slots);
        let mut best: Option<Vec<Value>> = None;
        for p in &self.perms {
            let img: Vec<Value> = p.iter().map(|&j| values[j].clone()).collect();
            match &best {
                Some(b) if img.as_slice() >= b.as_slice() => {}
                _ => best = Some(img),
            }
        }
        let best = best.expect("the identity permutation is always present");
        if best.as_slice() == values {
            s.clone()
        } else {
            State::new(best)
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Configuration of ample-set partial-order reduction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PorConfig {
    /// Variables whose values the checked property observes. Actions
    /// writing any of them are *visible* and are never deferred by a
    /// proper ample set. Pass the invariant's
    /// [`unprimed_vars`](opentla_kernel::Expr::unprimed_vars).
    pub observable: VarSet,
}

/// What the explorer is allowed to prune. Defaults to
/// [`Reduction::none`]; the engines are bit-for-bit unchanged then.
#[derive(Clone, Default)]
pub struct Reduction {
    pub(crate) por: Option<PorConfig>,
    pub(crate) symmetry: Option<Arc<dyn Canonicalize>>,
}

impl std::fmt::Debug for Reduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reduction")
            .field("por", &self.por)
            .field(
                "symmetry",
                &self.symmetry.as_ref().map(|c| c.name().to_string()),
            )
            .finish()
    }
}

impl Reduction {
    /// No reduction: the explorer enumerates every interleaving. The
    /// default — engines take exactly their unreduced code paths.
    pub fn none() -> Reduction {
        Reduction::default()
    }

    /// Enables ample-set partial-order reduction with the given
    /// observable variables (see [`PorConfig`]).
    pub fn with_por(mut self, observable: VarSet) -> Reduction {
        self.por = Some(PorConfig { observable });
        self
    }

    /// Enables symmetry reduction through `canon` (see
    /// [`Canonicalize`] for the soundness obligations).
    pub fn with_symmetry(mut self, canon: Arc<dyn Canonicalize>) -> Reduction {
        self.symmetry = Some(canon);
        self
    }

    /// Whether any reduction is enabled.
    pub fn is_active(&self) -> bool {
        self.por.is_some() || self.symmetry.is_some()
    }

    /// Precomputes the per-system reduction tables, or `None` when
    /// inactive (the engines then skip all reduction branches).
    pub(crate) fn prepare(&self, system: &System) -> Option<PreparedReduction> {
        if !self.is_active() {
            return None;
        }
        Some(PreparedReduction {
            por: self
                .por
                .as_ref()
                .map(|cfg| PreparedPor::analyze(system, cfg)),
            canon: self.symmetry.clone(),
        })
    }
}

/// Counters describing what a reduced exploration pruned; surfaced on
/// [`crate::Exploration`] and through the recorder as
/// [`Event::Reduction`](crate::obs::Event::Reduction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// States expanded through a proper ample subset of their enabled
    /// actions.
    pub ample_states: usize,
    /// States expanded fully (no eligible proper ample cluster, or the
    /// cycle proviso fired).
    pub full_states: usize,
    /// Enabled transitions the ample sets deferred (not recorded as
    /// edges).
    pub skipped_transitions: usize,
    /// Successor states whose canonical form differed from the state
    /// the action actually produced — orbit collapses.
    pub canon_hits: usize,
}

impl ReductionStats {
    pub(crate) fn absorb(&mut self, other: &ReductionStats) {
        self.ample_states += other.ample_states;
        self.full_states += other.full_states;
        self.skipped_transitions += other.skipped_transitions;
        self.canon_hits += other.canon_hits;
    }
}

/// Per-system reduction tables shared by the sequential and parallel
/// engines.
#[derive(Clone, Debug)]
pub(crate) struct PreparedReduction {
    pub(crate) por: Option<PreparedPor>,
    pub(crate) canon: Option<Arc<dyn Canonicalize>>,
}

impl PreparedReduction {
    /// Canonicalizes `s` when symmetry is on; identity otherwise.
    pub(crate) fn canonical(&self, s: State) -> State {
        match &self.canon {
            Some(c) => c.canonicalize(&s),
            None => s,
        }
    }
}

/// The static ample-set analysis of a system: actions are grouped into
/// *clusters* — connected components of the footprint-conflict graph —
/// so every cluster is independent of every other by construction. A
/// cluster is *eligible* as an ample set if all its actions are
/// invisible (write no observable variable).
#[derive(Clone, Debug)]
pub(crate) struct PreparedPor {
    /// Action index → cluster id (dense, `0..num_clusters`).
    cluster_of: Vec<usize>,
    /// Cluster id → may serve as a proper ample set.
    eligible: Vec<bool>,
    num_clusters: usize,
}

impl PreparedPor {
    fn analyze(system: &System, cfg: &PorConfig) -> PreparedPor {
        let actions = system.actions();
        let footprints: Vec<Footprint> = actions
            .iter()
            .map(|a| {
                Footprint::of_command(a.guard(), a.updates().iter().map(|(v, e)| (*v, e)))
            })
            .collect();
        // Union-find over the conflict graph.
        let mut parent: Vec<usize> = (0..actions.len()).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for i in 0..actions.len() {
            for j in i + 1..actions.len() {
                if !footprints[i].independent(&footprints[j]) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        // Dense cluster ids in first-appearance (action) order, so the
        // ample choice below is deterministic across engines.
        let mut dense: Vec<Option<usize>> = vec![None; actions.len()];
        let mut cluster_of = Vec::with_capacity(actions.len());
        let mut num_clusters = 0;
        for i in 0..actions.len() {
            let root = find(&mut parent, i);
            let id = *dense[root].get_or_insert_with(|| {
                let id = num_clusters;
                num_clusters += 1;
                id
            });
            cluster_of.push(id);
        }
        let mut eligible = vec![true; num_clusters];
        for (i, fp) in footprints.iter().enumerate() {
            if fp.writes_any(&cfg.observable) {
                eligible[cluster_of[i]] = false;
            }
        }
        PreparedPor {
            cluster_of,
            eligible,
            num_clusters,
        }
    }

    /// The cluster of an action.
    pub(crate) fn cluster_of(&self, action: usize) -> usize {
        self.cluster_of[action]
    }

    /// Given the actions enabled in a state (as successor records),
    /// picks the cluster to restrict expansion to, or `None` for full
    /// expansion. Deterministic: the eligible cluster with the fewest
    /// enabled actions (ties broken by cluster id), and only if that
    /// is a *proper* subset of the enabled actions.
    pub(crate) fn choose_ample(
        &self,
        enabled_actions: impl Iterator<Item = usize>,
        scratch: &mut AmpleScratch,
    ) -> Option<usize> {
        scratch.reset(self.num_clusters);
        let mut total = 0usize;
        for a in enabled_actions {
            let c = self.cluster_of[a];
            if scratch.counts[c] == 0 {
                scratch.touched.push(c);
            }
            scratch.counts[c] += 1;
            total += 1;
        }
        let mut best: Option<(usize, usize)> = None;
        for &c in &scratch.touched {
            if !self.eligible[c] {
                continue;
            }
            let n = scratch.counts[c];
            if n == total {
                continue; // not a proper subset
            }
            if best.is_none_or(|(bn, bc)| (n, c) < (bn, bc)) {
                best = Some((n, c));
            }
        }
        best.map(|(_, c)| c)
    }
}

/// Reusable per-worker scratch for [`PreparedPor::choose_ample`].
#[derive(Clone, Debug, Default)]
pub(crate) struct AmpleScratch {
    counts: Vec<usize>,
    touched: Vec<usize>,
}

impl AmpleScratch {
    fn reset(&mut self, num_clusters: usize) {
        if self.counts.len() < num_clusters {
            self.counts.resize(num_clusters, 0);
        }
        for &c in &self.touched {
            self.counts[c] = 0;
        }
        self.touched.clear();
    }
}

/// Rebuilds a genuine system trace from a symmetry-reduced canonical
/// trace: starting from a concrete initial state in the first node's
/// orbit, repeatedly fires the action whose successor lands in the
/// next node's orbit. Returns `None` if no step matches — which a
/// sound (automorphism-induced) canonicalizer never produces.
pub(crate) fn concretize_trace(
    system: &System,
    canon: &dyn Canonicalize,
    canonical_states: &[State],
) -> Option<(Vec<State>, Vec<Option<String>>)> {
    let first = canonical_states.first()?;
    let mut current = system
        .init()
        .states(system.universe())
        .ok()?
        .into_iter()
        .find(|s| &canon.canonicalize(s) == first)?;
    let mut states = vec![current.clone()];
    let mut actions: Vec<Option<String>> = vec![None];
    for target in &canonical_states[1..] {
        let succ = system.successors(&current).ok()?;
        let (ai, next) = succ
            .into_iter()
            .find(|(_, t)| &canon.canonicalize(t) == target)?;
        actions.push(Some(system.actions()[ai].name().to_string()));
        states.push(next.clone());
        current = next;
    }
    Some((states, actions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GuardedAction, Init};
    use opentla_kernel::{Domain, Expr, Value, Vars};

    fn two_counters(max: i64) -> (System, VarId, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, max));
        let y = vars.declare("y", Domain::int_range(0, max));
        let step = |v: VarId| {
            GuardedAction::new(
                "step",
                Expr::var(v).lt(Expr::int(max)),
                vec![(v, Expr::var(v).add(Expr::int(1)))],
            )
        };
        let sys = System::new(
            vars,
            Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
            vec![step(x), step(y)],
        );
        (sys, x, y)
    }

    #[test]
    fn independent_actions_form_separate_clusters() {
        let (sys, x, _y) = two_counters(3);
        let por = PreparedPor::analyze(
            &sys,
            &PorConfig {
                observable: VarSet::new(),
            },
        );
        assert_eq!(por.num_clusters, 2);
        assert_ne!(por.cluster_of(0), por.cluster_of(1));
        // Both enabled: picks the smaller-id cluster, a proper subset.
        let mut scratch = AmpleScratch::default();
        assert_eq!(por.choose_ample([0, 1].into_iter(), &mut scratch), Some(0));
        // Only one enabled: no proper subset exists.
        assert_eq!(por.choose_ample([1].into_iter(), &mut scratch), None);
        // Observing x makes x's cluster visible; y's remains ample.
        let por = PreparedPor::analyze(
            &sys,
            &PorConfig {
                observable: [x].into_iter().collect(),
            },
        );
        let c1 = por.cluster_of(1);
        assert_eq!(
            por.choose_ample([0, 1].into_iter(), &mut scratch),
            Some(c1)
        );
    }

    #[test]
    fn conflicting_actions_share_a_cluster() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 3));
        let inc = GuardedAction::new(
            "inc",
            Expr::var(x).lt(Expr::int(3)),
            vec![(x, Expr::var(x).add(Expr::int(1)))],
        );
        let dec = GuardedAction::new(
            "dec",
            Expr::var(x).gt(Expr::int(0)),
            vec![(x, Expr::var(x).sub(Expr::int(1)))],
        );
        let sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![inc, dec]);
        let por = PreparedPor::analyze(
            &sys,
            &PorConfig {
                observable: VarSet::new(),
            },
        );
        assert_eq!(por.num_clusters, 1);
        let mut scratch = AmpleScratch::default();
        // A single cluster is never a proper subset.
        assert_eq!(por.choose_ample([0, 1].into_iter(), &mut scratch), None);
    }

    #[test]
    fn slot_permutations_pick_the_lexicographic_minimum() {
        let swap = SlotPermutations::new("swap", 2, vec![vec![1, 0]]);
        let hi = State::new(vec![Value::Int(1), Value::Int(0)]);
        let lo = State::new(vec![Value::Int(0), Value::Int(1)]);
        assert_eq!(swap.canonicalize(&hi), lo);
        assert_eq!(swap.canonicalize(&lo), lo);
        // Idempotent and constant on the orbit.
        assert_eq!(swap.canonicalize(&swap.canonicalize(&hi)), lo);
        assert_eq!(swap.name(), "swap");
    }

    #[test]
    fn process_permutations_move_families_together() {
        let mut vars = Vars::new();
        let a0 = vars.declare("a0", Domain::bits());
        let a1 = vars.declare("a1", Domain::bits());
        let b0 = vars.declare("b0", Domain::bits());
        let b1 = vars.declare("b1", Domain::bits());
        let canon = SlotPermutations::processes(
            "pair-swap",
            vars.len(),
            &[&[a0, a1], &[b0, b1]],
            &SlotPermutations::all_index_permutations(2),
        );
        // (a=10, b=01) and its swap (a=01, b=10) share a canonical form.
        let s = State::new(vec![
            Value::Int(1),
            Value::Int(0),
            Value::Int(0),
            Value::Int(1),
        ]);
        let t = State::new(vec![
            Value::Int(0),
            Value::Int(1),
            Value::Int(1),
            Value::Int(0),
        ]);
        assert_eq!(canon.canonicalize(&s), canon.canonicalize(&t));
    }

    #[test]
    fn all_index_permutations_count() {
        assert_eq!(SlotPermutations::all_index_permutations(3).len(), 6);
        assert_eq!(SlotPermutations::rotations(4).len(), 4);
    }

    #[test]
    fn reduction_defaults_inactive() {
        assert!(!Reduction::none().is_active());
        assert!(Reduction::none()
            .prepare(&two_counters(2).0)
            .is_none());
        let r = Reduction::none().with_por(VarSet::new());
        assert!(r.is_active());
        let dbg = format!("{r:?}");
        assert!(dbg.contains("por"));
    }
}
