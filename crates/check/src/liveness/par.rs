//! The parallel fair-cycle engine.
//!
//! Parallelism enters the liveness check at three points, all pinned to
//! the sequential engine's outputs by the differential test suite:
//!
//! 1. **Fairness tables** — per-state rows are independent, so
//!    [`table_rows`] deals them to workers in fixed-size chunks claimed
//!    from an atomic cursor (work-stealing-style: fast workers take
//!    more chunks). Row order in the result is by state id regardless
//!    of which worker computed it.
//! 2. **Path-region reachability** — [`reachable_from_par`] runs a
//!    level-synchronous BFS over visited flags striped across the same
//!    64-shard layout the parallel explorer uses. Reachability is a
//!    fixed point, so the resulting *set* is order-independent.
//! 3. **Component analysis** — [`find_violation_par`] hands whole SCCs
//!    (in the deterministic Tarjan completion order the shared,
//!    sequential decomposition produced) to workers via an atomic
//!    cursor. Every worker that finds a fairness-satisfiable component
//!    with a reachable entry publishes its index into an atomic
//!    `fetch_min` slot; the engine's verdict is the *minimum* such
//!    index — exactly the component the sequential engine would have
//!    reported first — and the lasso is rebuilt sequentially from that
//!    component's witness, making it byte-identical to the sequential
//!    engine's.
//!
//! A worker that exhausts the budget mid-component records the
//! component's index; the run's outcome is decided by comparing that
//! index against the winning component's (a violation found at a
//! smaller index than any unresolved component is authoritative; an
//! unresolved component at a smaller index forces `Exhausted`, with a
//! final checkpoint of the cleared-component set so the run can
//! resume).

use super::fair::{fair_subcomponent, FairInfo, FairWitness};
use super::{scc, Charge, LiveCheckpointer, Stop, Violation};
use crate::budget::Meter;
use crate::checkpoint::LiveSnapshot;
use crate::obs::{Event, RecorderHandle};
use crate::sync::{lock, Striped, NUM_SHARDS};
use crate::{Counterexample, StateGraph, System};
use opentla_kernel::SccScratch;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// States per table chunk / frontier slice a worker claims at once.
const CHUNK: usize = 256;

/// Computes `row(id)` for every `id in 0..n`, in parallel on more than
/// one thread, returning the rows in id order.
///
/// On failure the reported `pending` is exact in state units: the
/// number of states whose rows were not fully committed (sequentially
/// that is `n - id` at the failing row; in parallel, partially
/// completed chunks count as pending because their rows are
/// discarded). When several workers fail, the failure at the smallest
/// chunk start wins, keeping the surfaced error independent of timing.
pub(super) fn table_rows<T: Send>(
    n: usize,
    threads: usize,
    row: &(dyn Fn(usize) -> Result<T, Stop> + Sync),
) -> Result<Vec<T>, Stop> {
    if threads <= 1 || n == 0 {
        let mut out = Vec::with_capacity(n);
        for id in 0..n {
            match row(id) {
                Ok(t) => out.push(t),
                Err(stop) => return Err(stop.with_pending(n - id)),
            }
        }
        return Ok(out);
    }
    let chunks = n.div_ceil(CHUNK);
    let slots: Vec<Mutex<Option<Vec<T>>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let committed = AtomicUsize::new(0);
    let failed: Mutex<Option<(usize, Stop)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(chunks) {
            scope.spawn(|| loop {
                if lock(&failed).is_some() {
                    break;
                }
                let c = cursor.fetch_add(1, Ordering::SeqCst);
                if c >= chunks {
                    break;
                }
                let lo = c * CHUNK;
                let hi = (lo + CHUNK).min(n);
                let mut rows = Vec::with_capacity(hi - lo);
                let mut err = None;
                for id in lo..hi {
                    match row(id) {
                        Ok(t) => rows.push(t),
                        Err(stop) => {
                            err = Some(stop);
                            break;
                        }
                    }
                }
                match err {
                    Some(stop) => {
                        let mut slot = lock(&failed);
                        if slot.as_ref().is_none_or(|(start, _)| lo < *start) {
                            *slot = Some((lo, stop));
                        }
                        break;
                    }
                    None => {
                        committed.fetch_add(hi - lo, Ordering::SeqCst);
                        *lock(&slots[c]) = Some(rows);
                    }
                }
            });
        }
    });
    let failed = failed.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some((_, stop)) = failed {
        return Err(stop.with_pending(n - committed.load(Ordering::SeqCst)));
    }
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        let rows = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("every chunk committed");
        out.extend(rows);
    }
    Ok(out)
}

/// Parallel [`reachable_from`](super::reachable_from): the same
/// fixed-point set, computed by a level-synchronous BFS with visited
/// flags lock-striped across [`NUM_SHARDS`] shards (node `v` lives in
/// shard `v % NUM_SHARDS`).
pub(super) fn reachable_from_par(
    graph: &StateGraph,
    starts: &[usize],
    node_ok: Option<&[bool]>,
    threads: usize,
) -> Vec<bool> {
    let n = graph.len();
    let ok = |v: usize| node_ok.is_none_or(|f| f[v]);
    let shard_len = n.div_ceil(NUM_SHARDS).max(1);
    let shards: Striped<Vec<bool>> = Striped::new(|| vec![false; shard_len]);
    // First claim wins; later claims of the same node are no-ops, so
    // the fixed point is independent of worker interleaving.
    let claim = |v: usize| -> bool {
        let mut flags = shards.lock_shard(v % NUM_SHARDS);
        !std::mem::replace(&mut flags[v / NUM_SHARDS], true)
    };
    let mut frontier: Vec<usize> = starts
        .iter()
        .copied()
        .filter(|v| ok(*v) && claim(*v))
        .collect();
    while !frontier.is_empty() {
        let cursor = AtomicUsize::new(0);
        let next: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let frontier = &frontier;
                let cursor = &cursor;
                let next = &next;
                let claim = &claim;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let base = cursor.fetch_add(CHUNK, Ordering::SeqCst);
                        if base >= frontier.len() {
                            break;
                        }
                        let hi = (base + CHUNK).min(frontier.len());
                        for &s in &frontier[base..hi] {
                            for e in graph.edges(s) {
                                if ok(e.target) && claim(e.target) {
                                    local.push(e.target);
                                }
                            }
                        }
                    }
                    if !local.is_empty() {
                        lock(next).extend(local);
                    }
                });
            }
        });
        frontier = next.into_inner().unwrap_or_else(|e| e.into_inner());
    }
    let mut out = vec![false; n];
    for (i, flags) in shards.into_shards().into_iter().enumerate() {
        for (j, f) in flags.into_iter().enumerate() {
            let v = j * NUM_SHARDS + i;
            if f && v < n {
                out[v] = true;
            }
        }
    }
    out
}

/// The parallel component loop; see the module docs for the
/// determinism and soundness argument.
#[allow(clippy::too_many_arguments)]
pub(super) fn find_violation_par(
    system: &System,
    graph: &StateGraph,
    fair_infos: &[FairInfo],
    v: &Violation,
    meter: &Meter,
    threads: usize,
    charge: Charge,
    resume: Option<&LiveSnapshot>,
    ck: &mut LiveCheckpointer<'_>,
    recorder: &RecorderHandle,
) -> Result<Option<Counterexample>, Stop> {
    if v.starts.is_empty() {
        return Ok(None);
    }
    let edge_ok = |s: usize, i: usize| -> bool {
        v.cycle_node_ok[s]
            && v.cycle_node_ok[graph.edges(s)[i].target]
            && v.cycle_edge_ok.as_ref().is_none_or(|rows| rows[s][i])
    };
    // The SCC decomposition stays sequential and shared: its completion
    // order is the deterministic tie-break, so it must not depend on
    // thread count (and it is a single O(V + E) pass — the expensive
    // part is the per-component analysis below).
    let mut scratch = SccScratch::new();
    let sccs = scc::tarjan_sccs(graph, &v.cycle_node_ok, &edge_ok, meter, charge, &mut scratch)?;
    if let Some(snap) = resume {
        snap.validate_components(sccs.len() as u64)
            .map_err(|e| Stop::Error(e.into()))?;
    }
    let path_region = reachable_from_par(graph, &v.starts, v.path_node_ok.as_deref(), threads);
    let total = sccs.len();
    let cleared: Vec<AtomicBool> = (0..total).map(|_| AtomicBool::new(false)).collect();
    let mut resumed_done = 0usize;
    if let Some(snap) = resume {
        for &i in snap.cleared() {
            let i = i as usize;
            if i < total && !cleared[i].swap(true, Ordering::SeqCst) {
                resumed_done += 1;
            }
        }
    }
    let done = AtomicUsize::new(resumed_done);
    let best = AtomicUsize::new(usize::MAX);
    let cursor = AtomicUsize::new(0);
    type Candidate = (FairWitness, usize);
    let candidates_by_idx: Vec<Mutex<Option<Candidate>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let halted: Mutex<Option<(usize, Stop)>> = Mutex::new(None);
    let ck_shared = Mutex::new(ck);
    std::thread::scope(|scope| {
        for w in 0..threads {
            let edge_ok = &edge_ok;
            let sccs = &sccs;
            let path_region = &path_region;
            let cleared = &cleared;
            let done = &done;
            let best = &best;
            let cursor = &cursor;
            let candidates_by_idx = &candidates_by_idx;
            let halted = &halted;
            let ck_shared = &ck_shared;
            scope.spawn(move || {
                let mut scratch = SccScratch::new();
                let mut claimed = 0u64;
                let mut found = 0u64;
                let clear = |idx: usize| {
                    if !cleared[idx].swap(true, Ordering::SeqCst) {
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                    let mut ck = lock(ck_shared);
                    if ck.due(1) {
                        let snapshot: Vec<bool> =
                            cleared.iter().map(|b| b.load(Ordering::SeqCst)).collect();
                        ck.write(&snapshot, meter);
                    }
                };
                loop {
                    let idx = cursor.fetch_add(1, Ordering::SeqCst);
                    if idx >= total {
                        break;
                    }
                    if cleared[idx].load(Ordering::SeqCst) {
                        continue;
                    }
                    // The cursor is monotonic: once some smaller index
                    // holds a candidate, nothing this worker can claim
                    // will beat it.
                    if best.load(Ordering::SeqCst) < idx {
                        break;
                    }
                    claimed += 1;
                    match fair_subcomponent(
                        graph,
                        fair_infos,
                        edge_ok,
                        &sccs[idx],
                        v.must_contain.as_deref(),
                        meter,
                        &mut scratch,
                    ) {
                        Err(stop) => {
                            let mut h = lock(halted);
                            if h.as_ref().is_none_or(|(hidx, _)| idx < *hidx) {
                                *h = Some((idx, stop));
                            }
                            break;
                        }
                        Ok(Some((nodes, waypoints))) => {
                            match nodes.iter().find(|n| path_region[**n]) {
                                Some(&entry) => {
                                    found += 1;
                                    *lock(&candidates_by_idx[idx]) =
                                        Some(((nodes, waypoints), entry));
                                    best.fetch_min(idx, Ordering::SeqCst);
                                }
                                // Fair but unreachable under the path
                                // constraint: same as no violation.
                                None => clear(idx),
                            }
                        }
                        Ok(None) => clear(idx),
                    }
                }
                if recorder.enabled() {
                    recorder.record(&Event::LivenessWorker {
                        worker: w,
                        components: claimed,
                        candidates: found,
                    });
                }
            });
        }
    });
    let ck = ck_shared.into_inner().unwrap_or_else(|e| e.into_inner());
    let halted = halted.into_inner().unwrap_or_else(|e| e.into_inner());
    let winner = best.load(Ordering::SeqCst);
    if let Some((hidx, stop)) = halted {
        // A component smaller than every candidate is unresolved: the
        // sequential engine would have analyzed it first, so no verdict
        // may be claimed. Checkpoint the cleared set for resume.
        if hidx < winner {
            if matches!(stop, Stop::Exhausted { .. }) {
                let snapshot: Vec<bool> =
                    cleared.iter().map(|b| b.load(Ordering::SeqCst)).collect();
                ck.write(&snapshot, meter);
            }
            return Err(stop.with_pending(total - done.load(Ordering::SeqCst)));
        }
    }
    if winner == usize::MAX {
        return Ok(None);
    }
    let ((nodes, waypoints), entry) = lock(&candidates_by_idx[winner])
        .take()
        .expect("winning component recorded its witness");
    Ok(Some(super::build_counterexample(
        system, graph, v, &nodes, &waypoints, entry, &edge_ok,
    )))
}
