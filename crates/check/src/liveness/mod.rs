//! Fairness-aware liveness checking.
//!
//! A liveness property fails on a finite-state system iff some **fair
//! lasso** violates it: a reachable cycle on which every one of the
//! system's fairness requirements can be satisfied while the property
//! is violated. The search is the classic one:
//!
//! 1. restrict the state graph to the states/edges a violating cycle
//!    may use (this encodes the *negation* of the property);
//! 2. enumerate strongly connected components of the restriction
//!    (single nodes count — TLA behaviors may stutter forever);
//! 3. check that each fairness requirement is *satisfiable* inside the
//!    component: a `WF` needs an internal step of its action or a state
//!    where it is disabled; an `SF` needs an internal step or the
//!    absence of any enabled state — when an `SF` fails only because of
//!    enabled states, those states are removed and the search recurses
//!    on the sub-components (the standard Streett-condition
//!    decomposition);
//! 4. build the counterexample: shortest prefix, then a cycle visiting
//!    a witness for every fairness requirement.
//!
//! Every returned [`Counterexample`] is a lasso that can be replayed
//! against the trace semantics of `opentla-semantics` — the test suite
//! does exactly that.
//!
//! # Engines
//!
//! The module houses two engines over the same phases. The sequential
//! one lives here; the parallel one in [`par`] fans the fairness
//! tables, the path-region reachability, and the per-component
//! analysis out to workers while keeping the SCC decomposition (the
//! deterministic tie-break) shared and sequential. Which engine runs
//! is decided by [`LivenessOptions`] (or the `OPENTLA_EXPLORE_THREADS`
//! override), except that graphs below
//! [`LIVENESS_SMALL_GRAPH_CUTOFF`] always take the sequential path —
//! thread setup costs orders of magnitude more than checking a
//! dozen-state graph. Both engines return **byte-identical** verdicts
//! and lassos: the parallel engine resolves races by reporting the
//! minimum fairness-satisfiable component index in Tarjan completion
//! order, which is exactly the component the sequential scan reaches
//! first.
//!
//! # Interruption and resume
//!
//! Under a [`Budget::with_checkpoint`] budget, the component loop
//! periodically snapshots the set of *cleared* (analyzed, no violation
//! entered through them) components to a [`LiveSnapshot`], and
//! exhaustion surfaces a [`ResumeToken`](crate::ResumeToken) in
//! [`Outcome::Exhausted`]. [`check_liveness_resumable`] rebuilds the
//! fairness tables and the SCC decomposition without re-charging the
//! meter (that work is banked in the snapshot's transition count) and
//! skips the cleared components — resuming costs O(remaining
//! components), not O(total).

mod fair;
mod par;
mod scc;

use crate::budget::{Budget, ExhaustReason, Governed, Meter, Outcome};
use crate::checkpoint::{system_hash, CheckpointSpec, LiveSnapshot, ResumeToken};
use crate::obs::{Event, Phase, PhaseGuard, RecorderHandle};
use crate::{CheckError, Counterexample, StateGraph, System, Verdict};
use fair::{fair_subcomponent, FairInfo, Waypoint};
use opentla_kernel::{Expr, Fairness, FairnessKind, SccScratch};

/// Graphs smaller than this many states always take the sequential
/// engine, whatever the requested thread count: spawning workers costs
/// more than the whole check on graphs this small (the `par_fp`
/// columns of `BENCH_scaling.json` put the overhead at 10–100× on
/// ≤ 12-state graphs).
pub const LIVENESS_SMALL_GRAPH_CUTOFF: usize = 256;

/// Why the metered liveness core stopped: budget exhaustion (with the
/// exact count of pending work items in the interrupted phase) or a
/// hard error.
pub(crate) enum Stop {
    Exhausted { reason: ExhaustReason, pending: usize },
    Error(CheckError),
}

impl Stop {
    /// Exhaustion whose pending count the *caller* fills in via
    /// [`Stop::with_pending`] — leaf sites rarely know the phase total.
    fn exhausted(reason: ExhaustReason) -> Self {
        Stop::Exhausted { reason, pending: 0 }
    }

    /// Replaces the pending count of an exhaustion; errors pass
    /// through untouched.
    fn with_pending(self, pending: usize) -> Self {
        match self {
            Stop::Exhausted { reason, .. } => Stop::Exhausted { reason, pending },
            err => err,
        }
    }
}

impl From<CheckError> for Stop {
    fn from(e: CheckError) -> Self {
        Stop::Error(e)
    }
}

/// How table/SCC edge probes hit the meter.
#[derive(Clone, Copy)]
pub(crate) enum Charge {
    /// Fresh run: every edge probe charges one transition.
    Metered,
    /// Resume: the fairness tables and the SCC pass re-derive work the
    /// snapshot already banked into its transition count (the meter
    /// was pre-charged with that total), so re-deriving is free.
    /// Deadline/cancellation polls still fire.
    Banked,
}

impl Charge {
    fn edge(self, meter: &Meter) -> Result<(), Stop> {
        match self {
            Charge::Metered => meter
                .charge_transition()
                .map_or(Ok(()), |r| Err(Stop::exhausted(r))),
            Charge::Banked => Ok(()),
        }
    }
}

/// The liveness property to verify. `Expr`s are state predicates.
#[derive(Clone, Debug)]
pub enum LiveTarget {
    /// The system guarantees this fairness condition (typically an
    /// abstract `WF`/`SF` obligation after a refinement mapping).
    ///
    /// `enabled_with`, if given, is the state predicate to use as
    /// `Enabled ⟨A⟩_v` instead of the brute-force next-state search
    /// over the system's universe. This matters for refinement
    /// mappings: **`Enabled` does not commute with substitution** (the
    /// classic TLA caveat), so the enabledness of a mapped abstract
    /// action must be the *abstract* one — for guarded abstract actions
    /// that is "some guard holds and its update would change the
    /// subscript", mapped through the refinement — not what the
    /// concrete successors happen to realize. The `opentla::compose`
    /// engine supplies exactly that predicate. An over-approximation of
    /// the true enabledness keeps `Holds` verdicts sound (more
    /// violation candidates are searched); an under-approximation would
    /// not.
    Fair {
        /// The fairness condition to establish.
        fair: Fairness,
        /// Optional explicit enabledness predicate for the angle
        /// action.
        enabled_with: Option<Expr>,
    },
    /// `◇P`.
    Eventually(Expr),
    /// `□◇P`.
    AlwaysEventually(Expr),
    /// `◇□P`.
    EventuallyAlways(Expr),
    /// `P ↝ Q`.
    LeadsTo(Expr, Expr),
}

impl LiveTarget {
    /// A fairness target whose enabledness is decided by next-state
    /// search over the system's universe (right for unmapped,
    /// concrete-variable actions).
    pub fn fair(fair: Fairness) -> Self {
        LiveTarget::Fair {
            fair,
            enabled_with: None,
        }
    }

    /// A fairness target with an explicit enabledness predicate (see
    /// [`LiveTarget::Fair`] — required under refinement mappings).
    pub fn fair_with_enabled(fair: Fairness, enabled: Expr) -> Self {
        LiveTarget::Fair {
            fair,
            enabled_with: Some(enabled),
        }
    }
}

/// Engine selection for a liveness check.
#[derive(Clone, Debug, Default)]
pub struct LivenessOptions {
    /// Worker count. `None` falls back to the `OPENTLA_EXPLORE_THREADS`
    /// environment override, then to 1 (sequential).
    pub threads: Option<usize>,
    /// Graphs with fewer states than this always run sequentially;
    /// `None` uses [`LIVENESS_SMALL_GRAPH_CUTOFF`]. Set to `Some(0)`
    /// to force the parallel engine onto tiny graphs (the differential
    /// tests do).
    pub small_graph_cutoff: Option<usize>,
}

impl LivenessOptions {
    /// Requests `n` workers.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Overrides the small-graph sequential cutoff.
    pub fn small_graph_cutoff(mut self, states: usize) -> Self {
        self.small_graph_cutoff = Some(states);
        self
    }

    /// The worker count to actually use for a graph of `graph_len`
    /// states.
    fn resolve_threads(&self, graph_len: usize) -> usize {
        let requested = self
            .threads
            .or_else(crate::explore::env_threads)
            .unwrap_or(1)
            .max(1);
        let cutoff = self
            .small_graph_cutoff
            .unwrap_or(LIVENESS_SMALL_GRAPH_CUTOFF);
        if graph_len < cutoff {
            1
        } else {
            requested
        }
    }
}

/// Per-fairness-requirement facts about the graph live in [`fair`];
/// what the violating cycle must look like, beyond fairness:
pub(crate) struct Violation {
    /// Description for the counterexample.
    reason: String,
    /// States the cycle may visit.
    cycle_node_ok: Vec<bool>,
    /// Edges the cycle may take (`None` = all).
    cycle_edge_ok: Option<Vec<Vec<bool>>>,
    /// States the (post-`starts`) path may visit (`None` = all).
    path_node_ok: Option<Vec<bool>>,
    /// Where the violating suffix may begin (each must be reachable;
    /// the prefix up to it is unrestricted).
    starts: Vec<usize>,
    /// The cycle must contain a state from this set (`None` = no
    /// requirement).
    must_contain: Option<Vec<bool>>,
}

/// FNV-1a over the violation's restriction tables: pins a
/// [`LiveSnapshot`] to the target it was taken under (resuming a
/// `◇P` run into a `□◇P` check would silently mis-skip components).
/// A structural hash of the liveness target, pinning snapshots to the
/// target they were taken under.
///
/// The restriction tables are a deterministic function of (system,
/// graph, target), and the snapshot header already pins the first two,
/// so structural target equality implies identical tables — and unlike
/// a table-content hash it is available *before* the tables are built,
/// which lets a run interrupted mid table construction still write a
/// resumable snapshot. Hashing the `Debug` rendering is stable for a
/// given crate version; snapshots are already version-gated by
/// [`LIVE_SNAPSHOT_VERSION`](crate::LIVE_SNAPSHOT_VERSION).
fn live_target_hash(target: &LiveTarget) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{target:?}").as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checks a liveness property of the system.
///
/// # Errors
///
/// Propagates evaluation errors (e.g. a type error in a predicate or in
/// the target's action).
///
/// # Example
///
/// A counter reaches its bound only under weak fairness:
///
/// ```
/// use opentla_check::{
///     check_liveness, explore, ExploreOptions, GuardedAction, Init, LiveTarget,
///     System, SystemFairness,
/// };
/// use opentla_kernel::{Domain, Expr, Value, Vars};
///
/// # fn main() -> Result<(), opentla_check::CheckError> {
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::int_range(0, 2));
/// let incr = GuardedAction::new(
///     "incr",
///     Expr::var(x).lt(Expr::int(2)),
///     vec![(x, Expr::var(x).add(Expr::int(1)))],
/// );
/// let goal = LiveTarget::Eventually(Expr::var(x).eq(Expr::int(2)));
///
/// // Without fairness the system may stutter forever.
/// let lazy = System::new(vars.clone(), Init::new([(x, Value::Int(0))]), vec![incr.clone()]);
/// let graph = explore(&lazy, &ExploreOptions::default())?;
/// assert!(!check_liveness(&lazy, &graph, &goal)?.holds());
///
/// // WF(incr) forces progress.
/// let eager = System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr])
///     .with_fairness(SystemFairness::weak(vec![0], vec![x]));
/// let graph = explore(&eager, &ExploreOptions::default())?;
/// assert!(check_liveness(&eager, &graph, &goal)?.holds());
/// # Ok(())
/// # }
/// ```
pub fn check_liveness(
    system: &System,
    graph: &StateGraph,
    target: &LiveTarget,
) -> Result<Verdict, CheckError> {
    let run = check_liveness_governed(system, graph, target, &Budget::unlimited())?;
    Ok(run
        .verdict
        .expect("an unlimited budget cannot be exhausted"))
}

/// Result of a budget-governed liveness check: the verdict when the
/// budget sufficed to decide it, plus the run's [`Outcome`].
#[derive(Clone, Debug)]
pub struct LivenessRun {
    /// `Some` iff the check ran to a decision within budget. A
    /// decision reached before exhaustion (e.g. a violation found
    /// early) is authoritative.
    pub verdict: Option<Verdict>,
    /// How the run ended. On exhaustion, `frontier_size` counts the
    /// pending work items of the interrupted phase exactly: states
    /// whose fairness-table rows were not yet committed, subgraph
    /// nodes the SCC pass had not yet visited, or components not yet
    /// analyzed.
    pub outcome: Outcome,
}

impl Governed for LivenessRun {
    fn exhaustion(&self) -> Option<&ExhaustReason> {
        self.outcome.exhaustion()
    }
}

/// Checks a liveness property under a resource [`Budget`].
///
/// The budget's transition limit meters edge-level work (fairness
/// tables, component search); the deadline and cancellation flag are
/// polled at loop heads. Exhaustion yields `verdict: None` with an
/// [`Outcome::Exhausted`] tag — never a hard error — so callers can
/// [`escalate`](crate::escalate) or report partial coverage.
///
/// Engine selection follows [`LivenessOptions::default`]: sequential
/// unless `OPENTLA_EXPLORE_THREADS` requests workers and the graph
/// clears the small-graph cutoff.
///
/// # Errors
///
/// Propagates evaluation errors, as [`check_liveness`] does.
pub fn check_liveness_governed(
    system: &System,
    graph: &StateGraph,
    target: &LiveTarget,
    budget: &Budget,
) -> Result<LivenessRun, CheckError> {
    check_liveness_governed_with(system, graph, target, budget, &LivenessOptions::default())
}

/// [`check_liveness_governed`] with explicit engine selection.
///
/// # Errors
///
/// Propagates evaluation errors, as [`check_liveness`] does.
pub fn check_liveness_governed_with(
    system: &System,
    graph: &StateGraph,
    target: &LiveTarget,
    budget: &Budget,
    options: &LivenessOptions,
) -> Result<LivenessRun, CheckError> {
    liveness_driver(system, graph, target, budget, options, None)
}

/// Runs a liveness check that can continue an interrupted one: if the
/// budget's checkpoint path holds a [`LiveSnapshot`], the components
/// it cleared are skipped (after validating that the snapshot matches
/// this system, graph, and target), and the meter is pre-charged with
/// the snapshot's banked transitions so escalation budgets compose the
/// way they do for exploration.
///
/// # Errors
///
/// [`CheckError::Precondition`] without a checkpoint spec on the
/// budget; a [`CheckpointError`](crate::CheckpointError) (via
/// [`CheckError`]) when the snapshot exists but is corrupt or was
/// taken under a different system/graph/target; evaluation errors as
/// [`check_liveness`].
pub fn check_liveness_resumable(
    system: &System,
    graph: &StateGraph,
    target: &LiveTarget,
    budget: &Budget,
    options: &LivenessOptions,
) -> Result<LivenessRun, CheckError> {
    let Some(spec) = &budget.checkpoint else {
        return Err(CheckError::Precondition {
            message: "check_liveness_resumable requires a budget with a checkpoint \
                      spec (Budget::with_checkpoint)"
                .to_string(),
        });
    };
    if spec.path.exists() {
        let snap = LiveSnapshot::load(&spec.path)?;
        liveness_driver(system, graph, target, budget, options, Some(&snap))
    } else {
        liveness_driver(system, graph, target, budget, options, None)
    }
}

fn liveness_driver(
    system: &System,
    graph: &StateGraph,
    target: &LiveTarget,
    budget: &Budget,
    options: &LivenessOptions,
    resume: Option<&LiveSnapshot>,
) -> Result<LivenessRun, CheckError> {
    // Liveness on a reduced graph hits the *ignoring problem*: an ample
    // set may defer an action forever along a cycle, and symmetry edges
    // connect canonical representatives rather than genuine step
    // endpoints — fair-cycle detection over such a graph is unsound in
    // both directions. We refuse rather than fight it: re-explore with
    // `Reduction::none()` for liveness.
    if graph.is_reduced() {
        return Err(CheckError::Precondition {
            message: "liveness checking needs the full state graph; this graph \
                      was explored under a Reduction (re-explore with \
                      Reduction::none())"
                .to_string(),
        });
    }
    if let Some(snap) = resume {
        snap.validate(system, graph)?;
    }
    let _phase = PhaseGuard::enter(&budget.recorder, Phase::Liveness);
    let threads = options.resolve_threads(graph.len());
    let charge = if resume.is_some() {
        Charge::Banked
    } else {
        Charge::Metered
    };
    let meter = match resume {
        Some(snap) => Meter::start_resumed(budget, 0, snap.transitions_used() as usize),
        None => Meter::start(budget),
    };
    let mut ck = LiveCheckpointer::new(budget, system, graph, resume.map_or(0, LiveSnapshot::seq));
    let decided = decide(
        system,
        graph,
        target,
        &budget.recorder,
        &meter,
        charge,
        threads,
        resume,
        &mut ck,
    );
    if let Ok(Verdict::Violated(cx)) = &decided {
        crate::obs::emit_counterexample(&budget.recorder, "liveness", cx);
    }
    match decided {
        Ok(verdict) => Ok(LivenessRun {
            verdict: Some(verdict),
            outcome: Outcome::Complete,
        }),
        Err(Stop::Exhausted { reason, pending }) => {
            let mut token = ck.take_token();
            if token.is_none() {
                match (resume, &budget.checkpoint) {
                    // A prior leg's snapshot is on disk and still
                    // authoritative (this leg exhausted before clearing
                    // anything new) — point the token at it rather than
                    // overwriting its progress.
                    (Some(snap), Some(spec)) => {
                        token = Some(ResumeToken {
                            path: spec.path.clone(),
                            seq: snap.seq(),
                        });
                    }
                    // Exhausted before the first component was cleared
                    // (e.g. mid table construction): persist an
                    // empty-progress snapshot so the interruption is
                    // still resumable — it banks the transitions spent
                    // and pins the target.
                    (None, Some(_)) => {
                        ck.write(&[], &meter);
                        token = ck.take_token();
                    }
                    (_, None) => {}
                }
            }
            Ok(LivenessRun {
                verdict: None,
                outcome: Outcome::Exhausted {
                    reason,
                    frontier_size: pending,
                    stats: graph.stats(),
                    resume: token,
                },
            })
        }
        Err(Stop::Error(e)) => Err(e),
    }
}

#[allow(clippy::too_many_arguments)]
fn decide(
    system: &System,
    graph: &StateGraph,
    target: &LiveTarget,
    recorder: &RecorderHandle,
    meter: &Meter,
    charge: Charge,
    threads: usize,
    resume: Option<&LiveSnapshot>,
    ck: &mut LiveCheckpointer<'_>,
) -> Result<Verdict, Stop> {
    // Pin the target *before* the tables are built, so a run
    // interrupted mid table construction can still write a resumable
    // snapshot, and a mismatched resume fails before any table work.
    ck.set_target_hash(live_target_hash(target));
    if let Some(snap) = resume {
        snap.validate_target(ck.target_hash)
            .map_err(|e| Stop::Error(e.into()))?;
        if recorder.enabled() {
            recorder.record(&Event::Resume {
                seq: snap.seq(),
                states: graph.len() as u64,
                transitions: snap.transitions_used(),
                frontier: snap.components() - snap.cleared().len() as u64,
            });
        }
    }
    let violation = build_violation(system, graph, target, meter, charge, threads)?;
    let fair_infos = fair::system_fair_infos(system, graph, meter, charge, threads)?;
    let found = if threads > 1 {
        par::find_violation_par(
            system,
            graph,
            &fair_infos,
            &violation,
            meter,
            threads,
            charge,
            resume,
            ck,
            recorder,
        )?
    } else {
        find_violation(
            system,
            graph,
            &fair_infos,
            &violation,
            meter,
            charge,
            resume,
            ck,
        )?
    };
    match found {
        Some(cx) => Ok(Verdict::Violated(cx)),
        None => Ok(Verdict::Holds),
    }
}

/// The liveness engines' checkpoint driver: counts cleared components
/// against the cadence, stamps sequence numbers, writes
/// [`LiveSnapshot`]s, and emits [`Event::Checkpoint`]. A write failure
/// is reported once on stderr and disables further writes —
/// checkpointing is a best-effort safety net, never a reason to abort
/// a healthy run.
pub(crate) struct LiveCheckpointer<'a> {
    spec: Option<CheckpointSpec>,
    recorder: &'a RecorderHandle,
    system_hash: u64,
    graph_states: u64,
    graph_transitions: u64,
    target_hash: u64,
    seq: u64,
    since: u64,
    failed: bool,
    token: Option<ResumeToken>,
}

impl<'a> LiveCheckpointer<'a> {
    fn new(budget: &'a Budget, system: &System, graph: &StateGraph, base_seq: u64) -> Self {
        let stats = if budget.checkpoint.is_some() {
            graph.stats().transitions as u64
        } else {
            0 // Not consulted without a spec; skip the O(V + E) count.
        };
        LiveCheckpointer {
            spec: budget.checkpoint.clone(),
            recorder: &budget.recorder,
            system_hash: system_hash(system),
            graph_states: graph.len() as u64,
            graph_transitions: stats,
            target_hash: 0,
            seq: base_seq,
            since: 0,
            failed: false,
            token: None,
        }
    }

    fn set_target_hash(&mut self, hash: u64) {
        self.target_hash = hash;
    }

    /// Records `n` more cleared components; true when a periodic
    /// snapshot is due (the counter resets on the next write).
    pub(crate) fn due(&mut self, n: u64) -> bool {
        match &self.spec {
            Some(spec) if !self.failed => {
                self.since += n;
                self.since >= spec.cadence
            }
            _ => false,
        }
    }

    /// Writes the cleared-component set to the configured path and
    /// emits [`Event::Checkpoint`] (`frontier` = components still
    /// pending). No-op without a spec or after a write failure.
    pub(crate) fn write(&mut self, cleared: &[bool], meter: &Meter) {
        let Some(spec) = self.spec.clone() else {
            return;
        };
        if self.failed {
            return;
        }
        self.seq += 1;
        self.since = 0;
        let cleared_ids: Vec<u64> = cleared
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.then_some(i as u64))
            .collect();
        let pending = cleared.len() as u64 - cleared_ids.len() as u64;
        let snap = LiveSnapshot {
            system_hash: self.system_hash,
            graph_states: self.graph_states,
            graph_transitions: self.graph_transitions,
            target_hash: self.target_hash,
            seq: self.seq,
            transitions_used: meter.transitions_used() as u64,
            components: cleared.len() as u64,
            cleared: cleared_ids,
        };
        if let Err(e) = snap.save(&spec.path) {
            eprintln!("opentla-check: liveness checkpointing disabled: {e}");
            self.failed = true;
            return;
        }
        if self.recorder.enabled() {
            self.recorder.record(&Event::Checkpoint {
                seq: self.seq,
                states: self.graph_states,
                transitions: snap.transitions_used,
                frontier: pending,
            });
        }
        self.token = Some(ResumeToken {
            path: spec.path,
            seq: self.seq,
        });
    }

    fn take_token(&mut self) -> Option<ResumeToken> {
        self.token.take()
    }
}

fn eval_pred(graph: &StateGraph, p: &Expr) -> Result<Vec<bool>, CheckError> {
    graph
        .states()
        .iter()
        .map(|s| p.holds_state(s).map_err(CheckError::from))
        .collect()
}

fn build_violation(
    system: &System,
    graph: &StateGraph,
    target: &LiveTarget,
    meter: &Meter,
    charge: Charge,
    threads: usize,
) -> Result<Violation, Stop> {
    let all = vec![true; graph.len()];
    Ok(match target {
        LiveTarget::Fair { fair, enabled_with } => {
            let (angle, enabled) = fair::target_fair_info(
                system,
                graph,
                fair,
                enabled_with.as_ref(),
                meter,
                charge,
                threads,
            )?;
            let not_angle: Vec<Vec<bool>> = angle
                .iter()
                .map(|row| row.iter().map(|b| !b).collect())
                .collect();
            match fair.kind {
                FairnessKind::Weak => Violation {
                    reason: "target WF violated: its action stays enabled but is never taken"
                        .into(),
                    cycle_node_ok: enabled,
                    cycle_edge_ok: Some(not_angle),
                    path_node_ok: None,
                    starts: graph.init().to_vec(),
                    must_contain: None,
                },
                FairnessKind::Strong => Violation {
                    reason:
                        "target SF violated: its action is enabled infinitely often but taken only finitely often"
                            .into(),
                    cycle_node_ok: all,
                    cycle_edge_ok: Some(not_angle),
                    path_node_ok: None,
                    starts: graph.init().to_vec(),
                    must_contain: Some(enabled),
                },
            }
        }
        LiveTarget::Eventually(p) => {
            let pv = eval_pred(graph, p)?;
            let not_p: Vec<bool> = pv.iter().map(|b| !b).collect();
            Violation {
                reason: format!("◇({}) violated", p.display(system.vars())),
                cycle_node_ok: not_p.clone(),
                cycle_edge_ok: None,
                path_node_ok: Some(not_p.clone()),
                starts: graph
                    .init()
                    .iter()
                    .copied()
                    .filter(|i| not_p[*i])
                    .collect(),
                must_contain: None,
            }
        }
        LiveTarget::AlwaysEventually(p) => {
            let pv = eval_pred(graph, p)?;
            let not_p: Vec<bool> = pv.iter().map(|b| !b).collect();
            Violation {
                reason: format!("□◇({}) violated", p.display(system.vars())),
                cycle_node_ok: not_p,
                cycle_edge_ok: None,
                path_node_ok: None,
                starts: graph.init().to_vec(),
                must_contain: None,
            }
        }
        LiveTarget::EventuallyAlways(p) => {
            let pv = eval_pred(graph, p)?;
            let not_p: Vec<bool> = pv.iter().map(|b| !b).collect();
            Violation {
                reason: format!("◇□({}) violated", p.display(system.vars())),
                cycle_node_ok: all,
                cycle_edge_ok: None,
                path_node_ok: None,
                starts: graph.init().to_vec(),
                must_contain: Some(not_p),
            }
        }
        LiveTarget::LeadsTo(p, q) => {
            let pv = eval_pred(graph, p)?;
            let qv = eval_pred(graph, q)?;
            let not_q: Vec<bool> = qv.iter().map(|b| !b).collect();
            let starts: Vec<usize> = (0..graph.len())
                .filter(|i| pv[*i] && not_q[*i])
                .collect();
            Violation {
                reason: format!(
                    "({}) ↝ ({}) violated",
                    p.display(system.vars()),
                    q.display(system.vars())
                ),
                cycle_node_ok: not_q.clone(),
                cycle_edge_ok: None,
                path_node_ok: Some(not_q),
                starts,
                must_contain: None,
            }
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn find_violation(
    system: &System,
    graph: &StateGraph,
    fair_infos: &[FairInfo],
    v: &Violation,
    meter: &Meter,
    charge: Charge,
    resume: Option<&LiveSnapshot>,
    ck: &mut LiveCheckpointer<'_>,
) -> Result<Option<Counterexample>, Stop> {
    if v.starts.is_empty() {
        return Ok(None);
    }
    let edge_ok = |s: usize, i: usize| -> bool {
        v.cycle_node_ok[s]
            && v.cycle_node_ok[graph.edges(s)[i].target]
            && v.cycle_edge_ok.as_ref().is_none_or(|rows| rows[s][i])
    };
    // SCCs of the restricted graph.
    let mut scratch = SccScratch::new();
    let sccs = scc::tarjan_sccs(graph, &v.cycle_node_ok, &edge_ok, meter, charge, &mut scratch)?;
    if let Some(snap) = resume {
        snap.validate_components(sccs.len() as u64)
            .map_err(|e| Stop::Error(e.into()))?;
    }
    // Which states can begin the violating suffix (path constraint).
    let path_region = reachable_from(graph, &v.starts, v.path_node_ok.as_deref());
    let total = sccs.len();
    let mut cleared = vec![false; total];
    let mut done = 0usize;
    if let Some(snap) = resume {
        for &i in snap.cleared() {
            let i = i as usize;
            if i < total && !cleared[i] {
                cleared[i] = true;
                done += 1;
            }
        }
    }
    for (idx, scc_nodes) in sccs.iter().enumerate() {
        if cleared[idx] {
            continue;
        }
        if let Some(reason) = meter.checkpoint() {
            ck.write(&cleared, meter);
            return Err(Stop::Exhausted {
                reason,
                pending: total - done,
            });
        }
        match fair_subcomponent(
            graph,
            fair_infos,
            &edge_ok,
            scc_nodes,
            v.must_contain.as_deref(),
            meter,
            &mut scratch,
        ) {
            Err(stop) => {
                if matches!(stop, Stop::Exhausted { .. }) {
                    ck.write(&cleared, meter);
                }
                return Err(stop.with_pending(total - done));
            }
            Ok(Some((nodes, waypoints))) => {
                // Entry: a node of the component reachable under the
                // path constraint.
                if let Some(&entry) = nodes.iter().find(|n| path_region[**n]) {
                    return Ok(Some(build_counterexample(
                        system, graph, v, &nodes, &waypoints, entry, &edge_ok,
                    )));
                }
                cleared[idx] = true;
                done += 1;
                if ck.due(1) {
                    ck.write(&cleared, meter);
                }
            }
            Ok(None) => {
                cleared[idx] = true;
                done += 1;
                if ck.due(1) {
                    ck.write(&cleared, meter);
                }
            }
        }
    }
    Ok(None)
}

/// States reachable from `starts` through states satisfying
/// `node_ok` (`None` = all). Start states must satisfy it themselves.
fn reachable_from(
    graph: &StateGraph,
    starts: &[usize],
    node_ok: Option<&[bool]>,
) -> Vec<bool> {
    let ok = |n: usize| node_ok.is_none_or(|f| f[n]);
    let mut seen = vec![false; graph.len()];
    let mut queue: std::collections::VecDeque<usize> = starts
        .iter()
        .copied()
        .filter(|n| ok(*n))
        .inspect(|n| seen[*n] = true)
        .collect();
    while let Some(s) = queue.pop_front() {
        for e in graph.edges(s) {
            if ok(e.target) && !seen[e.target] {
                seen[e.target] = true;
                queue.push_back(e.target);
            }
        }
    }
    seen
}

/// BFS path inside a filtered graph, returning `(edge index, node)`
/// hops after `from`.
fn path_filtered(
    graph: &StateGraph,
    from: usize,
    goal: &dyn Fn(usize) -> bool,
    node_ok: &dyn Fn(usize) -> bool,
    edge_ok: &dyn Fn(usize, usize) -> bool,
) -> Option<Vec<(usize, usize)>> {
    if goal(from) {
        return Some(Vec::new());
    }
    let mut prev: std::collections::HashMap<usize, (usize, usize)> =
        std::collections::HashMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(s) = queue.pop_front() {
        for (i, e) in graph.edges(s).iter().enumerate() {
            if !edge_ok(s, i) || !node_ok(e.target) {
                continue;
            }
            if e.target == from || prev.contains_key(&e.target) {
                continue;
            }
            prev.insert(e.target, (s, i));
            if goal(e.target) {
                let mut rev = Vec::new();
                let mut cur = e.target;
                while cur != from {
                    let (p, i) = prev[&cur];
                    rev.push((i, cur));
                    cur = p;
                }
                rev.reverse();
                return Some(rev);
            }
            queue.push_back(e.target);
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn build_counterexample(
    system: &System,
    graph: &StateGraph,
    v: &Violation,
    nodes: &[usize],
    waypoints: &[Waypoint],
    entry: usize,
    edge_ok: &dyn Fn(usize, usize) -> bool,
) -> Counterexample {
    let action_name =
        |i: usize| -> Option<String> { Some(system.actions()[i].name().to_string()) };
    // Prefix: unrestricted shortest trace to the suffix start, then a
    // path (under the path constraint) from the start to the entry.
    let start = *v
        .starts
        .iter()
        .find(|s| {
            let region = reachable_from(graph, &[**s], v.path_node_ok.as_deref());
            region[entry]
        })
        .expect("entry was reachable from some start");
    let mut ids: Vec<(Option<usize>, usize)> = graph.trace_to(start);
    let path_ok = |n: usize| v.path_node_ok.as_ref().is_none_or(|f| f[n]);
    let to_entry = path_filtered(
        graph,
        start,
        &|n| n == entry,
        &path_ok,
        &|_, _| true,
    )
    .expect("reachability established");
    ids.extend(to_entry.iter().map(|(i, n)| (Some(*i), *n)));

    let loop_start = ids.len() - 1; // Index of `entry` in the trace.

    // Cycle: visit every waypoint inside the component, then return.
    let in_nodes = |n: usize| nodes.contains(&n);
    let comp_edge_ok = |s: usize, i: usize| edge_ok(s, i) && in_nodes(graph.edges(s)[i].target);
    let mut cur = entry;
    let append_path_to = |goal: usize, ids: &mut Vec<(Option<usize>, usize)>, cur: &mut usize| {
        let hops = path_filtered(graph, *cur, &|n| n == goal, &in_nodes, &comp_edge_ok)
            .expect("component is strongly connected");
        ids.extend(hops.iter().map(|(i, n)| (Some(*i), *n)));
        *cur = goal;
    };
    for wp in waypoints {
        match wp {
            Waypoint::Node(n) => append_path_to(*n, &mut ids, &mut cur),
            Waypoint::Edge(s, i) => {
                append_path_to(*s, &mut ids, &mut cur);
                let e = graph.edges(*s)[*i];
                ids.push((Some(e.action), e.target));
                cur = e.target;
            }
        }
    }
    if cur != entry {
        append_path_to(entry, &mut ids, &mut cur);
        // The walk re-appended `entry`; drop it — the lasso wraps there.
        ids.pop();
    }
    let states = ids.iter().map(|(_, n)| graph.state(*n).clone()).collect();
    let actions = ids
        .iter()
        .map(|(a, _)| a.and_then(action_name))
        .collect();
    Counterexample::new(v.reason.clone(), states, actions, Some(loop_start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, ExploreOptions, GuardedAction, Init, SystemFairness};
    use opentla_kernel::{Domain, Formula, Value, VarId, Vars};
    use opentla_semantics::{eval, EvalCtx};

    /// x counts 0..=3; `incr` increments, `reset` jumps back to 0.
    fn counter(fair: bool) -> (System, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 3));
        let incr = GuardedAction::new(
            "incr",
            Expr::var(x).lt(Expr::int(3)),
            vec![(x, Expr::var(x).add(Expr::int(1)))],
        );
        let mut sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr]);
        if fair {
            let frame = sys.frame();
            sys = sys.with_fairness(SystemFairness::weak(vec![0], frame));
        }
        (sys, x)
    }

    fn confirm_semantically(system: &System, cx: &Counterexample, target: &Formula) {
        // The counterexample must be a real fair behavior of the system
        // that violates the target.
        let lasso = cx.to_lasso();
        let ctx = EvalCtx::with_universe(system.universe().clone());
        let spec = system.formula();
        assert!(
            eval(&spec, &lasso, &ctx).unwrap(),
            "counterexample must satisfy the system spec (incl. fairness)"
        );
        assert!(
            !eval(target, &lasso, &ctx).unwrap(),
            "counterexample must violate the target"
        );
    }

    #[test]
    fn eventually_fails_without_fairness() {
        let (sys, x) = counter(false);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::var(x).eq(Expr::int(3));
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::Eventually(p.clone())).unwrap();
        let cx = verdict.counterexample().expect("stuttering violates ◇");
        confirm_semantically(&sys, cx, &Formula::pred(p).eventually());
    }

    #[test]
    fn governed_liveness_reports_exhaustion_not_error() {
        use crate::Budget;
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::var(x).eq(Expr::int(3));
        let target = LiveTarget::Eventually(p);
        // A transition budget of 1 cannot even build the fairness
        // tables: the verdict is undecided, the outcome explains why.
        let run = check_liveness_governed(
            &sys,
            &graph,
            &target,
            &Budget::default().transitions(1),
        )
        .unwrap();
        assert!(run.verdict.is_none());
        assert!(matches!(
            run.outcome.exhaustion(),
            Some(crate::ExhaustReason::TransitionLimit { limit: 1 })
        ));
        // Escalating geometrically reaches a decision.
        let run = crate::escalate(&Budget::default().transitions(1), 8, 4, |b| {
            check_liveness_governed(&sys, &graph, &target, b)
        })
        .unwrap();
        assert!(run.verdict.expect("escalated budget decides").holds());
    }

    #[test]
    fn governed_liveness_honors_cancellation() {
        use crate::Budget;
        let (sys, x) = counter(false);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let budget = Budget::default();
        budget.request_cancel();
        let run = check_liveness_governed(
            &sys,
            &graph,
            &LiveTarget::Eventually(Expr::var(x).eq(Expr::int(3))),
            &budget,
        )
        .unwrap();
        assert!(run.verdict.is_none());
        assert!(matches!(
            run.outcome.exhaustion(),
            Some(crate::ExhaustReason::Cancelled)
        ));
    }

    #[test]
    fn eventually_holds_with_fairness() {
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::var(x).eq(Expr::int(3));
        assert!(check_liveness(&sys, &graph, &LiveTarget::Eventually(p))
            .unwrap()
            .holds());
    }

    #[test]
    fn leads_to() {
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::var(x).eq(Expr::int(1));
        let q = Expr::var(x).eq(Expr::int(3));
        assert!(
            check_liveness(&sys, &graph, &LiveTarget::LeadsTo(p.clone(), q.clone()))
                .unwrap()
                .holds()
        );
        // Reverse direction is violated: x = 3 is terminal (only
        // stuttering remains), so ◇(x = 1) fails from there.
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::LeadsTo(q.clone(), p.clone()))
                .unwrap();
        let cx = verdict.counterexample().expect("3 never leads to 1");
        confirm_semantically(
            &sys,
            cx,
            &Formula::pred(q).leads_to(Formula::pred(p)),
        );
    }

    #[test]
    fn eventually_always_and_always_eventually() {
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        // ◇□(x = 3): holds — fairness drives x to 3, which is terminal.
        let p = Expr::var(x).eq(Expr::int(3));
        assert!(
            check_liveness(&sys, &graph, &LiveTarget::EventuallyAlways(p.clone()))
                .unwrap()
                .holds()
        );
        // □◇(x = 0): fails — x never returns to 0.
        let z = Expr::var(x).eq(Expr::int(0));
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::AlwaysEventually(z.clone()))
                .unwrap();
        let cx = verdict.counterexample().expect("x leaves 0 forever");
        confirm_semantically(
            &sys,
            cx,
            &Formula::pred(z).eventually().always(),
        );
    }

    /// Toggle system with two actions; weak fairness on one of them.
    fn toggle_pair() -> (System, VarId, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::bits());
        let set_x = GuardedAction::new(
            "set_x",
            Expr::var(x).eq(Expr::int(0)),
            vec![(x, Expr::int(1))],
        );
        let toggle_y = GuardedAction::new(
            "toggle_y",
            Expr::bool(true),
            vec![(y, Expr::int(1).sub(Expr::var(y)))],
        );
        let sys = System::new(
            vars,
            Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
            vec![set_x, toggle_y],
        );
        (sys, x, y)
    }

    #[test]
    fn target_wf_obligation() {
        // Without system fairness, the target WF(set_x) is violated by
        // toggling y forever.
        let (sys, x, _) = toggle_pair();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let frame = sys.frame();
        let set_x_expr = sys.actions()[0].action_expr(&frame);
        let target = Fairness::weak(set_x_expr.clone(), vec![x]);
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::fair(target.clone())).unwrap();
        let cx = verdict.counterexample().expect("y-toggling starves set_x");
        confirm_semantically(&sys, cx, &Formula::Fair(target.clone()));

        // With WF on set_x as a system requirement, the obligation
        // holds.
        let sys = sys.with_fairness(SystemFairness::weak(vec![0], vec![x]));
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert!(check_liveness(&sys, &graph, &LiveTarget::fair(target))
            .unwrap()
            .holds());
    }

    #[test]
    fn strong_fairness_distinguished() {
        // Action `grab` is enabled only when y = 0, and y toggles
        // forever: enabled infinitely often, disabled infinitely often.
        // WF(grab) is satisfied by the toggling run; SF(grab) is not.
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::bits());
        let grab = GuardedAction::new(
            "grab",
            Expr::all([Expr::var(y).eq(Expr::int(0)), Expr::var(x).eq(Expr::int(0))]),
            vec![(x, Expr::int(1))],
        );
        let toggle_y = GuardedAction::new(
            "toggle_y",
            Expr::bool(true),
            vec![(y, Expr::int(1).sub(Expr::var(y)))],
        );
        let sys = System::new(
            vars,
            Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
            vec![grab, toggle_y],
        );
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let frame = sys.frame();
        let grab_expr = sys.actions()[0].action_expr(&frame);

        let wf_target = Fairness::weak(grab_expr.clone(), vec![x]);
        let sf_target = Fairness::strong(grab_expr.clone(), vec![x]);
        // Neither obligation holds for the bare system (stuttering or
        // staying at y=0 starves grab while it is enabled).
        assert!(!check_liveness(&sys, &graph, &LiveTarget::fair(wf_target.clone()))
            .unwrap()
            .holds());
        // Under system WF(toggle_y) + WF(grab): grab can still starve?
        // No: WF(grab) forces it whenever continuously enabled; but
        // toggling makes it non-continuously enabled, so WF(grab) is
        // satisfiable without firing grab — SF target must still fail.
        let sys = sys
            .with_fairness(SystemFairness::weak(vec![1], vec![y]))
            .with_fairness(SystemFairness::weak(vec![0], vec![x]));
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let wf_verdict =
            check_liveness(&sys, &graph, &LiveTarget::fair(wf_target.clone())).unwrap();
        assert!(wf_verdict.holds(), "WF target holds under system WF");
        let sf_verdict =
            check_liveness(&sys, &graph, &LiveTarget::fair(sf_target.clone())).unwrap();
        let cx = sf_verdict
            .counterexample()
            .expect("SF target fails: toggling starves grab fairly");
        confirm_semantically(&sys, cx, &Formula::Fair(sf_target));
    }

    #[test]
    fn system_sf_makes_target_hold() {
        // Same system, but now the *system* promises SF(grab) and
        // WF(toggle_y): toggling keeps grab enabled infinitely often,
        // SF excludes starving it, so ◇(x = 1) holds. (SF(grab) alone
        // would not suffice: the system could park at y = 1, where grab
        // is disabled, satisfying SF vacuously.)
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::bits());
        let grab = GuardedAction::new(
            "grab",
            Expr::all([Expr::var(y).eq(Expr::int(0)), Expr::var(x).eq(Expr::int(0))]),
            vec![(x, Expr::int(1))],
        );
        let toggle_y = GuardedAction::new(
            "toggle_y",
            Expr::bool(true),
            vec![(y, Expr::int(1).sub(Expr::var(y)))],
        );
        let sys = System::new(
            vars,
            Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
            vec![grab, toggle_y],
        )
        .with_fairness(SystemFairness::strong(vec![0], vec![x]))
        .with_fairness(SystemFairness::weak(vec![1], vec![y]));
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::var(x).eq(Expr::int(1));
        assert!(
            check_liveness(&sys, &graph, &LiveTarget::Eventually(p.clone()))
                .unwrap()
                .holds(),
            "SF(grab) + WF(toggle_y) force grab"
        );
        // Under only WF(grab) it fails (the Streett decomposition must
        // find the toggling sub-component where grab is disabled —
        // wait, WF: the toggling cycle satisfies WF(grab) because grab
        // is disabled at y=1 states infinitely often).
        let sys2 = {
            let mut vars = Vars::new();
            let x = vars.declare("x", Domain::bits());
            let y = vars.declare("y", Domain::bits());
            let grab = GuardedAction::new(
                "grab",
                Expr::all([
                    Expr::var(y).eq(Expr::int(0)),
                    Expr::var(x).eq(Expr::int(0)),
                ]),
                vec![(x, Expr::int(1))],
            );
            let toggle_y = GuardedAction::new(
                "toggle_y",
                Expr::bool(true),
                vec![(y, Expr::int(1).sub(Expr::var(y)))],
            );
            System::new(
                vars,
                Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
                vec![grab, toggle_y],
            )
            .with_fairness(SystemFairness::weak(vec![0], vec![x]))
            .with_fairness(SystemFairness::weak(vec![1], vec![y]))
        };
        let graph2 = explore(&sys2, &ExploreOptions::default()).unwrap();
        let verdict =
            check_liveness(&sys2, &graph2, &LiveTarget::Eventually(p)).unwrap();
        assert!(!verdict.holds(), "WF(grab) is too weak");
    }

    #[test]
    fn streett_decomposition_for_system_sf() {
        // spin cycles y through 0, 1, 2; mark is enabled only at y = 2
        // and sets x. The system promises SF(mark).
        fn make(with_spin_wf: bool) -> System {
            let mut vars = Vars::new();
            let x = vars.declare("x", Domain::bits());
            let y = vars.declare("y", Domain::int_range(0, 2));
            let spin = GuardedAction::new(
                "spin",
                Expr::bool(true),
                vec![(
                    y,
                    Expr::var(y)
                        .eq(Expr::int(2))
                        .ite(Expr::int(0), Expr::var(y).add(Expr::int(1))),
                )],
            );
            let mark = GuardedAction::new(
                "mark",
                Expr::all([
                    Expr::var(y).eq(Expr::int(2)),
                    Expr::var(x).eq(Expr::int(0)),
                ]),
                vec![(x, Expr::int(1))],
            );
            let mut sys = System::new(
                vars,
                Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
                vec![spin, mark],
            )
            .with_fairness(SystemFairness::strong(vec![1], vec![x]));
            if with_spin_wf {
                sys = sys.with_fairness(SystemFairness::weak(vec![0], vec![y]));
            }
            sys
        }
        let x_of = |sys: &System| sys.vars().find("x").unwrap();

        // With SF(mark) alone, the system may loop below y = 2 (where
        // mark stays disabled), so ◇(x = 1) fails. Finding this
        // violation requires the Streett decomposition: the candidate
        // component contains y = 2 states where mark is enabled, and
        // they must be carved out.
        let sys = make(false);
        let p = Expr::var(x_of(&sys)).eq(Expr::int(1));
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::Eventually(p.clone())).unwrap();
        let cx = verdict
            .counterexample()
            .expect("looping below y=2 keeps mark disabled");
        confirm_semantically(&sys, cx, &Formula::pred(p.clone()).eventually());

        // Adding WF(spin) forces y to keep cycling, so mark is enabled
        // infinitely often and SF(mark) forces it: ◇(x = 1) holds.
        let sys = make(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert!(check_liveness(&sys, &graph, &LiveTarget::Eventually(p))
            .unwrap()
            .holds());
    }

    #[test]
    fn small_graphs_route_sequentially() {
        // Below the cutoff the requested thread count is ignored.
        let opts = LivenessOptions::default().threads(4);
        assert_eq!(opts.resolve_threads(10), 1);
        assert_eq!(opts.resolve_threads(LIVENESS_SMALL_GRAPH_CUTOFF), 4);
        // An explicit zero cutoff forces the parallel engine anywhere.
        let opts = LivenessOptions::default().threads(4).small_graph_cutoff(0);
        assert_eq!(opts.resolve_threads(10), 4);
        // Unset thread count resolves to at least one worker.
        let opts = LivenessOptions::default().small_graph_cutoff(0);
        assert!(opts.resolve_threads(10) >= 1);
    }

    #[test]
    fn exhaustion_reports_exact_pending_in_tables() {
        use crate::Budget;
        // The counter graph has 4 states; a transition budget of 1
        // exhausts while building the fairness-table row of state 1,
        // leaving rows 1..4 (3 states) pending. The old engine
        // hardcoded 0 here.
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let target = LiveTarget::Eventually(Expr::var(x).eq(Expr::int(3)));
        let run = check_liveness_governed(
            &sys,
            &graph,
            &target,
            &Budget::default().transitions(1),
        )
        .unwrap();
        assert!(run.verdict.is_none());
        match &run.outcome {
            Outcome::Exhausted { frontier_size, .. } => assert_eq!(*frontier_size, 3),
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn exhaustion_reports_exact_pending_in_scc_pass() {
        use crate::Budget;
        // Tables cost 3 transitions (one per real edge); the 4th charge
        // visits the SCC pass, which exhausts its 2nd edge probe with
        // node 2 (of the 3-node restricted subgraph) still unvisited.
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let target = LiveTarget::Eventually(Expr::var(x).eq(Expr::int(3)));
        let run = check_liveness_governed(
            &sys,
            &graph,
            &target,
            &Budget::default().transitions(4),
        )
        .unwrap();
        assert!(run.verdict.is_none());
        match &run.outcome {
            Outcome::Exhausted { frontier_size, .. } => assert_eq!(*frontier_size, 1),
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn exhaustion_reports_exact_pending_in_component_loop() {
        use crate::Budget;
        // Tables (3) + SCC pass (3) + the first component's fairness
        // scan (1) fit in 7 transitions; the second of three components
        // exhausts, so exactly 2 remain pending.
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let target = LiveTarget::Eventually(Expr::var(x).eq(Expr::int(3)));
        let run = check_liveness_governed(
            &sys,
            &graph,
            &target,
            &Budget::default().transitions(7),
        )
        .unwrap();
        assert!(run.verdict.is_none());
        assert!(matches!(
            run.outcome.exhaustion(),
            Some(crate::ExhaustReason::TransitionLimit { limit: 7 })
        ));
        match &run.outcome {
            Outcome::Exhausted { frontier_size, .. } => assert_eq!(*frontier_size, 2),
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn target_hash_distinguishes_targets() {
        let (_, x) = counter(true);
        let p = Expr::var(x).eq(Expr::int(3));
        let mut hashes: Vec<u64> = [
            LiveTarget::Eventually(p.clone()),
            LiveTarget::AlwaysEventually(p.clone()),
            LiveTarget::EventuallyAlways(p.clone()),
            LiveTarget::LeadsTo(Expr::var(x).eq(Expr::int(1)), p.clone()),
            LiveTarget::Eventually(Expr::var(x).eq(Expr::int(2))),
        ]
        .iter()
        .map(live_target_hash)
        .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 5, "each target hashes distinctly");
        // The hash is a pure function of the target's structure.
        assert_eq!(
            live_target_hash(&LiveTarget::Eventually(p.clone())),
            live_target_hash(&LiveTarget::Eventually(p)),
        );
    }

    #[test]
    fn resumable_requires_checkpoint_budget() {
        use crate::Budget;
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let err = check_liveness_resumable(
            &sys,
            &graph,
            &LiveTarget::Eventually(Expr::var(x).eq(Expr::int(3))),
            &Budget::default(),
            &LivenessOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::Precondition { .. }));
    }

    #[test]
    fn forced_parallel_engine_matches_sequential_on_tiny_graph() {
        use crate::Budget;
        let (sys, x) = counter(false);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let target = LiveTarget::Eventually(Expr::var(x).eq(Expr::int(3)));
        let seq = check_liveness(&sys, &graph, &target).unwrap();
        let par = check_liveness_governed_with(
            &sys,
            &graph,
            &target,
            &Budget::unlimited(),
            &LivenessOptions::default().threads(4).small_graph_cutoff(0),
        )
        .unwrap()
        .verdict
        .expect("unlimited budget decides");
        let (s, p) = (
            seq.counterexample().expect("◇ fails without fairness"),
            par.counterexample().expect("engines agree on the verdict"),
        );
        assert_eq!(s.reason(), p.reason());
        assert_eq!(s.states(), p.states());
        assert_eq!(s.actions(), p.actions());
        assert_eq!(s.loop_start(), p.loop_start());
    }
}
