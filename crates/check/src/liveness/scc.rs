//! SCC decomposition of the property-restricted graph.
//!
//! A thin, metered adapter over the kernel's iterative Tarjan driver
//! ([`opentla_kernel::tarjan_sccs_with`]): the checker supplies the
//! node/edge restriction and its budget accounting, the kernel supplies
//! the stack-safe DFS. Components come back in Tarjan completion order
//! (each sorted ascending) — the order both liveness engines use for
//! deterministic tie-breaking, so it must never depend on thread count.

use super::{Charge, Stop};
use crate::budget::Meter;
use crate::StateGraph;
use opentla_kernel::{tarjan_sccs_with, SccScratch};

/// Tarjan over the restricted graph. Single nodes form components of
/// their own (TLA behaviors may stutter forever, so every node carries
/// an implicit self-loop).
///
/// Each edge slot charges one transition under [`Charge::Metered`];
/// under [`Charge::Banked`] (a resume re-deriving tables already paid
/// for) only the deadline/cancellation poll at each DFS root remains.
/// On exhaustion the reported `pending` is exact: the number of
/// subgraph nodes not yet visited by the DFS.
pub(super) fn tarjan_sccs(
    graph: &StateGraph,
    node_ok: &[bool],
    edge_ok: &dyn Fn(usize, usize) -> bool,
    meter: &Meter,
    charge: Charge,
    scratch: &mut SccScratch,
) -> Result<Vec<Vec<usize>>, Stop> {
    let n = graph.len();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Mirror the driver's visited set so edge-level exhaustion can
    // still report an exact remaining count: the driver visits a
    // target exactly when we have not seen it yet. Shared between the
    // edge and root hooks, hence the cells.
    let seen = std::cell::RefCell::new(vec![false; n]);
    let unvisited = std::cell::Cell::new(0usize);
    tarjan_sccs_with::<Stop>(
        n,
        scratch,
        &|v| node_ok[v],
        &|v| graph.edges(v).len(),
        &mut |v, i| {
            if let Charge::Metered = charge {
                if let Some(reason) = meter.charge_transition() {
                    return Err(Stop::Exhausted {
                        reason,
                        pending: unvisited.get(),
                    });
                }
            }
            if !edge_ok(v, i) {
                return Ok(None);
            }
            let t = graph.edges(v)[i].target;
            if !node_ok[t] {
                return Ok(None);
            }
            let mut seen = seen.borrow_mut();
            if !seen[t] {
                seen[t] = true;
                unvisited.set(unvisited.get() - 1);
            }
            Ok(Some(t))
        },
        &mut |root, remaining| {
            if let Some(reason) = meter.checkpoint() {
                return Err(Stop::Exhausted {
                    reason,
                    pending: remaining,
                });
            }
            seen.borrow_mut()[root] = true;
            unvisited.set(remaining - 1);
            Ok(())
        },
        &mut |comp| sccs.push(comp),
    )?;
    Ok(sccs)
}
