//! Fairness tables and per-component fairness satisfiability.
//!
//! The table builders precompute, per fairness requirement, which graph
//! edges are `⟨A⟩_v` steps and where the action is enabled; both engines
//! share them, and on multiple threads the per-state rows are computed
//! in parallel (the rows are independent, and for semantic targets each
//! row performs an `Enabled` next-state search over the universe — the
//! dominant cost on large graphs).
//!
//! [`fair_subcomponent`] is the per-component satisfiability check,
//! including the Streett-style `SF` removal recursion. It is a pure
//! function of the component (plus the shared tables and meter), which
//! is what lets the parallel engine hand whole components to workers
//! while keeping verdicts deterministic.

use super::{par, scc::tarjan_sccs, Charge, Stop};
use crate::budget::Meter;
use crate::{CheckError, StateGraph, System};
use opentla_kernel::{Expr, Fairness, FairnessKind, SccScratch, StatePair};

/// Per-fairness-requirement facts about the graph.
pub(super) struct FairInfo {
    pub(super) kind: FairnessKind,
    /// `angle[s][i]`: is the i-th edge of `s` an `⟨A⟩_v` step?
    pub(super) angle: Vec<Vec<bool>>,
    /// Is `⟨A⟩_v` enabled in state `s`?
    pub(super) enabled: Vec<bool>,
    /// Human-readable name for diagnostics.
    #[allow(dead_code)]
    pub(super) name: String,
}

pub(super) fn system_fair_infos(
    system: &System,
    graph: &StateGraph,
    meter: &Meter,
    charge: Charge,
    threads: usize,
) -> Result<Vec<FairInfo>, Stop> {
    system
        .fairness()
        .iter()
        .map(|f| {
            let angle = par::table_rows(graph.len(), threads, &|id: usize| {
                let s = graph.state(id);
                graph
                    .edges(id)
                    .iter()
                    .map(|e| {
                        charge.edge(meter)?;
                        Ok(f.action_ids.contains(&e.action)
                            && !s.agrees_with(graph.state(e.target), &f.sub))
                    })
                    .collect::<Result<Vec<bool>, Stop>>()
            })?;
            let enabled = angle
                .iter()
                .map(|flags| flags.iter().any(|b| *b))
                .collect();
            let names: Vec<&str> = f
                .action_ids
                .iter()
                .map(|i| system.actions()[*i].name())
                .collect();
            Ok(FairInfo {
                kind: f.kind,
                angle,
                enabled,
                name: format!(
                    "{}({})",
                    match f.kind {
                        FairnessKind::Weak => "WF",
                        FairnessKind::Strong => "SF",
                    },
                    names.join(" ∨ ")
                ),
            })
        })
        .collect()
}

/// Facts about the target fairness condition (semantic, since the
/// action may be an abstract action under a refinement mapping).
pub(super) fn target_fair_info(
    system: &System,
    graph: &StateGraph,
    fair: &Fairness,
    enabled_with: Option<&Expr>,
    meter: &Meter,
    charge: Charge,
    threads: usize,
) -> Result<(Vec<Vec<bool>>, Vec<bool>), Stop> {
    let angle_expr = fair.angle_action();
    let rows = par::table_rows(graph.len(), threads, &|id: usize| {
        let s = graph.state(id);
        if let Some(reason) = meter.checkpoint() {
            return Err(Stop::exhausted(reason));
        }
        let flags: Vec<bool> = graph
            .edges(id)
            .iter()
            .map(|e| {
                charge.edge(meter)?;
                angle_expr
                    .holds_action(StatePair::new(s, graph.state(e.target)))
                    .map_err(|e| Stop::Error(e.into()))
            })
            .collect::<Result<_, Stop>>()?;
        let enabled = match enabled_with {
            Some(pred) => pred.holds_state(s).map_err(CheckError::from)?,
            // An ⟨A⟩_v graph edge is itself an in-universe witness, so
            // the per-state `Enabled` search only runs where no edge
            // fires (e.g. an abstract action enabled toward a successor
            // no concrete step reaches).
            None if flags.iter().any(|b| *b) => true,
            None => system
                .universe()
                .enabled(&angle_expr, s)
                .map_err(CheckError::from)?,
        };
        Ok((flags, enabled))
    })?;
    let mut angle = Vec::with_capacity(rows.len());
    let mut enabled = Vec::with_capacity(rows.len());
    for (flags, e) in rows {
        angle.push(flags);
        enabled.push(e);
    }
    Ok((angle, enabled))
}

/// A witness that a fairness requirement is satisfied by the cycle.
#[derive(Clone, Copy, Debug)]
pub(super) enum Waypoint {
    /// Traverse this edge (source node, index into its edge list).
    Edge(usize, usize),
    /// Visit this node.
    Node(usize),
}

/// A fair node set plus one waypoint per fairness requirement that
/// needs an explicit witness.
pub(super) type FairWitness = (Vec<usize>, Vec<Waypoint>);

/// Depth-first search for a strongly connected node set (within `scc`)
/// in which every fairness requirement is satisfiable and the
/// `must_contain` requirement holds. Returns the node set plus one
/// waypoint per fairness requirement that needs an explicit witness.
///
/// Always charges the meter — component analysis is new work even on a
/// resumed run (only already-*cleared* components are skipped there).
pub(super) fn fair_subcomponent(
    graph: &StateGraph,
    fair_infos: &[FairInfo],
    edge_ok: &dyn Fn(usize, usize) -> bool,
    scc: &[usize],
    must_contain: Option<&[bool]>,
    meter: &Meter,
    scratch: &mut SccScratch,
) -> Result<Option<FairWitness>, Stop> {
    if let Some(reason) = meter.checkpoint() {
        return Err(Stop::exhausted(reason));
    }
    if let Some(req) = must_contain {
        if !scc.iter().any(|n| req[*n]) {
            return Ok(None);
        }
    }
    let in_scc = |n: usize| scc.contains(&n);
    let mut waypoints = Vec::new();
    if let Some(req) = must_contain {
        let node = scc.iter().copied().find(|n| req[*n]).expect("checked");
        waypoints.push(Waypoint::Node(node));
    }
    for info in fair_infos {
        // An internal ⟨A⟩_v edge satisfies both WF and SF.
        let mut edge_witness = None;
        'search: for &s in scc {
            for (i, e) in graph.edges(s).iter().enumerate() {
                if let Some(reason) = meter.charge_transition() {
                    return Err(Stop::exhausted(reason));
                }
                if info.angle[s][i] && edge_ok(s, i) && in_scc(e.target) {
                    edge_witness = Some(Waypoint::Edge(s, i));
                    break 'search;
                }
            }
        }
        if let Some(w) = edge_witness {
            waypoints.push(w);
            continue;
        }
        match info.kind {
            FairnessKind::Weak => {
                // A state where the action is disabled, visited
                // infinitely often, also satisfies WF.
                match scc.iter().copied().find(|n| !info.enabled[*n]) {
                    Some(n) => waypoints.push(Waypoint::Node(n)),
                    None => return Ok(None), // WF unsatisfiable here and in any subset.
                }
            }
            FairnessKind::Strong => {
                // SF needs *no* enabled state in the cycle. If some are
                // enabled, remove them and recurse on the
                // sub-components (Streett decomposition).
                if scc.iter().all(|n| !info.enabled[*n]) {
                    continue; // Satisfied without a waypoint.
                }
                let survivors: Vec<usize> = scc
                    .iter()
                    .copied()
                    .filter(|n| !info.enabled[*n])
                    .collect();
                if survivors.is_empty() {
                    return Ok(None);
                }
                let mut node_ok = vec![false; graph.len()];
                for &n in &survivors {
                    node_ok[n] = true;
                }
                let sub_edge_ok =
                    |s: usize, i: usize| edge_ok(s, i) && node_ok[graph.edges(s)[i].target];
                for sub in
                    tarjan_sccs(graph, &node_ok, &sub_edge_ok, meter, Charge::Metered, scratch)?
                {
                    if let Some(found) = fair_subcomponent(
                        graph,
                        fair_infos,
                        edge_ok,
                        &sub,
                        must_contain,
                        meter,
                        scratch,
                    )? {
                        return Ok(Some(found));
                    }
                }
                return Ok(None);
            }
        }
    }
    Ok(Some((scc.to_vec(), waypoints)))
}
