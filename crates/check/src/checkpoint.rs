//! Crash-tolerant checkpointing: resumable on-disk snapshots of a run.
//!
//! Long explicit-state runs — exactly what the Composition Theorem's
//! complete-system obligations produce — must survive interruption:
//! a crash at hour three is otherwise a total loss. Following TLC's
//! `-checkpoint`/`-recover` discipline, exploration engines running
//! under a [`Budget`](crate::Budget) with
//! [`Budget::with_checkpoint`](crate::Budget::with_checkpoint)
//! periodically serialize their resumable core — the state arena, the
//! recorded edges and BFS tree, the unexpanded frontier, and the
//! reduction statistics — to a [`Snapshot`], and
//! [`explore_resumable`](crate::explore_resumable) continues from the
//! preserved frontier instead of restarting.
//!
//! # Format and integrity
//!
//! The snapshot is a zero-dependency binary file:
//!
//! ```text
//! magic    8 bytes  b"OTLASNAP"
//! body     version (u32 LE) + header + payload
//! checksum 8 bytes  FNV-1a over the body
//! ```
//!
//! The header pins everything that decides *whether the snapshot may
//! be trusted for a resume*: the system's structural hash, the
//! fingerprint width (`fp_bits` — a snapshot taken under forced
//! collisions must not silently resume a full-width run), the
//! [`VisitedMode`], and whether a reduction was active. [`Snapshot::load`]
//! verifies magic, version, and checksum; [`Snapshot::validate`]
//! refuses any mismatch with a typed [`CheckpointError`] — never a
//! panic, and never a silent wrong-configuration resume.
//!
//! Writes are atomic (temp file in the same directory, then rename),
//! so a crash mid-write leaves the previous snapshot intact.
//!
//! # Why resuming preserves soundness
//!
//! A snapshot stores no visited set: on load the dedup structures are
//! rebuilt by re-fingerprinting the arena ([`State::fingerprint`] is
//! deterministic across processes), under the *same* `fp_bits` the
//! original run used — so the resumed run conflates exactly the states
//! the original would have, keeping the under-approximation argument
//! of [`VisitedMode::Fingerprint`] intact. Frontier states' partial
//! edge lists are cleared at capture and those states fully re-expand
//! on resume; a final renumbering pass then replays canonical BFS
//! discovery order, which is why a resumed run's graph is
//! byte-identical to an uninterrupted one.

use crate::explore::Edge;
use crate::obs::{Event, RecorderHandle};
use crate::reduction::ReductionStats;
use crate::{ExploreOptions, System, VisitedMode};
use opentla_kernel::codec::{self, Reader};
use opentla_kernel::store::{self, SegmentMeta, StoreError};
use opentla_kernel::{PackedLayout, State};
use std::hash::Hasher;
use std::path::{Path, PathBuf};

/// Default checkpoint cadence, in state expansions between snapshot
/// writes. At typical sequential throughput this is a snapshot every
/// few hundred milliseconds of exploration — frequent enough that an
/// interrupted run loses little, rare enough that the write cost
/// stays well under the 5 % overhead gate.
pub const DEFAULT_CHECKPOINT_CADENCE: u64 = 65_536;

/// Snapshot wire-format version accepted by this build.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Wire-format version of *spill* snapshots — taken by the
/// bounded-memory engine, which snapshots by **referencing** its
/// sealed segment files (name + record count + checksum) and embedding
/// only the unsealed in-RAM tail, so a periodic checkpoint costs
/// O(hot tier), not O(state space). [`Snapshot::load`] reads both
/// versions; a spill snapshot is expanded back to the in-RAM form by
/// `materialize` before any engine resumes from it.
pub const SNAPSHOT_VERSION_SPILL: u32 = 2;

const MAGIC: &[u8; 8] = b"OTLASNAP";

/// Where and how often a budgeted run checkpoints; see
/// [`Budget::with_checkpoint`](crate::Budget::with_checkpoint).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Snapshot file path (overwritten atomically on each write).
    pub path: PathBuf,
    /// State expansions between periodic snapshots (≥ 1).
    pub cadence: u64,
}

/// Proof that an exhausted run left a resumable snapshot behind;
/// carried by [`Outcome::Exhausted`](crate::Outcome::Exhausted).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeToken {
    /// The snapshot file the run wrote last.
    pub path: PathBuf,
    /// Sequence number of that snapshot (strictly increasing within a
    /// run, so observers can tell periodic writes apart).
    pub seq: u64,
}

/// Why a snapshot could not be written, read, or trusted.
///
/// `Clone` because [`CheckError`](crate::CheckError) is `Clone`; I/O
/// errors are therefore carried as rendered strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// The file does not start with the snapshot magic — not a
    /// snapshot at all.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// The version found in the file.
        found: u32,
    },
    /// The body's checksum does not match: the file was truncated or
    /// corrupted after writing.
    ChecksumMismatch,
    /// The body failed structural decoding despite a valid checksum
    /// (or a length/bounds invariant failed).
    Corrupt {
        /// What failed.
        detail: String,
    },
    /// The snapshot is valid but was taken under a different system or
    /// configuration than the resume requests — resuming would be
    /// unsound, so it is refused.
    Mismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// The value recorded in the snapshot.
        snapshot: String,
        /// The value the resume requested.
        requested: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "snapshot I/O failed at {}: {message}", path.display())
            }
            CheckpointError::BadMagic => {
                write!(f, "not a snapshot file (bad magic)")
            }
            CheckpointError::UnsupportedVersion { found } => write!(
                f,
                "snapshot format version {found} is not supported \
                 (this build reads version {SNAPSHOT_VERSION})"
            ),
            CheckpointError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch (truncated or corrupted)")
            }
            CheckpointError::Corrupt { detail } => {
                write!(f, "snapshot is corrupt: {detail}")
            }
            CheckpointError::Mismatch {
                field,
                snapshot,
                requested,
            } => write!(
                f,
                "snapshot was taken under a different {field} \
                 (snapshot: {snapshot}, requested: {requested}); \
                 refusing to resume"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Segment-store failures surface through the same typed vocabulary:
/// a corrupt or truncated segment file referenced by a spill snapshot
/// is a checkpoint problem to its caller.
impl From<StoreError> for CheckpointError {
    fn from(e: StoreError) -> CheckpointError {
        match e {
            StoreError::Io { path, message } => CheckpointError::Io { path, message },
            StoreError::BadMagic { .. } => CheckpointError::BadMagic,
            StoreError::UnsupportedVersion { found } => {
                CheckpointError::UnsupportedVersion { found }
            }
            StoreError::ChecksumMismatch { .. } => CheckpointError::ChecksumMismatch,
            StoreError::Corrupt { detail } => CheckpointError::Corrupt { detail },
            StoreError::MetaMismatch {
                field,
                expected,
                found,
            } => CheckpointError::Corrupt {
                detail: format!(
                    "segment {field} disagrees with the manifest \
                     (recorded {expected}, found {found})"
                ),
            },
        }
    }
}

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// FNV-1a over `bytes` — a zero-dependency integrity check (this
/// guards against truncation and bit rot, not adversaries).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A structural hash of a [`System`] — variable names and action
/// names, in order — pinned into every snapshot so a resume against a
/// *different* system is refused instead of silently producing
/// garbage. Deliberately coarse: it fingerprints the system's shape,
/// not its semantics.
pub(crate) fn system_hash(system: &System) -> u64 {
    let mut h = fxhash::FxHasher::default();
    let vars = system.vars();
    h.write_usize(vars.len());
    for v in vars.iter() {
        h.write(vars.name(v).as_bytes());
        h.write_u8(0xff);
    }
    h.write_usize(system.actions().len());
    for a in system.actions() {
        h.write(a.name().as_bytes());
        h.write_u8(0xfe);
    }
    h.finish()
}

/// A run's resumable core, as captured at a consistent cut of the
/// exploration: every non-frontier state is fully expanded (its edge
/// list is complete and in action order), every frontier state is
/// entirely unexpanded (its edge list is empty), and every arena
/// state is reachable from the initial states via recorded edges or
/// sits on the frontier. Resuming therefore only ever *re-does* the
/// expansion of frontier states — O(new work), not O(total).
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Fingerprint width the run used (see
    /// [`ExploreOptions::fp_bits`]).
    pub fp_bits: u32,
    /// Visited-set representation the run used.
    pub mode: VisitedMode,
    /// Whether a reduction was active.
    pub reduced: bool,
    /// Structural hash of the explored system.
    pub system_hash: u64,
    /// Sequence number of this snapshot within its run.
    pub seq: u64,
    pub(crate) states: Vec<State>,
    pub(crate) init: Vec<usize>,
    pub(crate) edges: Vec<Vec<Edge>>,
    pub(crate) parents: Vec<Option<(usize, usize)>>,
    pub(crate) frontier: Vec<usize>,
    pub(crate) reduction: Option<ReductionStats>,
    /// `Some` for a bounded-memory (spill) snapshot: the arena and
    /// edge lists live in sealed segment files referenced by name and
    /// checksum, plus the embedded unsealed tails. `states`, `edges`,
    /// and `parents` are empty until [`Snapshot::materialize`] expands
    /// them from the segments.
    pub(crate) spill: Option<SpillManifest>,
}

/// What a spill snapshot records instead of the in-RAM arena: where
/// the sealed segment files live and how to verify them, plus the
/// unsealed hot tails copied inline (cheap — O(one segment), by
/// construction smaller than the seal threshold).
#[derive(Clone, Debug)]
pub(crate) struct SpillManifest {
    /// Directory holding the run's segment files.
    pub(crate) dir: PathBuf,
    /// Total arena states (sealed + hot).
    pub(crate) states: u64,
    /// Total committed transitions across all edge records.
    pub(crate) transitions: u64,
    /// Sealed arena segments, in id order.
    pub(crate) arena_segments: Vec<SegmentMeta>,
    /// Unsealed arena records (ids follow the last sealed segment).
    pub(crate) arena_hot: Vec<Vec<u8>>,
    /// Sealed edge-record segments.
    pub(crate) edge_segments: Vec<SegmentMeta>,
    /// Unsealed edge records.
    pub(crate) edge_hot: Vec<Vec<u8>>,
}

impl Snapshot {
    /// States banked in the snapshot (what the resumed meter is
    /// pre-charged with).
    pub fn states_used(&self) -> usize {
        match &self.spill {
            Some(m) => m.states as usize,
            None => self.states.len(),
        }
    }

    /// Fully-committed transitions banked in the snapshot.
    pub fn transitions_used(&self) -> usize {
        match &self.spill {
            Some(m) => m.transitions as usize,
            None => self.edges.iter().map(Vec::len).sum(),
        }
    }

    /// Number of discovered-but-unexpanded states awaiting resume.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// Refuses to resume under a different system or configuration:
    /// the structural hash, fingerprint width, visited mode, and
    /// reduction activity must all match what the snapshot was taken
    /// under.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] naming the first disagreeing
    /// field.
    pub fn validate(
        &self,
        system: &System,
        options: &ExploreOptions,
    ) -> Result<(), CheckpointError> {
        let mismatch = |field, snapshot: String, requested: String| {
            Err(CheckpointError::Mismatch {
                field,
                snapshot,
                requested,
            })
        };
        let requested_hash = system_hash(system);
        if self.system_hash != requested_hash {
            return mismatch(
                "system",
                format!("{:#018x}", self.system_hash),
                format!("{requested_hash:#018x}"),
            );
        }
        if self.fp_bits != options.fp_bits.clamp(1, 64) {
            return mismatch(
                "fingerprint width (fp_bits)",
                self.fp_bits.to_string(),
                options.fp_bits.clamp(1, 64).to_string(),
            );
        }
        if self.mode != options.mode {
            return mismatch(
                "visited mode",
                format!("{:?}", self.mode),
                format!("{:?}", options.mode),
            );
        }
        if self.reduced != options.reduction.is_active() {
            return mismatch(
                "reduction activity",
                self.reduced.to_string(),
                options.reduction.is_active().to_string(),
            );
        }
        Ok(())
    }

    /// Serializes the snapshot body (everything between magic and
    /// checksum).
    fn encode_body(&self) -> Vec<u8> {
        let version = if self.spill.is_some() {
            SNAPSHOT_VERSION_SPILL
        } else {
            SNAPSHOT_VERSION
        };
        let mut out = Vec::new();
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&self.fp_bits.to_le_bytes());
        out.push(match self.mode {
            VisitedMode::Fingerprint => 0,
            VisitedMode::Exact => 1,
        });
        out.push(u8::from(self.reduced));
        out.extend_from_slice(&self.system_hash.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        let push_ids = |out: &mut Vec<u8>, ids: &[usize]| {
            out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
            for &i in ids {
                out.extend_from_slice(&(i as u32).to_le_bytes());
            }
        };
        let push_bytes = |out: &mut Vec<u8>, bytes: &[u8]| {
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        };
        if let Some(m) = &self.spill {
            push_bytes(&mut out, m.dir.to_string_lossy().as_bytes());
            out.extend_from_slice(&m.states.to_le_bytes());
            out.extend_from_slice(&m.transitions.to_le_bytes());
            for segments in [&m.arena_segments, &m.edge_segments] {
                out.extend_from_slice(&(segments.len() as u32).to_le_bytes());
                for seg in segments.iter() {
                    push_bytes(&mut out, seg.name.as_bytes());
                    for word in [seg.first, seg.records, seg.payload_len, seg.payload_checksum] {
                        out.extend_from_slice(&word.to_le_bytes());
                    }
                }
            }
            for hot in [&m.arena_hot, &m.edge_hot] {
                out.extend_from_slice(&(hot.len() as u32).to_le_bytes());
                for rec in hot.iter() {
                    push_bytes(&mut out, rec);
                }
            }
            push_ids(&mut out, &self.init);
            push_ids(&mut out, &self.frontier);
            match &self.reduction {
                None => out.push(0),
                Some(r) => {
                    out.push(1);
                    for n in [
                        r.ample_states,
                        r.full_states,
                        r.skipped_transitions,
                        r.canon_hits,
                    ] {
                        out.extend_from_slice(&(n as u64).to_le_bytes());
                    }
                }
            }
            return out;
        }
        out.extend_from_slice(&(self.states.len() as u32).to_le_bytes());
        for s in &self.states {
            codec::encode_state(s, &mut out);
        }
        push_ids(&mut out, &self.init);
        for es in &self.edges {
            out.extend_from_slice(&(es.len() as u32).to_le_bytes());
            for e in es {
                out.extend_from_slice(&(e.action as u32).to_le_bytes());
                out.extend_from_slice(&(e.target as u32).to_le_bytes());
            }
        }
        for p in &self.parents {
            match p {
                None => out.push(0),
                Some((parent, action)) => {
                    out.push(1);
                    out.extend_from_slice(&(*parent as u32).to_le_bytes());
                    out.extend_from_slice(&(*action as u32).to_le_bytes());
                }
            }
        }
        push_ids(&mut out, &self.frontier);
        match &self.reduction {
            None => out.push(0),
            Some(r) => {
                out.push(1);
                for n in [
                    r.ample_states,
                    r.full_states,
                    r.skipped_transitions,
                    r.canon_hits,
                ] {
                    out.extend_from_slice(&(n as u64).to_le_bytes());
                }
            }
        }
        out
    }

    fn decode_body(body: &[u8]) -> Result<Snapshot, CheckpointError> {
        let corrupt = |detail: String| CheckpointError::Corrupt { detail };
        let mut r = Reader::new(body);
        let version = r
            .u32("version")
            .map_err(|e| corrupt(e.to_string()))?;
        if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_SPILL {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        // From here every decode error is structural corruption.
        let mut read = SnapshotReader { r };
        if version == SNAPSHOT_VERSION_SPILL {
            read.finish_spill()
        } else {
            read.finish()
        }
    }

    /// Writes the snapshot to `path` atomically: the encoding goes to
    /// a temporary file in the same directory, which is then renamed
    /// over `path` — a crash mid-write leaves any previous snapshot
    /// intact.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the filesystem refuses.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let body = self.encode_body();
        let mut file = Vec::with_capacity(body.len() + 16);
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&body);
        file.extend_from_slice(&fnv1a(&body).to_le_bytes());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &file).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
    }

    /// Loads and verifies a snapshot: magic, format version, checksum,
    /// and structural bounds (every id in range). Corrupt or truncated
    /// files yield a typed error, never a panic.
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] except `Mismatch` (configuration
    /// validation is [`Snapshot::validate`]'s job).
    pub fn load(path: &Path) -> Result<Snapshot, CheckpointError> {
        let file = std::fs::read(path).map_err(|e| io_err(path, e))?;
        if file.len() < MAGIC.len() + 8 || &file[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let (body, tail) = file[MAGIC.len()..].split_at(file.len() - MAGIC.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte checksum tail"));
        if fnv1a(body) != stored {
            return Err(CheckpointError::ChecksumMismatch);
        }
        Snapshot::decode_body(body)
    }

    /// Expands a spill snapshot into the in-RAM (version-1) form by
    /// reading every referenced segment file back through the store's
    /// verified reader, so the engines only ever resume from a fully
    /// materialized arena. Already-materialized snapshots are returned
    /// unchanged.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when a referenced segment file is gone,
    /// or any corruption-class error when one fails verification or
    /// disagrees with the manifest.
    pub(crate) fn materialize(self, system: &System) -> Result<Snapshot, CheckpointError> {
        let Some(m) = &self.spill else {
            return Ok(self);
        };
        let corrupt = |detail: String| CheckpointError::Corrupt { detail };
        let layout = PackedLayout::compile(system.vars());
        let n = m.states as usize;
        let mut states = Vec::with_capacity(n);
        let mut parents = Vec::with_capacity(n);
        {
            let mut take = |bytes: &[u8]| -> Result<(), CheckpointError> {
                let rec = decode_arena_record(bytes, layout.as_ref())?;
                states.push(rec.state);
                parents.push(rec.parent);
                Ok(())
            };
            for meta in &m.arena_segments {
                for rec in store::read_segment(&m.dir.join(&meta.name), Some(meta))? {
                    take(&rec)?;
                }
            }
            for rec in &m.arena_hot {
                take(rec)?;
            }
        }
        if states.len() != n {
            return Err(corrupt(format!(
                "spill manifest claims {n} states, segments held {}",
                states.len()
            )));
        }
        let mut edges = vec![Vec::new(); n];
        let mut expanded = vec![false; n];
        let mut transitions = 0u64;
        {
            let mut take = |bytes: &[u8]| -> Result<(), CheckpointError> {
                let (id, es) = decode_edge_record(bytes, n)?;
                if std::mem::replace(&mut expanded[id], true) {
                    return Err(corrupt(format!("duplicate edge record for state {id}")));
                }
                transitions += es.len() as u64;
                edges[id] = es;
                Ok(())
            };
            for meta in &m.edge_segments {
                for rec in store::read_segment(&m.dir.join(&meta.name), Some(meta))? {
                    take(&rec)?;
                }
            }
            for rec in &m.edge_hot {
                take(rec)?;
            }
        }
        if transitions != m.transitions {
            return Err(corrupt(format!(
                "spill manifest claims {} transitions, edge records held {transitions}",
                m.transitions
            )));
        }
        Ok(Snapshot {
            fp_bits: self.fp_bits,
            mode: self.mode,
            reduced: self.reduced,
            system_hash: self.system_hash,
            seq: self.seq,
            states,
            init: self.init.clone(),
            edges,
            parents,
            frontier: self.frontier.clone(),
            reduction: self.reduction,
            spill: None,
        })
    }
}

/// Decoding state for the snapshot body past the version word.
struct SnapshotReader<'a> {
    r: Reader<'a>,
}

impl SnapshotReader<'_> {
    fn corrupt<T>(detail: impl Into<String>) -> Result<T, CheckpointError> {
        Err(CheckpointError::Corrupt {
            detail: detail.into(),
        })
    }

    fn u8(&mut self, ctx: &'static str) -> Result<u8, CheckpointError> {
        self.r
            .u8(ctx)
            .map_err(|e| CheckpointError::Corrupt { detail: e.to_string() })
    }

    fn u32(&mut self, ctx: &'static str) -> Result<u32, CheckpointError> {
        self.r
            .u32(ctx)
            .map_err(|e| CheckpointError::Corrupt { detail: e.to_string() })
    }

    fn u64(&mut self, ctx: &'static str) -> Result<u64, CheckpointError> {
        self.r
            .u64(ctx)
            .map_err(|e| CheckpointError::Corrupt { detail: e.to_string() })
    }

    fn id(&mut self, ctx: &'static str, bound: usize) -> Result<usize, CheckpointError> {
        let id = self.u32(ctx)? as usize;
        if id >= bound {
            return Self::corrupt(format!("{ctx} {id} out of range (< {bound})"));
        }
        Ok(id)
    }

    fn ids(&mut self, ctx: &'static str, bound: usize) -> Result<Vec<usize>, CheckpointError> {
        let n = self.u32(ctx)? as usize;
        if n > bound {
            return Self::corrupt(format!("{ctx} count {n} exceeds state count {bound}"));
        }
        (0..n).map(|_| self.id(ctx, bound)).collect()
    }

    /// Reads the header fields shared by both snapshot versions:
    /// `(fp_bits, mode, reduced, system_hash, seq)`.
    #[allow(clippy::type_complexity)]
    fn header(&mut self) -> Result<(u32, VisitedMode, bool, u64, u64), CheckpointError> {
        let fp_bits = self.u32("fp_bits")?;
        if fp_bits == 0 || fp_bits > 64 {
            return Self::corrupt(format!("fp_bits {fp_bits} outside 1..=64"));
        }
        let mode = match self.u8("visited mode")? {
            0 => VisitedMode::Fingerprint,
            1 => VisitedMode::Exact,
            m => return Self::corrupt(format!("unknown visited mode tag {m}")),
        };
        let reduced = match self.u8("reduced flag")? {
            0 => false,
            1 => true,
            b => return Self::corrupt(format!("bad reduced flag {b}")),
        };
        let system_hash = self.u64("system hash")?;
        let seq = self.u64("sequence number")?;
        Ok((fp_bits, mode, reduced, system_hash, seq))
    }

    /// Reads the trailing reduction-stats block.
    fn reduction(&mut self) -> Result<Option<ReductionStats>, CheckpointError> {
        match self.u8("reduction tag")? {
            0 => Ok(None),
            1 => Ok(Some(ReductionStats {
                ample_states: self.u64("ample states")? as usize,
                full_states: self.u64("full states")? as usize,
                skipped_transitions: self.u64("skipped transitions")? as usize,
                canon_hits: self.u64("canon hits")? as usize,
            })),
            t => Self::corrupt(format!("bad reduction tag {t}")),
        }
    }

    fn bytes(&mut self, ctx: &'static str) -> Result<Vec<u8>, CheckpointError> {
        self.r
            .bytes(ctx)
            .map(<[u8]>::to_vec)
            .map_err(|e| CheckpointError::Corrupt { detail: e.to_string() })
    }

    fn finish(&mut self) -> Result<Snapshot, CheckpointError> {
        let (fp_bits, mode, reduced, system_hash, seq) = self.header()?;
        let n = self.u32("state count")? as usize;
        let mut states = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            states.push(
                codec::decode_state(&mut self.r)
                    .map_err(|e| CheckpointError::Corrupt { detail: e.to_string() })?,
            );
        }
        let init = self.ids("initial state id", n)?;
        let mut edges = Vec::with_capacity(n);
        for _ in 0..n {
            let k = self.u32("edge count")? as usize;
            let mut es = Vec::with_capacity(k.min(1 << 20));
            for _ in 0..k {
                let action = self.u32("edge action")? as usize;
                let target = self.id("edge target", n)?;
                es.push(Edge { action, target });
            }
            edges.push(es);
        }
        let mut parents = Vec::with_capacity(n);
        for i in 0..n {
            parents.push(match self.u8("parent tag")? {
                0 => None,
                1 => {
                    let parent = self.id("parent id", i.max(1))?;
                    let action = self.u32("parent action")? as usize;
                    Some((parent, action))
                }
                t => return Self::corrupt(format!("bad parent tag {t}")),
            });
        }
        let frontier = self.ids("frontier id", n)?;
        let reduction = self.reduction()?;
        if !self.r.is_empty() {
            return Self::corrupt(format!(
                "{} trailing byte(s) after the snapshot body",
                self.r.remaining()
            ));
        }
        Ok(Snapshot {
            fp_bits,
            mode,
            reduced,
            system_hash,
            seq,
            states,
            init,
            edges,
            parents,
            frontier,
            reduction,
            spill: None,
        })
    }

    fn finish_spill(&mut self) -> Result<Snapshot, CheckpointError> {
        let (fp_bits, mode, reduced, system_hash, seq) = self.header()?;
        let dir = PathBuf::from(
            String::from_utf8(self.bytes("spill directory")?)
                .map_err(|_| CheckpointError::Corrupt {
                    detail: "spill directory is not valid UTF-8".into(),
                })?,
        );
        let states = self.u64("spill state count")?;
        let transitions = self.u64("spill transition count")?;
        let mut segments = || -> Result<Vec<SegmentMeta>, CheckpointError> {
            let count = self.u32("segment count")? as usize;
            let mut list = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                let name = String::from_utf8(self.bytes("segment name")?).map_err(|_| {
                    CheckpointError::Corrupt {
                        detail: "segment name is not valid UTF-8".into(),
                    }
                })?;
                if name.contains('/') || name.contains('\\') || name.contains("..") {
                    return Self::corrupt(format!("segment name {name:?} escapes the spill dir"));
                }
                list.push(SegmentMeta {
                    name,
                    first: self.u64("segment first id")?,
                    records: self.u64("segment record count")?,
                    payload_len: self.u64("segment payload length")?,
                    payload_checksum: self.u64("segment payload checksum")?,
                });
            }
            Ok(list)
        };
        let arena_segments = segments()?;
        let edge_segments = segments()?;
        let mut hot = || -> Result<Vec<Vec<u8>>, CheckpointError> {
            let count = self.u32("hot record count")? as usize;
            (0..count).map(|_| self.bytes("hot record")).collect()
        };
        let arena_hot = hot()?;
        let edge_hot = hot()?;
        let n = usize::try_from(states)
            .map_err(|_| CheckpointError::Corrupt {
                detail: format!("spill state count {states} exceeds the address space"),
            })?;
        let sealed: u64 = arena_segments.iter().map(|s| s.records).sum();
        if sealed + arena_hot.len() as u64 != states {
            return Self::corrupt(format!(
                "spill manifest claims {states} states but references {} ({sealed} sealed + {} hot)",
                sealed + arena_hot.len() as u64,
                arena_hot.len()
            ));
        }
        let init = self.ids("initial state id", n)?;
        let frontier = self.ids("frontier id", n)?;
        let reduction = self.reduction()?;
        if !self.r.is_empty() {
            return Self::corrupt(format!(
                "{} trailing byte(s) after the snapshot body",
                self.r.remaining()
            ));
        }
        Ok(Snapshot {
            fp_bits,
            mode,
            reduced,
            system_hash,
            seq,
            states: Vec::new(),
            init,
            edges: Vec::new(),
            parents: Vec::new(),
            frontier,
            reduction,
            spill: Some(SpillManifest {
                dir,
                states,
                transitions,
                arena_segments,
                arena_hot,
                edge_segments,
                edge_hot,
            }),
        })
    }
}

/// Captures a snapshot from a (possibly partial) exploration whose
/// only incomplete states are the `frontier` ones: their (possibly
/// partial) edge lists are cleared so they fully re-expand on resume.
/// `keep` truncates the arena to a prefix — the reduced engines roll
/// back to the last complete BFS level boundary (every kept edge then
/// points inside the prefix); unreduced captures pass the full length.
#[allow(clippy::too_many_arguments)]
pub(crate) fn capture(
    states: &[State],
    init: &[usize],
    edges: &[Vec<Edge>],
    parents: &[Option<(usize, usize)>],
    keep: usize,
    frontier: &[usize],
    mode: VisitedMode,
    reduced: bool,
    system_hash: u64,
    fp_bits: u32,
    seq: u64,
    reduction: Option<ReductionStats>,
) -> Snapshot {
    let mut is_frontier = vec![false; keep];
    for &f in frontier {
        is_frontier[f] = true;
    }
    let edges = (0..keep)
        .map(|i| {
            if is_frontier[i] {
                Vec::new()
            } else {
                edges[i].clone()
            }
        })
        .collect();
    let mut frontier = frontier.to_vec();
    frontier.sort_unstable();
    frontier.dedup();
    Snapshot {
        fp_bits,
        mode,
        reduced,
        system_hash,
        seq,
        states: states[..keep].to_vec(),
        init: init.to_vec(),
        edges,
        parents: parents[..keep].to_vec(),
        frontier,
        reduction,
        spill: None,
    }
}

/// One arena record in the spill store: `[tag u8][parent u32, with
/// `u32::MAX` for "initial"][action u32][fingerprint u64][state
/// payload]`. Tag 0 carries the state in the general [`codec`]
/// encoding; tag 1 carries the fixed-width packed form (only written
/// when a [`PackedLayout`] compiled and the state packs). The
/// fingerprint is stored rather than recomputed so spilled parents
/// can be re-expanded without rehashing, and so the visited set can
/// be rebuilt from the arena alone.
pub(crate) struct ArenaRecord {
    pub(crate) parent: Option<(usize, usize)>,
    pub(crate) fp: u64,
    pub(crate) state: State,
}

pub(crate) fn encode_arena_record(
    state: &State,
    fp: u64,
    parent: Option<(usize, usize)>,
    layout: Option<&PackedLayout>,
    scratch: &mut Vec<u8>,
    out: &mut Vec<u8>,
) {
    let (parent_word, action_word) = match parent {
        Some((p, a)) => (p as u32, a as u32),
        None => (u32::MAX, 0),
    };
    let packed = layout.is_some_and(|l| l.pack_into(state.values(), scratch));
    out.clear();
    out.push(u8::from(packed));
    out.extend_from_slice(&parent_word.to_le_bytes());
    out.extend_from_slice(&action_word.to_le_bytes());
    out.extend_from_slice(&fp.to_le_bytes());
    if packed {
        out.extend_from_slice(scratch);
    } else {
        codec::encode_state(state, out);
    }
}

pub(crate) fn decode_arena_record(
    bytes: &[u8],
    layout: Option<&PackedLayout>,
) -> Result<ArenaRecord, CheckpointError> {
    let corrupt = |detail: String| CheckpointError::Corrupt { detail };
    let mut r = Reader::new(bytes);
    let tag = r.u8("arena record tag").map_err(|e| corrupt(e.to_string()))?;
    let parent_word = r
        .u32("arena record parent")
        .map_err(|e| corrupt(e.to_string()))?;
    let action = r
        .u32("arena record action")
        .map_err(|e| corrupt(e.to_string()))?;
    let fp = r
        .u64("arena record fingerprint")
        .map_err(|e| corrupt(e.to_string()))?;
    let state = match tag {
        0 => {
            let state = codec::decode_state(&mut r).map_err(|e| corrupt(e.to_string()))?;
            if !r.is_empty() {
                return Err(corrupt(format!(
                    "{} trailing byte(s) after an arena record",
                    r.remaining()
                )));
            }
            state
        }
        1 => {
            let layout = layout.ok_or_else(|| {
                corrupt("packed arena record but no layout compiles for this system".into())
            })?;
            let payload = &bytes[17..];
            if payload.len() != layout.stride() {
                return Err(corrupt(format!(
                    "packed arena record payload is {} byte(s), layout stride is {}",
                    payload.len(),
                    layout.stride()
                )));
            }
            layout.unpack(payload)
        }
        t => return Err(corrupt(format!("unknown arena record tag {t}"))),
    };
    let parent = if parent_word == u32::MAX {
        None
    } else {
        Some((parent_word as usize, action as usize))
    };
    Ok(ArenaRecord { parent, fp, state })
}

/// One edge record in the spill store: `[id u32][k u32][(action u32,
/// target u32) × k]`. A record is appended exactly once per state,
/// when its expansion completes — frontier states have no record,
/// which is the same invariant [`capture`] enforces by clearing
/// frontier edge lists.
pub(crate) fn encode_edge_record(id: usize, edges: &[Edge], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&(id as u32).to_le_bytes());
    out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
    for e in edges {
        out.extend_from_slice(&(e.action as u32).to_le_bytes());
        out.extend_from_slice(&(e.target as u32).to_le_bytes());
    }
}

pub(crate) fn decode_edge_record(
    bytes: &[u8],
    bound: usize,
) -> Result<(usize, Vec<Edge>), CheckpointError> {
    let corrupt = |detail: String| CheckpointError::Corrupt { detail };
    let mut r = Reader::new(bytes);
    let id = r.u32("edge record id").map_err(|e| corrupt(e.to_string()))? as usize;
    if id >= bound {
        return Err(corrupt(format!("edge record id {id} out of range (< {bound})")));
    }
    let k = r
        .u32("edge record count")
        .map_err(|e| corrupt(e.to_string()))? as usize;
    let mut edges = Vec::with_capacity(k.min(1 << 20));
    for _ in 0..k {
        let action = r.u32("edge action").map_err(|e| corrupt(e.to_string()))? as usize;
        let target = r.u32("edge target").map_err(|e| corrupt(e.to_string()))? as usize;
        if target >= bound {
            return Err(corrupt(format!(
                "edge target {target} out of range (< {bound})"
            )));
        }
        edges.push(Edge { action, target });
    }
    if !r.is_empty() {
        return Err(corrupt(format!(
            "{} trailing byte(s) after an edge record",
            r.remaining()
        )));
    }
    Ok((id, edges))
}

/// The engines' checkpoint driver: counts expansions against the
/// cadence, stamps sequence numbers, writes snapshots, and emits
/// [`Event::Checkpoint`]. A write failure is reported once on stderr
/// and disables further periodic writes — checkpointing is a
/// best-effort safety net, never a reason to abort a healthy run.
pub(crate) struct Checkpointer {
    spec: Option<CheckpointSpec>,
    seq: u64,
    since: u64,
    failed: bool,
}

impl Checkpointer {
    pub(crate) fn new(spec: Option<CheckpointSpec>) -> Checkpointer {
        Checkpointer {
            spec,
            seq: 0,
            since: 0,
            failed: false,
        }
    }

    /// Whether checkpointing is configured and still healthy.
    pub(crate) fn active(&self) -> bool {
        self.spec.is_some() && !self.failed
    }

    /// Records `n` more expansions; true when a periodic snapshot is
    /// due (the counter resets on the next [`Checkpointer::write`]).
    pub(crate) fn due(&mut self, n: u64) -> bool {
        match &self.spec {
            Some(spec) if !self.failed => {
                self.since += n;
                self.since >= spec.cadence
            }
            _ => false,
        }
    }

    /// Writes `snap` to the configured path (stamping the next
    /// sequence number) and emits [`Event::Checkpoint`]. Returns the
    /// resume token, or `None` if checkpointing is off or has failed.
    pub(crate) fn write(
        &mut self,
        mut snap: Snapshot,
        recorder: &RecorderHandle,
    ) -> Option<ResumeToken> {
        let spec = self.spec.as_ref()?;
        if self.failed {
            return None;
        }
        self.seq += 1;
        self.since = 0;
        snap.seq = self.seq;
        if let Err(e) = snap.save(&spec.path) {
            eprintln!("opentla-check: checkpointing disabled: {e}");
            self.failed = true;
            return None;
        }
        if recorder.enabled() {
            recorder.record(&Event::Checkpoint {
                seq: self.seq,
                states: snap.states_used() as u64,
                transitions: snap.transitions_used() as u64,
                frontier: snap.frontier_len() as u64,
            });
        }
        Some(ResumeToken {
            path: spec.path.clone(),
            seq: self.seq,
        })
    }
}

const LIVE_MAGIC: &[u8; 8] = b"OTLALIVE";

/// Liveness snapshot wire-format version accepted by this build.
pub const LIVE_SNAPSHOT_VERSION: u32 = 1;

/// The resumable core of an interrupted liveness check: which
/// components of the property-restricted graph have already been
/// analyzed and *cleared* (no fairness-satisfiable violation entered
/// through them).
///
/// Unlike an exploration [`Snapshot`], a liveness snapshot stores no
/// states — the state graph is the caller's input, and the fairness
/// tables plus the SCC decomposition are deterministic functions of it,
/// so a resume re-derives them (without re-charging the meter; the
/// snapshot banks the transitions the original run paid) and skips the
/// cleared components. The header therefore pins the graph's
/// dimensions and a hash of the *target's* restriction tables: a
/// snapshot taken while checking `◇P` must not skip components of a
/// `□◇P` run.
///
/// Same file discipline as [`Snapshot`]: magic (`b"OTLALIVE"`), body,
/// FNV-1a checksum; atomic temp-file-and-rename writes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiveSnapshot {
    /// Structural hash of the checked system.
    pub(crate) system_hash: u64,
    /// State count of the graph the check ran over.
    pub(crate) graph_states: u64,
    /// Transition count of that graph.
    pub(crate) graph_transitions: u64,
    /// Hash of the target's violation-restriction tables.
    pub(crate) target_hash: u64,
    /// Sequence number of this snapshot within its run.
    pub(crate) seq: u64,
    /// Transitions banked in the snapshot (what the resumed meter is
    /// pre-charged with).
    pub(crate) transitions_used: u64,
    /// Total component count of the restricted graph's decomposition.
    pub(crate) components: u64,
    /// Indices (in Tarjan completion order) of cleared components,
    /// ascending.
    pub(crate) cleared: Vec<u64>,
}

impl LiveSnapshot {
    /// Sequence number of this snapshot within its run.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Transitions banked in the snapshot.
    pub fn transitions_used(&self) -> u64 {
        self.transitions_used
    }

    /// Total component count of the restricted graph's decomposition.
    pub fn components(&self) -> u64 {
        self.components
    }

    /// Indices of already-cleared components, ascending.
    pub fn cleared(&self) -> &[u64] {
        &self.cleared
    }

    /// Refuses to resume against a different system or graph.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] naming the first disagreeing
    /// field.
    pub(crate) fn validate(
        &self,
        system: &System,
        graph: &crate::StateGraph,
    ) -> Result<(), CheckpointError> {
        let mismatch = |field, snapshot: String, requested: String| {
            Err(CheckpointError::Mismatch {
                field,
                snapshot,
                requested,
            })
        };
        let requested_hash = system_hash(system);
        if self.system_hash != requested_hash {
            return mismatch(
                "system",
                format!("{:#018x}", self.system_hash),
                format!("{requested_hash:#018x}"),
            );
        }
        if self.graph_states != graph.len() as u64 {
            return mismatch(
                "graph state count",
                self.graph_states.to_string(),
                graph.len().to_string(),
            );
        }
        let transitions = graph.stats().transitions as u64;
        if self.graph_transitions != transitions {
            return mismatch(
                "graph transition count",
                self.graph_transitions.to_string(),
                transitions.to_string(),
            );
        }
        Ok(())
    }

    /// Refuses to resume a run over a different liveness target.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] on disagreement.
    pub(crate) fn validate_target(&self, requested: u64) -> Result<(), CheckpointError> {
        if self.target_hash != requested {
            return Err(CheckpointError::Mismatch {
                field: "liveness target",
                snapshot: format!("{:#018x}", self.target_hash),
                requested: format!("{requested:#018x}"),
            });
        }
        Ok(())
    }

    /// Refuses to resume when the freshly-derived decomposition has a
    /// different component count than the snapshot was taken under
    /// (which would mean the graph or target changed despite matching
    /// headers — defense in depth).
    ///
    /// A snapshot with zero components and no cleared entries was taken
    /// before the decomposition existed (the run exhausted mid table
    /// construction); it constrains nothing, so any derived count is
    /// compatible.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] on disagreement.
    pub(crate) fn validate_components(&self, derived: u64) -> Result<(), CheckpointError> {
        if self.components == 0 && self.cleared.is_empty() {
            return Ok(());
        }
        if self.components != derived {
            return Err(CheckpointError::Mismatch {
                field: "component count",
                snapshot: self.components.to_string(),
                requested: derived.to_string(),
            });
        }
        Ok(())
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&LIVE_SNAPSHOT_VERSION.to_le_bytes());
        for word in [
            self.system_hash,
            self.graph_states,
            self.graph_transitions,
            self.target_hash,
            self.seq,
            self.transitions_used,
            self.components,
        ] {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.extend_from_slice(&(self.cleared.len() as u32).to_le_bytes());
        for &c in &self.cleared {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    fn decode_body(body: &[u8]) -> Result<LiveSnapshot, CheckpointError> {
        let corrupt = |detail: String| CheckpointError::Corrupt { detail };
        let mut r = Reader::new(body);
        let version = r.u32("version").map_err(|e| corrupt(e.to_string()))?;
        if version != LIVE_SNAPSHOT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let mut word = |ctx: &'static str| r.u64(ctx).map_err(|e| corrupt(e.to_string()));
        let system_hash = word("system hash")?;
        let graph_states = word("graph state count")?;
        let graph_transitions = word("graph transition count")?;
        let target_hash = word("target hash")?;
        let seq = word("sequence number")?;
        let transitions_used = word("banked transitions")?;
        let components = word("component count")?;
        let n = r
            .u32("cleared count")
            .map_err(|e| corrupt(e.to_string()))? as usize;
        if n as u64 > components {
            return Err(corrupt(format!(
                "cleared count {n} exceeds component count {components}"
            )));
        }
        let mut cleared = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let c = r
                .u64("cleared component")
                .map_err(|e| corrupt(e.to_string()))?;
            if c >= components {
                return Err(corrupt(format!(
                    "cleared component {c} out of range (< {components})"
                )));
            }
            if cleared.last().is_some_and(|&last| last >= c) {
                return Err(corrupt(format!(
                    "cleared components not strictly ascending at {c}"
                )));
            }
            cleared.push(c);
        }
        if !r.is_empty() {
            return Err(corrupt(format!(
                "{} trailing byte(s) after the liveness snapshot body",
                r.remaining()
            )));
        }
        Ok(LiveSnapshot {
            system_hash,
            graph_states,
            graph_transitions,
            target_hash,
            seq,
            transitions_used,
            components,
            cleared,
        })
    }

    /// Writes the snapshot to `path` atomically (same temp-and-rename
    /// discipline as [`Snapshot::save`]).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the filesystem refuses.
    pub(crate) fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let body = self.encode_body();
        let mut file = Vec::with_capacity(body.len() + 16);
        file.extend_from_slice(LIVE_MAGIC);
        file.extend_from_slice(&body);
        file.extend_from_slice(&fnv1a(&body).to_le_bytes());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &file).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
    }

    /// Loads and verifies a liveness snapshot: magic, format version,
    /// checksum, and structural bounds. Corrupt or truncated files
    /// yield a typed error, never a panic.
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] except `Mismatch` (configuration
    /// validation is [`LiveSnapshot::validate`]'s job).
    pub fn load(path: &Path) -> Result<LiveSnapshot, CheckpointError> {
        let file = std::fs::read(path).map_err(|e| io_err(path, e))?;
        if file.len() < LIVE_MAGIC.len() + 8 || &file[..LIVE_MAGIC.len()] != LIVE_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let (body, tail) = file[LIVE_MAGIC.len()..].split_at(file.len() - LIVE_MAGIC.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte checksum tail"));
        if fnv1a(body) != stored {
            return Err(CheckpointError::ChecksumMismatch);
        }
        LiveSnapshot::decode_body(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::Value;

    fn sample() -> Snapshot {
        Snapshot {
            fp_bits: 64,
            mode: VisitedMode::Fingerprint,
            reduced: true,
            system_hash: 0xdead_beef_cafe_f00d,
            seq: 7,
            states: vec![
                State::new(vec![Value::Int(0), Value::Bool(false)]),
                State::new(vec![Value::Int(1), Value::Bool(false)]),
                State::new(vec![Value::Int(1), Value::Bool(true)]),
            ],
            init: vec![0],
            edges: vec![
                vec![
                    Edge { action: 0, target: 1 },
                    Edge { action: 1, target: 2 },
                ],
                Vec::new(),
                Vec::new(),
            ],
            parents: vec![None, Some((0, 0)), Some((0, 1))],
            frontier: vec![1, 2],
            reduction: Some(ReductionStats {
                ample_states: 1,
                full_states: 2,
                skipped_transitions: 3,
                canon_hits: 4,
            }),
            spill: None,
        }
    }

    fn assert_snapshots_equal(a: &Snapshot, b: &Snapshot) {
        assert_eq!(a.fp_bits, b.fp_bits);
        assert_eq!(a.mode, b.mode);
        assert_eq!(a.reduced, b.reduced);
        assert_eq!(a.system_hash, b.system_hash);
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.states, b.states);
        assert_eq!(a.init, b.init);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.parents, b.parents);
        assert_eq!(a.frontier, b.frontier);
        assert_eq!(a.reduction, b.reduction);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("opentla_ckpt_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.snap");
        let snap = sample();
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_snapshots_equal(&snap, &back);
        assert_eq!(back.states_used(), 3);
        assert_eq!(back.transitions_used(), 2);
        assert_eq!(back.frontier_len(), 2);
        // No temp file left behind.
        assert!(!dir.join("round_trip.snap.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        let dir = std::env::temp_dir().join("opentla_ckpt_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.snap");
        sample().save(&path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Truncation at every prefix length: typed error, no panic.
        for cut in [0, 4, 8, 15, pristine.len() / 2, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            let err = Snapshot::load(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::BadMagic | CheckpointError::ChecksumMismatch
                ),
                "cut at {cut}: {err}"
            );
        }
        // A flipped bit anywhere in the body trips the checksum.
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(
            Snapshot::load(&path).unwrap_err(),
            CheckpointError::ChecksumMismatch
        );
        // Wrong magic.
        let mut bad = pristine.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap_err(), CheckpointError::BadMagic);
        // Unsupported version (re-checksummed, so it parses that far).
        let mut versioned = pristine.clone();
        versioned[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_end = versioned.len() - 8;
        let sum = fnv1a(&versioned[8..body_end]);
        versioned[body_end..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &versioned).unwrap();
        assert_eq!(
            Snapshot::load(&path).unwrap_err(),
            CheckpointError::UnsupportedVersion { found: 99 }
        );
        // Missing file is an Io error.
        assert!(matches!(
            Snapshot::load(&dir.join("no_such.snap")).unwrap_err(),
            CheckpointError::Io { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn errors_render_usefully() {
        let e = CheckpointError::Mismatch {
            field: "system",
            snapshot: "0xaaaa".into(),
            requested: "0xbbbb".into(),
        };
        let text = e.to_string();
        assert!(text.contains("system") && text.contains("refusing"), "{text}");
        assert!(CheckpointError::ChecksumMismatch.to_string().contains("checksum"));
        assert!(CheckpointError::UnsupportedVersion { found: 3 }
            .to_string()
            .contains('3'));
    }

    fn live_sample() -> LiveSnapshot {
        LiveSnapshot {
            system_hash: 0x1234_5678_9abc_def0,
            graph_states: 1000,
            graph_transitions: 2500,
            target_hash: 0x0f0f_f0f0_1234_4321,
            seq: 3,
            transitions_used: 777,
            components: 42,
            cleared: vec![0, 2, 5, 41],
        }
    }

    #[test]
    fn live_snapshot_round_trip() {
        let dir = std::env::temp_dir().join("opentla_live_ckpt_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live_rt.snap");
        let snap = live_sample();
        snap.save(&path).unwrap();
        let back = LiveSnapshot::load(&path).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.seq(), 3);
        assert_eq!(back.transitions_used(), 777);
        assert_eq!(back.components(), 42);
        assert_eq!(back.cleared(), &[0, 2, 5, 41]);
        assert!(!dir.join("live_rt.snap.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn live_snapshot_rejects_corruption_and_mismatch() {
        let dir = std::env::temp_dir().join("opentla_live_ckpt_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live_bad.snap");
        live_sample().save(&path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // An exploration snapshot is not a liveness snapshot: the magic
        // differs, so cross-loading is refused outright.
        assert_eq!(
            Snapshot::load(&path).unwrap_err(),
            CheckpointError::BadMagic
        );

        for cut in [0, 4, 8, pristine.len() / 2, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            let err = LiveSnapshot::load(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::BadMagic | CheckpointError::ChecksumMismatch
                ),
                "cut at {cut}: {err}"
            );
        }
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(
            LiveSnapshot::load(&path).unwrap_err(),
            CheckpointError::ChecksumMismatch
        );

        // Unsorted cleared list: checksum fine, structure refused.
        let mut bad = live_sample();
        bad.cleared = vec![5, 2];
        bad.save(&path).unwrap();
        assert!(matches!(
            LiveSnapshot::load(&path).unwrap_err(),
            CheckpointError::Corrupt { .. }
        ));
        // Cleared index out of component range.
        let mut bad = live_sample();
        bad.cleared = vec![42];
        bad.save(&path).unwrap();
        assert!(matches!(
            LiveSnapshot::load(&path).unwrap_err(),
            CheckpointError::Corrupt { .. }
        ));

        // Target/component validation is typed, never a panic.
        let snap = live_sample();
        assert!(snap.validate_target(snap.target_hash).is_ok());
        assert!(matches!(
            snap.validate_target(snap.target_hash ^ 1).unwrap_err(),
            CheckpointError::Mismatch { field: "liveness target", .. }
        ));
        assert!(snap.validate_components(42).is_ok());
        assert!(matches!(
            snap.validate_components(41).unwrap_err(),
            CheckpointError::Mismatch { field: "component count", .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
