//! Error type for the model checker.

use opentla_kernel::{EvalError, KernelError, Value, VarId};
use opentla_semantics::SemanticsError;
use std::fmt;

/// An engine error raised while checking (as opposed to a property
/// violation, which is reported as a
/// [`Verdict::Violated`](crate::Verdict::Violated)).
#[derive(Clone, Debug)]
pub enum CheckError {
    /// Expression evaluation failed — usually a type error in the
    /// specification.
    Eval(EvalError),
    /// A syntactic transformation failed.
    Kernel(KernelError),
    /// The semantics engine failed.
    Semantics(SemanticsError),
    /// An action produced a value outside the variable's domain.
    OutOfDomain {
        /// The action that produced it.
        action: String,
        /// The variable assigned.
        var: VarId,
        /// The offending value.
        value: Value,
    },
    /// Exploration exceeded the configured state limit.
    TooManyStates {
        /// The configured limit.
        limit: usize,
    },
    /// The abstract specification handed to a simulation or liveness
    /// check is not in the supported (safety-canonical) shape.
    NotCanonical {
        /// What was being checked.
        context: &'static str,
    },
    /// An initial-state enumeration covered no states.
    NoInitialStates,
    /// A checkpoint snapshot could not be written, read, or trusted
    /// (corrupt, truncated, wrong version, or from a different
    /// system/configuration).
    Checkpoint(crate::checkpoint::CheckpointError),
    /// A structural precondition of an API was violated.
    Precondition {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Eval(e) => write!(f, "evaluation error: {e}"),
            CheckError::Kernel(e) => write!(f, "kernel error: {e}"),
            CheckError::Semantics(e) => write!(f, "semantics error: {e}"),
            CheckError::OutOfDomain { action, var, value } => write!(
                f,
                "action {action} assigned out-of-domain value {value} to variable #{}",
                var.index()
            ),
            CheckError::TooManyStates { limit } => {
                write!(f, "exploration exceeded the state limit of {limit}")
            }
            CheckError::NotCanonical { context } => write!(
                f,
                "{context} requires a safety-canonical specification"
            ),
            CheckError::NoInitialStates => write!(f, "the system has no initial states"),
            CheckError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            CheckError::Precondition { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckError::Eval(e) => Some(e),
            CheckError::Kernel(e) => Some(e),
            CheckError::Semantics(e) => Some(e),
            CheckError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for CheckError {
    fn from(e: EvalError) -> Self {
        CheckError::Eval(e)
    }
}

impl From<KernelError> for CheckError {
    fn from(e: KernelError) -> Self {
        CheckError::Kernel(e)
    }
}

impl From<SemanticsError> for CheckError {
    fn from(e: SemanticsError) -> Self {
        CheckError::Semantics(e)
    }
}

impl From<crate::checkpoint::CheckpointError> for CheckError {
    fn from(e: crate::checkpoint::CheckpointError) -> Self {
        CheckError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CheckError::TooManyStates { limit: 10 };
        assert!(e.to_string().contains("10"));
        assert!(std::error::Error::source(&e).is_none());
        let e = CheckError::from(EvalError::EmptySeq { op: "Head" });
        assert!(std::error::Error::source(&e).is_some());
        let e = CheckError::NotCanonical { context: "simulation" };
        assert!(e.to_string().contains("simulation"));
    }
}
