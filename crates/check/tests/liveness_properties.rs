//! Property-based tests for the liveness engines over randomly
//! generated flip-systems carrying randomly sampled fairness sets:
//!
//! * the parallel engine's verdict and lasso equal the sequential
//!   engine's, for every sampled system × fairness set × target;
//! * the strong-fairness removal recursion (the Streett decomposition)
//!   terminates on arbitrary SF sets — the checks return, they don't
//!   spin or overflow;
//! * `LivenessRun.frontier_size` under exhaustion is exact pending
//!   work: deterministic across identical runs, engine-independent,
//!   bounded by the graph, and the run completes monotonically once
//!   the budget clears the true total — no `pending: 0` placeholders
//!   masquerading as progress.

use opentla_check::{
    check_liveness, check_liveness_governed_with, explore, Budget, ExhaustReason,
    ExploreOptions, GuardedAction, Init, LiveTarget, LivenessOptions, Outcome, System,
    SystemFairness, Verdict,
};
use opentla_kernel::{Domain, Expr, Fairness, Value, VarId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct ActionSpec {
    guard_var: usize,
    guard_val: i64,
    target_var: usize,
    update: UpdateKind,
}

#[derive(Clone, Debug)]
enum UpdateKind {
    Constant(i64),
    CopyOther,
    Toggle,
}

/// Which actions get a fairness requirement, and of which kind.
#[derive(Clone, Debug)]
struct FairSpec {
    action: usize,
    strong: bool,
}

#[derive(Clone, Debug)]
enum TargetSpec {
    Eventually(i64),
    AlwaysEventually(i64),
    LeadsTo(i64, i64),
    FairFirst { strong: bool },
}

fn arb_action_spec() -> impl Strategy<Value = ActionSpec> {
    (
        0..2usize,
        0..2i64,
        0..2usize,
        prop_oneof![
            (0..2i64).prop_map(UpdateKind::Constant),
            Just(UpdateKind::CopyOther),
            Just(UpdateKind::Toggle),
        ],
    )
        .prop_map(|(guard_var, guard_val, target_var, update)| ActionSpec {
            guard_var,
            guard_val,
            target_var,
            update,
        })
}

fn arb_fair_spec(actions: usize) -> impl Strategy<Value = FairSpec> {
    (0..actions, any::<bool>()).prop_map(|(action, strong)| FairSpec { action, strong })
}

fn arb_target() -> impl Strategy<Value = TargetSpec> {
    prop_oneof![
        (0..2i64).prop_map(TargetSpec::Eventually),
        (0..2i64).prop_map(TargetSpec::AlwaysEventually),
        (0..2i64, 0..2i64).prop_map(|(p, q)| TargetSpec::LeadsTo(p, q)),
        any::<bool>().prop_map(|strong| TargetSpec::FairFirst { strong }),
    ]
}

/// A two-bit flip-system from the sampled action specs, with the
/// sampled fairness requirements attached (subscript = the variables
/// the action writes).
fn build_system(specs: &[ActionSpec], fair: &[FairSpec]) -> System {
    let mut vars = opentla_kernel::Vars::new();
    let a = vars.declare("a", Domain::bits());
    let b = vars.declare("b", Domain::bits());
    let ids = [a, b];
    let actions: Vec<GuardedAction> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let target = ids[spec.target_var];
            let other = ids[1 - spec.target_var];
            let update = match spec.update {
                UpdateKind::Constant(v) => Expr::int(v),
                UpdateKind::CopyOther => Expr::var(other),
                UpdateKind::Toggle => Expr::int(1).sub(Expr::var(target)),
            };
            GuardedAction::new(
                format!("act{i}"),
                Expr::var(ids[spec.guard_var]).eq(Expr::int(spec.guard_val)),
                vec![(target, update)],
            )
        })
        .collect();
    let subs: Vec<Vec<VarId>> = actions
        .iter()
        .map(|ga| ga.touched().collect())
        .collect();
    let mut sys = System::new(
        vars,
        Init::new([(a, Value::Int(0)), (b, Value::Int(0))]),
        actions,
    );
    for f in fair {
        let i = f.action % specs.len();
        let req = if f.strong {
            SystemFairness::strong(vec![i], subs[i].clone())
        } else {
            SystemFairness::weak(vec![i], subs[i].clone())
        };
        sys = sys.with_fairness(req);
    }
    sys
}

fn build_target(sys: &System, spec: &TargetSpec) -> LiveTarget {
    let a = sys.vars().find("a").unwrap();
    match spec {
        TargetSpec::Eventually(v) => LiveTarget::Eventually(Expr::var(a).eq(Expr::int(*v))),
        TargetSpec::AlwaysEventually(v) => {
            LiveTarget::AlwaysEventually(Expr::var(a).eq(Expr::int(*v)))
        }
        TargetSpec::LeadsTo(p, q) => LiveTarget::LeadsTo(
            Expr::var(a).eq(Expr::int(*p)),
            Expr::var(a).eq(Expr::int(*q)),
        ),
        TargetSpec::FairFirst { strong } => {
            let frame = sys.frame();
            let ga = &sys.actions()[0];
            let expr = ga.action_expr(&frame);
            let sub: Vec<VarId> = ga.touched().collect();
            LiveTarget::fair(if *strong {
                Fairness::strong(expr, sub)
            } else {
                Fairness::weak(expr, sub)
            })
        }
    }
}

fn assert_same_verdict(seq: &Verdict, par: &Verdict) -> Result<(), TestCaseError> {
    match (seq, par) {
        (Verdict::Holds, Verdict::Holds) => Ok(()),
        (Verdict::Violated(a), Verdict::Violated(b)) => {
            prop_assert_eq!(a.reason(), b.reason());
            prop_assert_eq!(a.states(), b.states());
            prop_assert_eq!(a.actions(), b.actions());
            prop_assert_eq!(a.loop_start(), b.loop_start());
            Ok(())
        }
        _ => {
            prop_assert!(false, "verdicts diverge");
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel verdicts and lassos equal sequential ones on random
    /// systems with random fairness sets, for every target shape and
    /// 2/3 workers forced past the small-graph routing.
    #[test]
    fn parallel_equals_sequential(
        specs in proptest::collection::vec(arb_action_spec(), 1..4),
        fair in proptest::collection::vec(arb_fair_spec(3), 0..3),
        tspec in arb_target(),
    ) {
        let sys = build_system(&specs, &fair);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let target = build_target(&sys, &tspec);
        let seq = check_liveness(&sys, &graph, &target).unwrap();
        for workers in [2usize, 3] {
            let run = check_liveness_governed_with(
                &sys,
                &graph,
                &target,
                &Budget::default(),
                &LivenessOptions::default().threads(workers).small_graph_cutoff(0),
            )
            .unwrap();
            prop_assert!(run.outcome.is_complete());
            let par = run.verdict.expect("complete runs carry a verdict");
            assert_same_verdict(&seq, &par)?;
        }
    }

    /// The SF-removal recursion terminates on arbitrary strong-fairness
    /// sets: stacking SF requirements on every action still returns a
    /// verdict (and the engines still agree on it).
    #[test]
    fn sf_recursion_terminates(
        specs in proptest::collection::vec(arb_action_spec(), 1..4),
        extra_weak in any::<bool>(),
    ) {
        // All-SF fairness maximizes the Streett decomposition depth.
        let all_sf: Vec<FairSpec> = (0..specs.len())
            .map(|action| FairSpec { action, strong: true })
            .collect();
        let mut sys = build_system(&specs, &all_sf);
        if extra_weak {
            let sub: Vec<VarId> = sys.actions()[0].touched().collect();
            sys = sys.with_fairness(SystemFairness::weak(vec![0], sub));
        }
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let frame = sys.frame();
        let ga = &sys.actions()[specs.len() - 1];
        let target = LiveTarget::fair(Fairness::strong(
            ga.action_expr(&frame),
            ga.touched().collect(),
        ));
        let seq = check_liveness(&sys, &graph, &target).unwrap();
        let run = check_liveness_governed_with(
            &sys,
            &graph,
            &target,
            &Budget::default(),
            &LivenessOptions::default().threads(2).small_graph_cutoff(0),
        )
        .unwrap();
        prop_assert!(run.outcome.is_complete());
        assert_same_verdict(&seq, &run.verdict.expect("complete"))?;
    }

    /// `frontier_size` under exhaustion is exact pending work:
    /// deterministic across identical runs, bounded by the graph's
    /// state count, and gone the moment the budget clears the true
    /// charge total (completion is monotone in the budget).
    #[test]
    fn exhaustion_frontier_is_exact_and_monotone(
        specs in proptest::collection::vec(arb_action_spec(), 1..4),
        fair in proptest::collection::vec(arb_fair_spec(3), 0..2),
        tspec in arb_target(),
    ) {
        let sys = build_system(&specs, &fair);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let target = build_target(&sys, &tspec);
        let mut completed = false;
        for t in 1..512usize {
            let run_at = |t: usize| {
                check_liveness_governed_with(
                    &sys,
                    &graph,
                    &target,
                    &Budget::default().transitions(t),
                    &LivenessOptions::default(),
                )
                .unwrap()
            };
            let run = run_at(t);
            if run.outcome.is_complete() {
                completed = true;
                prop_assert!(run.verdict.is_some());
                break;
            }
            // Once a budget suffices, every larger budget must too.
            prop_assert!(!completed, "completion must be monotone in the budget");
            let frontier = match &run.outcome {
                Outcome::Exhausted {
                    reason: ExhaustReason::TransitionLimit { .. },
                    frontier_size,
                    ..
                } => *frontier_size,
                other => panic!("unexpected outcome: {other:?}"),
            };
            prop_assert!(
                frontier <= graph.len(),
                "pending work cannot exceed the phase's item count"
            );
            // Exactness ⇒ determinism: the same budget reports the
            // same pending count.
            let again = match &run_at(t).outcome {
                Outcome::Exhausted { frontier_size, .. } => *frontier_size,
                other => panic!("unexpected outcome: {other:?}"),
            };
            prop_assert_eq!(again, frontier);
        }
        prop_assert!(completed, "512 transitions must complete a 4-state check");
    }
}
