//! Differential tests for the parallel bounded-memory engine
//! ([`Engine::SpillWs`]): across scenarios × byte budgets × worker
//! counts × visited-set modes, its completed graphs — statistics,
//! canonical state order, initial ids, per-state edge lists, and
//! counterexample traces — must be byte-identical to both the
//! sequential spill engine's and the in-RAM sequential engine's.
//! Plus forced fingerprint collisions, interrupt/resume identity
//! (including resuming at a different worker count and on different
//! engines), and the never-silently-ignore-a-budget diagnostic.

use opentla_check::{
    check_invariant, explore_governed_with, explore_resumable, resume_exploration, Budget,
    CheckError, CountingRecorder, Engine, ExploreOptions, Outcome, RecorderHandle, Reduction,
    StateGraph, System, Verdict, VisitedMode, WorkerPanic,
};
use opentla_kernel::Expr;
use opentla_queue::{FairnessStyle, QueueChain};
use opentla_scenarios::{AlternatingBit, ArbiterFairness, Mutex, TokenRing};
use std::path::PathBuf;
use std::sync::Arc;

/// The small-scenario matrix: every budget × worker × mode combination
/// runs on these; the 54 358-state chain4 gets the acceptance
/// configurations only (the precedent the work-stealing identity suite
/// set).
fn systems() -> Vec<(&'static str, System)> {
    vec![
        (
            "abp",
            AlternatingBit::new(2).complete_system().expect("abp builds"),
        ),
        (
            "mutex",
            Mutex::with_clients(2, ArbiterFairness::Weak)
                .product()
                .expect("mutex builds"),
        ),
        (
            "ring",
            TokenRing::new(3).complete_system().expect("ring builds"),
        ),
        (
            "chain2",
            QueueChain::new(2, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain2 builds"),
        ),
        (
            "chain3",
            QueueChain::new(3, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain3 builds"),
        ),
    ]
}

fn chain4() -> System {
    QueueChain::new(4, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain4 builds")
}

fn assert_identical(label: &str, a: &StateGraph, b: &StateGraph) {
    assert_eq!(a.stats(), b.stats(), "{label}: stats diverge");
    assert_eq!(a.states(), b.states(), "{label}: state order diverges");
    assert_eq!(a.init(), b.init(), "{label}: initial ids diverge");
    for id in 0..a.len() {
        assert_eq!(a.edges(id), b.edges(id), "{label}: edges of {id} diverge");
    }
}

fn explore_seq(sys: &System, mode: VisitedMode, fp_bits: u32) -> StateGraph {
    let run = explore_governed_with(
        sys,
        &Budget::unlimited(),
        &ExploreOptions {
            mode,
            threads: Some(1),
            fp_bits,
            ..ExploreOptions::default()
        },
    )
    .expect("sequential run succeeds");
    assert!(matches!(run.outcome, Outcome::Complete));
    run.graph
}

fn spill_ws_opts(mode: VisitedMode, workers: usize, mem: Option<usize>) -> ExploreOptions {
    ExploreOptions {
        mode,
        threads: Some(workers),
        engine: Engine::SpillWs,
        mem_budget_bytes: mem,
        ..ExploreOptions::default()
    }
}

fn explore_spill_ws(sys: &System, opts: &ExploreOptions) -> StateGraph {
    let run = explore_governed_with(sys, &Budget::unlimited(), opts)
        .expect("parallel spill run succeeds");
    assert!(
        matches!(run.outcome, Outcome::Complete),
        "unbudgeted parallel spill run must complete"
    );
    run.graph
}

/// A unique throwaway snapshot path (tests run in parallel).
fn snap_path(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "opentla_spill_ws_{}_{tag}_{n}.snap",
        std::process::id()
    ))
}

fn remove_spill_artifacts(snap_path: &std::path::Path) {
    let _ = std::fs::remove_file(snap_path);
    let _ = std::fs::remove_dir_all(format!("{}.segs", snap_path.display()));
}

/// Count of sealed segment files with the given prefix in the segment
/// directory pinned next to a checkpoint path.
fn sealed_segments(snap_path: &std::path::Path, prefix: &str) -> usize {
    let dir = PathBuf::from(format!("{}.segs", snap_path.display()));
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| {
                    let n = e.file_name();
                    let n = n.to_string_lossy().into_owned();
                    n.starts_with(prefix) && n.ends_with(".seg")
                })
                .count()
        })
        .unwrap_or(0)
}

/// The acceptance matrix on the small scenarios: byte budgets tight
/// (256 KiB), loose (4 MiB), and the engine default, at 1/2/4 workers
/// in both visited modes, against the in-RAM sequential baseline —
/// and, where a budget is in force, against the sequential spill
/// engine too (which must itself match the baseline, closing the
/// three-way identity).
#[test]
fn spill_ws_matches_spill_and_sequential_across_matrix() {
    for (name, sys) in systems() {
        for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
            let seq = explore_seq(&sys, mode, 64);
            for mem in [Some(256 << 10), Some(4 << 20), None] {
                if let Some(bytes) = mem {
                    let spill = explore_governed_with(
                        &sys,
                        &Budget::unlimited(),
                        &ExploreOptions {
                            mode,
                            threads: Some(1),
                            engine: Engine::SpillBfs,
                            mem_budget_bytes: Some(bytes),
                            ..ExploreOptions::default()
                        },
                    )
                    .expect("sequential spill run succeeds");
                    assert!(matches!(spill.outcome, Outcome::Complete));
                    assert_identical(
                        &format!("{name}/{mode:?}/seq-spill@{bytes}"),
                        &seq,
                        &spill.graph,
                    );
                }
                for workers in [1usize, 2, 4] {
                    let label = format!("{name}/{mode:?}/mem={mem:?}/workers={workers}");
                    let par = explore_spill_ws(&sys, &spill_ws_opts(mode, workers, mem));
                    assert_identical(&label, &seq, &par);
                }
            }
        }
    }
}

/// An invariant violated exactly at the graph's last (deepest) state,
/// so the counterexample trace walks the parent chain end to end.
fn last_state_invariant(sys: &System, graph: &StateGraph) -> Expr {
    let target = graph.states().last().expect("graphs are non-empty");
    let mut here = Expr::bool(true);
    for (slot, v) in sys.vars().iter().enumerate() {
        here = here.and(Expr::var(v).eq(Expr::con(target.values()[slot].clone())));
    }
    here.not()
}

/// Verdict identity through the parent chains the parallel engine
/// reassembled from shared arena records: the same invariant violates
/// in both graphs with the same trace.
#[test]
fn spill_ws_counterexample_traces_match() {
    for sys in [
        TokenRing::new(3).complete_system().expect("ring builds"),
        QueueChain::new(2, 1, 2, FairnessStyle::Joint)
            .complete_system()
            .expect("chain2 builds"),
    ] {
        for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
            let label = format!("{mode:?}");
            let seq = explore_seq(&sys, mode, 64);
            let par = explore_spill_ws(&sys, &spill_ws_opts(mode, 4, Some(256 << 10)));
            let pred = last_state_invariant(&sys, &seq);
            let a = check_invariant(&sys, &seq, &pred).expect("seq invariant runs");
            let b = check_invariant(&sys, &par, &pred).expect("par invariant runs");
            match (&a, &b) {
                (Verdict::Violated(ca), Verdict::Violated(cb)) => {
                    assert_eq!(ca.reason(), cb.reason(), "{label}: reason diverges");
                    assert_eq!(ca.states(), cb.states(), "{label}: trace diverges");
                    assert_eq!(ca.actions(), cb.actions(), "{label}: actions diverge");
                }
                _ => panic!("{label}: last-state invariant must be violated in both"),
            }
        }
    }
}

/// The acceptance golden on the big benchmark: chain4 under a 256 KiB
/// budget at 4 workers reproduces 54358 / 164736 / 55 byte-identically
/// while the live run seals multiple shared arena segments (counted
/// via a checkpoint-pinned segment directory — the parallel engine's
/// stores use the `wsarena-` prefix).
#[test]
fn spill_ws_golden_chain4() {
    let sys = chain4();
    let seq = explore_seq(&sys, VisitedMode::Fingerprint, 64);
    let path = snap_path("golden");
    remove_spill_artifacts(&path);
    let run = explore_governed_with(
        &sys,
        &Budget::unlimited().with_checkpoint(&path, 1 << 30),
        &spill_ws_opts(VisitedMode::Fingerprint, 4, Some(256 << 10)),
    )
    .expect("parallel spill run succeeds");
    assert!(matches!(run.outcome, Outcome::Complete));
    let stats = run.graph.stats();
    assert_eq!(stats.states, 54358, "golden chain4 state count");
    assert_eq!(stats.transitions, 164736, "golden chain4 transition count");
    assert_eq!(stats.depth, 55, "golden chain4 depth");
    assert!(
        sealed_segments(&path, "wsarena-") >= 2,
        "the budget must force >= 2 sealed shared arena segments"
    );
    assert_identical("chain4/golden", &seq, &run.graph);

    // The loose-budget, 2-worker point of the acceptance sweep.
    let par2 = explore_spill_ws(&sys, &spill_ws_opts(VisitedMode::Fingerprint, 2, Some(4 << 20)));
    assert_identical("chain4/4MiB/2", &seq, &par2);
    remove_spill_artifacts(&path);
}

/// Narrow fingerprints (12 bits) force real collisions. Exact mode
/// must verify every candidate against its arena record and keep the
/// graph identical to the uncollided full-width one at *every* worker
/// count. Fingerprint mode under forced collisions is only
/// deterministic single-worker: first-insert-wins picks the class
/// representative, and with concurrent workers the winner — and
/// therefore the abstract graph itself — depends on arrival order (the
/// same caveat the in-RAM work-stealing engine carries, which is why
/// collision-sensitive runs use `Exact`).
#[test]
fn spill_ws_survives_forced_collisions() {
    for sys in [
        TokenRing::new(3).complete_system().expect("ring builds"),
        QueueChain::new(2, 1, 2, FairnessStyle::Joint)
            .complete_system()
            .expect("chain2 builds"),
    ] {
        // Exact mode: fp12 answers must equal full-width answers.
        let full = explore_seq(&sys, VisitedMode::Exact, 64);
        for workers in [1usize, 4] {
            let par = explore_spill_ws(
                &sys,
                &ExploreOptions {
                    fp_bits: 12,
                    ..spill_ws_opts(VisitedMode::Exact, workers, Some(32 << 10))
                },
            );
            assert_identical(&format!("exact-fp12/workers={workers}"), &full, &par);
        }
        // Fingerprint mode, single worker (BFS claim order): the same
        // deterministic conflation as the sequential engine's.
        let seq12 = explore_seq(&sys, VisitedMode::Fingerprint, 12);
        let par12 = explore_spill_ws(
            &sys,
            &ExploreOptions {
                fp_bits: 12,
                ..spill_ws_opts(VisitedMode::Fingerprint, 1, Some(32 << 10))
            },
        );
        assert_identical("fp12/workers=1", &seq12, &par12);
    }
}

/// Interrupt/resume identity: a 4-worker bounded run killed mid-spill
/// leaves a spill-format snapshot that resumes byte-identically — at a
/// *different* worker count on the same engine, on the sequential
/// spill engine, and (via the materializer) on the plain in-RAM
/// engine.
#[test]
fn spill_ws_interrupt_resume_identity() {
    let sys = QueueChain::new(2, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain2 builds");
    for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
        let label = format!("resume/{mode:?}");
        let reference = explore_seq(&sys, mode, 64);
        let total = reference.len();
        let opts4 = spill_ws_opts(mode, 4, Some(8 << 10));
        let path = snap_path("resume");
        remove_spill_artifacts(&path);

        let interrupted = explore_resumable(
            &sys,
            &Budget::default()
                .states((total * 2 / 5).max(2))
                .with_checkpoint(&path, 64),
            &opts4,
        )
        .expect("interrupted run still succeeds");
        assert!(
            interrupted.outcome.resume_token().is_some(),
            "{label}: exhausted run must leave a resume token"
        );
        assert!(
            sealed_segments(&path, "wsarena-") >= 1,
            "{label}: the kill must land after the first sealed live segment"
        );
        let head = std::fs::read(&path).expect("snapshot readable");
        assert_eq!(&head[..8], b"OTLASNAP", "{label}: snapshot magic");
        assert_eq!(
            u32::from_le_bytes(head[8..12].try_into().unwrap()),
            opentla_check::SNAPSHOT_VERSION_SPILL,
            "{label}: exhaustion snapshot must be the spill format"
        );

        // Resume with 2 workers: the worker count is not pinned.
        let recorder = Arc::new(CountingRecorder::new());
        let resumed = explore_resumable(
            &sys,
            &Budget::unlimited()
                .with_checkpoint(&path, 1 << 20)
                .with_recorder(RecorderHandle::new(recorder.clone())),
            &spill_ws_opts(mode, 2, Some(8 << 10)),
        )
        .expect("resumed run succeeds");
        assert!(matches!(resumed.outcome, Outcome::Complete));
        assert_eq!(recorder.resumes(), 1, "{label}: resume event must fire");
        assert_identical(&label, &reference, &resumed.graph);

        // Cross-engine, from the in-memory snapshot: the sequential
        // spill engine and the plain in-RAM engine both pick it up.
        let snap = interrupted.snapshot.as_deref().expect("in-memory snapshot");
        let seq_spill = resume_exploration(
            &sys,
            &Budget::unlimited(),
            &ExploreOptions {
                mode,
                threads: Some(1),
                engine: Engine::SpillBfs,
                mem_budget_bytes: Some(8 << 10),
                ..ExploreOptions::default()
            },
            snap,
        )
        .expect("sequential spill resume succeeds");
        assert_identical(&format!("{label}/seq-spill"), &reference, &seq_spill.graph);
        let in_ram = resume_exploration(
            &sys,
            &Budget::unlimited(),
            &ExploreOptions {
                mode,
                threads: Some(1),
                ..ExploreOptions::default()
            },
            snap,
        )
        .expect("in-RAM resume succeeds");
        assert_identical(&format!("{label}/in-ram"), &reference, &in_ram.graph);

        remove_spill_artifacts(&path);
    }
}

/// And the reverse hand-off: a snapshot the *sequential* spill engine
/// wrote resumes on the parallel engine at 4 workers, byte-identically.
#[test]
fn spill_ws_resumes_a_sequential_spill_snapshot() {
    let sys = QueueChain::new(2, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain2 builds");
    let reference = explore_seq(&sys, VisitedMode::Fingerprint, 64);
    let total = reference.len();
    let path = snap_path("handoff");
    remove_spill_artifacts(&path);
    let seq_opts = ExploreOptions {
        threads: Some(1),
        mem_budget_bytes: Some(8 << 10),
        ..ExploreOptions::default()
    };
    let interrupted = explore_resumable(
        &sys,
        &Budget::default()
            .states((total / 2).max(2))
            .with_checkpoint(&path, 64),
        &seq_opts,
    )
    .expect("interrupted sequential spill run succeeds");
    assert!(interrupted.outcome.resume_token().is_some());
    let resumed = explore_resumable(
        &sys,
        &Budget::unlimited().with_checkpoint(&path, 1 << 20),
        &spill_ws_opts(VisitedMode::Fingerprint, 4, Some(8 << 10)),
    )
    .expect("parallel resume succeeds");
    assert!(matches!(resumed.outcome, Outcome::Complete));
    assert_identical("handoff", &reference, &resumed.graph);
    remove_spill_artifacts(&path);
}

/// The never-silently-ignore diagnostic: configurations pinned to the
/// in-RAM level-synchronous engine (reduction-active, panic-injection)
/// refuse an explicit `mem_budget_bytes` with a typed
/// [`CheckError::Precondition`], and the refusal is observable — a
/// `budget_ignored` event carrying the byte count fires first.
#[test]
fn unhonorable_explicit_budget_is_refused_not_ignored() {
    let ring = TokenRing::new(3);
    let sys = ring.complete_system().expect("ring builds");
    let por = Reduction::none().with_por(ring.mutual_exclusion().unprimed_vars());
    let cases: Vec<(&str, ExploreOptions)> = vec![
        (
            "reduction",
            ExploreOptions {
                threads: Some(2),
                reduction: por,
                mem_budget_bytes: Some(1 << 20),
                ..ExploreOptions::default()
            },
        ),
        (
            "panic-injection",
            ExploreOptions {
                threads: Some(2),
                worker_panic: Some(WorkerPanic { after_claims: 5 }),
                mem_budget_bytes: Some(1 << 20),
                ..ExploreOptions::default()
            },
        ),
    ];
    for (what, opts) in cases {
        let recorder = Arc::new(CountingRecorder::new());
        let err = explore_governed_with(
            &sys,
            &Budget::unlimited().with_recorder(RecorderHandle::new(recorder.clone())),
            &opts,
        )
        .expect_err("an unhonorable explicit budget must be refused");
        match err {
            CheckError::Precondition { message } => {
                assert!(
                    message.contains("cannot be honored"),
                    "{what}: diagnostic names the conflict, got: {message}"
                );
            }
            other => panic!("{what}: expected Precondition, got {other:?}"),
        }
        assert_eq!(
            recorder.budget_ignored_events(),
            1,
            "{what}: the refusal must be observable as a budget_ignored event"
        );
    }
}
