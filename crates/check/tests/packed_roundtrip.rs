//! Property-based tests for the packed state layout: pack/unpack
//! round-trips, packed-vs-tree fingerprint agreement, and
//! work-stealing/sequential graph identity over randomly generated
//! bounded systems.

use opentla_check::{
    explore_governed_with, Budget, Engine, ExploreOptions, GuardedAction, Init,
    StateGraph, System, VisitedMode,
};
use opentla_kernel::{Domain, Expr, PackedLayout, State, Value, Vars};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random domains and states (no exploration): the layout must encode
// any well-domained value vector, through both the integer-range and
// the table codec.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum DomainSpec {
    /// `lo..=lo+width` — exercises the `IntRange` codec (and, at
    /// width 0, the zero-bit singleton slot).
    IntRange { lo: i64, width: i64 },
    /// `{FALSE, TRUE}` — a table codec over non-integer values.
    Booleans,
    /// Bounded sequences over `{0, 1}` — a table codec over structured
    /// values with a non-power-of-two cardinality.
    Seqs { max_len: usize },
}

impl DomainSpec {
    fn domain(&self) -> Domain {
        match *self {
            DomainSpec::IntRange { lo, width } => Domain::int_range(lo, lo + width),
            DomainSpec::Booleans => Domain::booleans(),
            DomainSpec::Seqs { max_len } => {
                Domain::seqs_up_to(&Domain::bits(), max_len)
            }
        }
    }
}

fn arb_domain_spec() -> impl Strategy<Value = DomainSpec> {
    prop_oneof![
        (-4..4i64, 0..9i64)
            .prop_map(|(lo, width)| DomainSpec::IntRange { lo, width }),
        Just(DomainSpec::Booleans),
        (1..3usize).prop_map(|max_len| DomainSpec::Seqs { max_len }),
    ]
}

/// A random vector of domains plus, for each, a picker in `0..1000`
/// reduced mod the domain size to select a value.
fn arb_state_shape() -> impl Strategy<Value = (Vec<DomainSpec>, Vec<usize>)> {
    proptest::collection::vec((arb_domain_spec(), 0..1000usize), 1..5)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packing any in-domain value vector and unpacking it restores
    /// the vector exactly, and the fingerprint computed over the
    /// packed bytes equals the tree state's fingerprint bit for bit.
    #[test]
    fn pack_unpack_roundtrip((specs, picks) in arb_state_shape()) {
        let mut vars = Vars::new();
        for (i, spec) in specs.iter().enumerate() {
            vars.declare(format!("v{i}"), spec.domain());
        }
        let layout = PackedLayout::compile(&vars).expect("small domains pack");
        let values: Vec<Value> = specs
            .iter()
            .zip(&picks)
            .map(|(spec, pick)| {
                let d = spec.domain();
                d.values()[pick % d.values().len()].clone()
            })
            .collect();
        let state = State::new(values.clone());

        let mut buf = Vec::new();
        prop_assert!(layout.pack_into(&values, &mut buf));
        prop_assert_eq!(buf.len(), layout.stride());
        prop_assert_eq!(layout.unpack(&buf), state.clone());
        prop_assert_eq!(layout.fingerprint(&buf), state.fingerprint());

        // Slot-level codec agreement: each stored code decodes to the
        // packed value.
        for (slot, value) in values.iter().enumerate() {
            let code = layout.read_code(&buf, slot);
            prop_assert_eq!(layout.value_of(slot, code), value);
            prop_assert_eq!(layout.code_of(slot, value), Some(code));
        }
    }
}

// ---------------------------------------------------------------------
// Random guarded-command systems: every reachable state of the
// explored graph must round-trip through the layout, and the
// work-stealing engine must reproduce the sequential graph exactly.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct ActionSpec {
    guard_var: usize,
    guard_val: i64,
    target_var: usize,
    update: UpdateKind,
}

#[derive(Clone, Debug)]
enum UpdateKind {
    Constant(i64),
    CopyOther,
    Increment,
}

fn arb_action_spec() -> impl Strategy<Value = ActionSpec> {
    (
        0..3usize,
        0..3i64,
        0..3usize,
        prop_oneof![
            (0..3i64).prop_map(UpdateKind::Constant),
            Just(UpdateKind::CopyOther),
            Just(UpdateKind::Increment),
        ],
    )
        .prop_map(|(guard_var, guard_val, target_var, update)| ActionSpec {
            guard_var,
            guard_val,
            target_var,
            update,
        })
}

/// Three integer variables over `0..=3` (so every update stays
/// in-domain under clamping guards) driven by random guarded actions.
fn build_system(specs: &[ActionSpec]) -> System {
    let mut vars = Vars::new();
    let a = vars.declare("a", Domain::int_range(0, 3));
    let b = vars.declare("b", Domain::int_range(0, 3));
    let c = vars.declare("c", Domain::int_range(0, 3));
    let ids = [a, b, c];
    let actions: Vec<GuardedAction> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let target = ids[spec.target_var];
            let other = ids[(spec.target_var + 1) % ids.len()];
            let (guard_extra, update) = match spec.update {
                UpdateKind::Constant(v) => (None, Expr::int(v)),
                UpdateKind::CopyOther => (None, Expr::var(other)),
                // Guard the increment so the successor stays in
                // domain.
                UpdateKind::Increment => (
                    Some(Expr::var(target).lt(Expr::int(3))),
                    Expr::var(target).add(Expr::int(1)),
                ),
            };
            let mut guard = Expr::var(ids[spec.guard_var]).eq(Expr::int(spec.guard_val));
            if let Some(extra) = guard_extra {
                guard = guard.and(extra);
            }
            GuardedAction::new(format!("act{i}"), guard, vec![(target, update)])
        })
        .collect();
    System::new(
        vars,
        Init::new([(a, Value::Int(0)), (b, Value::Int(0)), (c, Value::Int(0))]),
        actions,
    )
}

/// The repo's byte-identity notion: statistics, canonical state
/// order, initial ids, and per-state edge lists all agree. (The
/// `visited` lookup map is rebuilt in shard order by the parallel
/// engines, so whole-struct comparison is deliberately *not* used.)
fn assert_graphs_identical(a: &StateGraph, b: &StateGraph) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.stats(), b.stats());
    prop_assert_eq!(a.states(), b.states());
    prop_assert_eq!(a.init(), b.init());
    for id in 0..a.len() {
        prop_assert_eq!(a.edges(id), b.edges(id));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every reachable state of a random bounded system packs,
    /// round-trips, and fingerprints identically to the tree path.
    #[test]
    fn reachable_states_roundtrip(specs in proptest::collection::vec(arb_action_spec(), 1..5)) {
        let sys = build_system(&specs);
        let graph = opentla_check::explore(&sys, &ExploreOptions::default()).unwrap();
        let layout = PackedLayout::compile(sys.vars()).expect("bounded ints pack");
        let mut buf = Vec::new();
        for state in graph.states() {
            buf.clear();
            prop_assert!(layout.pack_into(state.values(), &mut buf));
            prop_assert_eq!(&layout.unpack(&buf), state);
            prop_assert_eq!(layout.fingerprint(&buf), state.fingerprint());
        }
    }

    /// The work-stealing engine produces byte-identical graphs to the
    /// sequential engine on random systems, at every worker count and
    /// in both visited-set modes.
    #[test]
    fn ws_matches_sequential_random(specs in proptest::collection::vec(arb_action_spec(), 1..5)) {
        let sys = build_system(&specs);
        let budget = Budget::unlimited();
        let seq = explore_governed_with(
            &sys,
            &budget,
            &ExploreOptions { threads: Some(1), ..ExploreOptions::default() },
        )
        .unwrap();
        for workers in [1usize, 2, 4] {
            for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
                let ws = explore_governed_with(
                    &sys,
                    &budget,
                    &ExploreOptions {
                        threads: Some(workers),
                        engine: Engine::WorkStealing,
                        mode,
                        ..ExploreOptions::default()
                    },
                )
                .unwrap();
                prop_assert!(ws.outcome.is_complete());
                assert_graphs_identical(&seq.graph, &ws.graph)?;
            }
        }
    }
}
