//! Property-based tests for the fault-injection combinators: fault
//! transformation must only *add* behaviors (state-space superset),
//! keep exploration deterministic, and produce systems whose
//! next-state expression stays well-typed over every reachable state
//! pair.

use opentla_check::{explore, faults, ExploreOptions, GuardedAction, Init, System};
use opentla_kernel::{Domain, Expr, StatePair, Value, VarId, Vars};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct ActionSpec {
    guard_var: usize,
    guard_val: i64,
    target_var: usize,
    update: UpdateKind,
}

#[derive(Clone, Debug)]
enum UpdateKind {
    Constant(i64),
    CopyOther,
    Toggle,
}

fn arb_action_spec() -> impl Strategy<Value = ActionSpec> {
    (
        0..2usize,
        0..2i64,
        0..2usize,
        prop_oneof![
            (0..2i64).prop_map(UpdateKind::Constant),
            Just(UpdateKind::CopyOther),
            Just(UpdateKind::Toggle),
        ],
    )
        .prop_map(|(guard_var, guard_val, target_var, update)| ActionSpec {
            guard_var,
            guard_val,
            target_var,
            update,
        })
}

fn build_system(specs: &[ActionSpec]) -> System {
    let mut vars = Vars::new();
    let a = vars.declare("a", Domain::bits());
    let b = vars.declare("b", Domain::bits());
    let ids = [a, b];
    let actions: Vec<GuardedAction> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let target = ids[spec.target_var];
            let other = ids[1 - spec.target_var];
            let update = match spec.update {
                UpdateKind::Constant(v) => Expr::int(v),
                UpdateKind::CopyOther => Expr::var(other),
                UpdateKind::Toggle => Expr::int(1).sub(Expr::var(target)),
            };
            GuardedAction::new(
                format!("act{i}"),
                Expr::var(ids[spec.guard_var]).eq(Expr::int(spec.guard_val)),
                vec![(target, update)],
            )
        })
        .collect();
    System::new(
        vars,
        Init::new([(a, Value::Int(0)), (b, Value::Int(0))]),
        actions,
    )
}

/// Which combinator a test case applies.
#[derive(Clone, Debug)]
enum FaultKind {
    Lossy { drop_b: bool },
    Duplicate,
    CrashRestart,
}

fn arb_fault() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        any::<bool>().prop_map(|drop_b| FaultKind::Lossy { drop_b }),
        Just(FaultKind::Duplicate),
        Just(FaultKind::CrashRestart),
    ]
}

fn apply_fault(sys: &System, kind: &FaultKind) -> System {
    let all: Vec<usize> = (0..sys.actions().len()).collect();
    let (a, b) = (var(sys.vars(), "a"), var(sys.vars(), "b"));
    match kind {
        FaultKind::Lossy { drop_b } => {
            let dropped = if *drop_b { b } else { a };
            faults::lossy(sys, &all, &[dropped]).unwrap()
        }
        FaultKind::Duplicate => faults::duplicate(sys, &all).unwrap(),
        FaultKind::CrashRestart => faults::crash_restart(
            sys,
            &[a, b],
            &[(a, Value::Int(0)), (b, Value::Int(0))],
        )
        .unwrap(),
    }
}

fn var(vars: &Vars, name: &str) -> VarId {
    vars.find(name).expect("declared")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fault injection only adds behaviors: every reachable state and
    /// every edge of the original system survives into the faulted
    /// one, and the appended fault actions leave the original action
    /// indices (hence BFS tie-breaking) intact.
    #[test]
    fn fault_injection_yields_state_space_superset(
        specs in proptest::collection::vec(arb_action_spec(), 1..4),
        kind in arb_fault(),
    ) {
        let sys = build_system(&specs);
        let faulted = apply_fault(&sys, &kind);
        // Original actions survive, in order, under their own names.
        prop_assert!(faulted.actions().len() >= sys.actions().len());
        for (orig, kept) in sys.actions().iter().zip(faulted.actions()) {
            prop_assert_eq!(orig.name(), kept.name());
        }
        for extra in &faulted.actions()[sys.actions().len()..] {
            prop_assert!(faults::is_fault_action(extra.name()));
        }
        let base = explore(&sys, &ExploreOptions::default()).unwrap();
        let bad = explore(&faulted, &ExploreOptions::default()).unwrap();
        prop_assert!(bad.len() >= base.len());
        prop_assert!(bad.edge_count() >= base.edge_count());
        // Every original state is still reachable.
        for s in base.states() {
            prop_assert!(
                bad.states().contains(s),
                "state {s:?} lost by fault injection"
            );
        }
    }

    /// Exploring a faulted system is as deterministic as exploring the
    /// original: identical graphs on repeated runs.
    #[test]
    fn faulted_exploration_deterministic(
        specs in proptest::collection::vec(arb_action_spec(), 1..4),
        kind in arb_fault(),
    ) {
        let faulted = apply_fault(&build_system(&specs), &kind);
        let g1 = explore(&faulted, &ExploreOptions::default()).unwrap();
        let g2 = explore(&faulted, &ExploreOptions::default()).unwrap();
        prop_assert_eq!(g1.states(), g2.states());
        for id in 0..g1.len() {
            prop_assert_eq!(g1.edges(id), g2.edges(id));
        }
    }

    /// The faulted system's next-state expression stays well-typed:
    /// it evaluates without error on every reachable state pair, holds
    /// on every explored edge, and the injected actions respect the
    /// variables' domains.
    #[test]
    fn faulted_next_expr_is_well_typed(
        specs in proptest::collection::vec(arb_action_spec(), 1..4),
        kind in arb_fault(),
    ) {
        let faulted = apply_fault(&build_system(&specs), &kind);
        let graph = explore(&faulted, &ExploreOptions::default()).unwrap();
        let next = faulted.next_expr();
        for (id, s) in graph.states().iter().enumerate() {
            for v in faulted.vars().iter() {
                prop_assert!(
                    faulted.vars().domain(v).contains(s.get(v)),
                    "reachable state leaves the domain of {}",
                    faulted.vars().name(v)
                );
            }
            for t in graph.states() {
                // No type errors anywhere on the reachable square.
                prop_assert!(next.holds_action(StatePair::new(s, t)).is_ok());
            }
            for e in graph.edges(id) {
                let pair = StatePair::new(s, graph.state(e.target));
                prop_assert!(next.holds_action(pair).unwrap());
            }
        }
    }

    /// `hostile_env` declares its clock, arms the saboteur only at the
    /// chosen step, and keeps everything deterministic.
    #[test]
    fn hostile_env_clock_is_monotone_and_bounded(
        specs in proptest::collection::vec(arb_action_spec(), 1..4),
        break_at in 0..3i64,
    ) {
        let sys = build_system(&specs);
        let a = var(sys.vars(), "a");
        // `a = 0` is always falsifiable over bits.
        let assumption = Expr::var(a).eq(Expr::int(0));
        let hostile = faults::hostile_env(&sys, &assumption, break_at).unwrap();
        let clock = var(hostile.vars(), faults::HOSTILE_CLOCK);
        let graph = explore(&hostile, &ExploreOptions::default()).unwrap();
        for (id, s) in graph.states().iter().enumerate() {
            let now = match s.get(clock) {
                Value::Int(i) => *i,
                other => panic!("clock is not an int: {other}"),
            };
            prop_assert!((0..=break_at).contains(&now));
            for e in graph.edges(id) {
                let next = match graph.state(e.target).get(clock) {
                    Value::Int(i) => *i,
                    other => panic!("clock is not an int: {other}"),
                };
                let name = hostile.actions()[e.action].name();
                if faults::is_fault_action(name) {
                    // Saboteur: armed only at the break step, and it
                    // falsifies the assumption.
                    prop_assert_eq!(now, break_at);
                    prop_assert!(
                        !assumption.holds_state(graph.state(e.target)).unwrap()
                    );
                } else {
                    // Ordinary actions tick the (saturating) clock.
                    prop_assert_eq!(next, (now + 1).min(break_at));
                }
            }
        }
    }
}
