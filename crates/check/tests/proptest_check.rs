//! Property-based tests for the model checker over randomly generated
//! guarded-command systems: graph/semantics agreement, invariant
//! verdicts vs brute force, and counterexample replay.

use opentla_check::{
    check_invariant, explore, sample_behavior, ExploreOptions, GuardedAction, Init,
    System,
};
use opentla_kernel::{Domain, Expr, Formula, StatePair, Value, VarId, Vars};
use opentla_semantics::{eval, EvalCtx};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Clone, Debug)]
struct ActionSpec {
    guard_var: usize,
    guard_val: i64,
    target_var: usize,
    update: UpdateKind,
}

#[derive(Clone, Debug)]
enum UpdateKind {
    Constant(i64),
    CopyOther,
    Toggle,
}

fn arb_action_spec() -> impl Strategy<Value = ActionSpec> {
    (
        0..2usize,
        0..2i64,
        0..2usize,
        prop_oneof![
            (0..2i64).prop_map(UpdateKind::Constant),
            Just(UpdateKind::CopyOther),
            Just(UpdateKind::Toggle),
        ],
    )
        .prop_map(|(guard_var, guard_val, target_var, update)| ActionSpec {
            guard_var,
            guard_val,
            target_var,
            update,
        })
}

fn build_system(specs: &[ActionSpec]) -> System {
    let mut vars = Vars::new();
    let a = vars.declare("a", Domain::bits());
    let b = vars.declare("b", Domain::bits());
    let ids = [a, b];
    let actions: Vec<GuardedAction> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let target = ids[spec.target_var];
            let other = ids[1 - spec.target_var];
            let update = match spec.update {
                UpdateKind::Constant(v) => Expr::int(v),
                UpdateKind::CopyOther => Expr::var(other),
                UpdateKind::Toggle => Expr::int(1).sub(Expr::var(target)),
            };
            GuardedAction::new(
                format!("act{i}"),
                Expr::var(ids[spec.guard_var]).eq(Expr::int(spec.guard_val)),
                vec![(target, update)],
            )
        })
        .collect();
    System::new(
        vars,
        Init::new([(a, Value::Int(0)), (b, Value::Int(0))]),
        actions,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every edge of the explored graph satisfies the system's
    /// next-state expression, and every pair of distinct reachable
    /// states *not* connected by an edge fails it (graph = relation).
    #[test]
    fn graph_matches_next_expr(specs in proptest::collection::vec(arb_action_spec(), 1..4)) {
        let sys = build_system(&specs);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let next = sys.next_expr();
        for (id, s) in graph.states().iter().enumerate() {
            let successors: Vec<usize> =
                graph.edges(id).iter().map(|e| e.target).collect();
            for (tid, t) in graph.states().iter().enumerate() {
                let is_edge = successors.contains(&tid);
                let satisfies = next.holds_action(StatePair::new(s, t)).unwrap();
                if is_edge {
                    prop_assert!(satisfies, "edge {id}→{tid} must satisfy N");
                } else if satisfies && s != t {
                    // The relation may also hold for state pairs whose
                    // target equals the source on every updated
                    // variable of some action — those *are* edges
                    // unless the successor is identical. A non-edge
                    // satisfying N with t ≠ s means exploration missed
                    // a successor.
                    prop_assert!(
                        false,
                        "missing edge {id}→{tid}: N holds but not explored"
                    );
                }
            }
        }
    }

    /// Invariant verdicts agree with a brute-force scan of the
    /// reachable states; violated invariants come with a trace that
    /// replays semantically.
    #[test]
    fn invariant_agrees_with_bruteforce(
        specs in proptest::collection::vec(arb_action_spec(), 1..4),
        pv in 0..2i64,
    ) {
        let sys = build_system(&specs);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let a = sys.vars().find("a").unwrap();
        let inv = Expr::var(a).eq(Expr::int(pv));
        let verdict = check_invariant(&sys, &graph, &inv).unwrap();
        let brute = graph
            .states()
            .iter()
            .all(|s| inv.holds_state(s).unwrap());
        prop_assert_eq!(verdict.holds(), brute);
        if let Some(cx) = verdict.counterexample() {
            // The trace is a behavior of the system violating □inv.
            let lasso = cx.to_lasso();
            let ctx = EvalCtx::default();
            let spec = Formula::pred(sys.init().as_pred())
                .and(Formula::act_box(sys.next_expr(), sys.frame()));
            prop_assert!(eval(&spec, &lasso, &ctx).unwrap());
            prop_assert!(
                !eval(&Formula::pred(inv.clone()).always(), &lasso, &ctx).unwrap()
            );
        }
    }

    /// Sampled behaviors of random systems satisfy the system's safety
    /// formula.
    #[test]
    fn sampled_behaviors_are_behaviors(
        specs in proptest::collection::vec(arb_action_spec(), 1..4),
        seed in any::<u64>(),
    ) {
        let sys = build_system(&specs);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let spec = Formula::pred(sys.init().as_pred())
            .and(Formula::act_box(sys.next_expr(), sys.frame()));
        let ctx = EvalCtx::default();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let sigma = sample_behavior(&graph, 10, &mut rng);
            prop_assert!(eval(&spec, &sigma, &ctx).unwrap());
        }
    }

    /// Exploration is deterministic: two runs produce identical graphs.
    #[test]
    fn exploration_deterministic(specs in proptest::collection::vec(arb_action_spec(), 1..4)) {
        let sys = build_system(&specs);
        let g1 = explore(&sys, &ExploreOptions::default()).unwrap();
        let g2 = explore(&sys, &ExploreOptions::default()).unwrap();
        prop_assert_eq!(g1.states(), g2.states());
        prop_assert_eq!(g1.edge_count(), g2.edge_count());
        for id in 0..g1.len() {
            prop_assert_eq!(g1.edges(id), g2.edges(id));
        }
    }
}

/// Helper: the `VarId` of a name, for readability above.
#[allow(dead_code)]
fn var(vars: &Vars, name: &str) -> VarId {
    vars.find(name).expect("declared")
}
