//! Differential liveness harness: the parallel fair-cycle engine must
//! agree with the sequential one — verdict for verdict, lasso for
//! lasso — across real scenarios, fairness shapes, worker counts, and
//! both visited-set modes.
//!
//! Every violated target's counterexample is additionally replayed
//! through `opentla-semantics`: the lasso must be a fair behavior of
//! the system (so the engine found a *real* run) that falsifies the
//! target (so it is a *real* violation). The lasso comparison is
//! field-wise over every observable of a [`Counterexample`] — reason
//! string, state sequence, action labels, loop start — which is
//! byte-identity for its wire rendering.

use opentla_check::{
    check_liveness, check_liveness_governed_with, explore, Budget, Counterexample,
    ExploreOptions, LiveTarget, LivenessOptions, System, Verdict, VisitedMode,
};
use opentla_kernel::{Fairness, Formula};
use opentla_queue::{FairnessStyle, QueueChain};
use opentla_scenarios::{AlternatingBit, ArbiterFairness, ClockWorld, Fig1, Mutex, TokenRing};
use opentla_semantics::{eval, EvalCtx};

/// The scenario matrix: protocol, arbiter, ring, law-of-nature clock,
/// the paper's Figure 1 circular pair, and queue chains from
/// dozen-state to tens-of-thousands-of-states scale.
fn systems() -> Vec<(&'static str, System)> {
    let fig1 = Fig1::new();
    vec![
        (
            "abp",
            AlternatingBit::new(2).complete_system().expect("abp builds"),
        ),
        (
            "mutex",
            Mutex::with_clients(2, ArbiterFairness::Weak)
                .product()
                .expect("mutex builds"),
        ),
        (
            "ring",
            TokenRing::new(3).complete_system().expect("ring builds"),
        ),
        ("clock", ClockWorld::new(2, 3).product().expect("clock builds")),
        (
            "fig1",
            opentla::closed_product(fig1.vars(), &[&fig1.pi_c(), &fig1.pi_d()])
                .expect("fig1 closes"),
        ),
        (
            "chain2",
            QueueChain::new(2, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain2 builds"),
        ),
        (
            "chain3",
            QueueChain::new(3, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain3 builds"),
        ),
        (
            "chain4",
            QueueChain::new(4, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain4 builds"),
        ),
    ]
}

/// Generic targets derived from the system's own action structure, so
/// every scenario is exercised under a WF obligation, an SF obligation,
/// and a plain `◇P` — each paired with the temporal formula used for
/// the semantic replay.
fn targets(sys: &System) -> Vec<(String, LiveTarget, Formula)> {
    let frame = sys.frame();
    let first = &sys.actions()[0];
    let last = sys.actions().last().expect("systems have actions");
    let wf = Fairness::weak(first.action_expr(&frame), first.touched().collect());
    let sf = Fairness::strong(last.action_expr(&frame), last.touched().collect());
    let p = first.guard().clone().not();
    vec![
        (
            format!("WF({})", first.name()),
            LiveTarget::fair(wf.clone()),
            Formula::Fair(wf),
        ),
        (
            format!("SF({})", last.name()),
            LiveTarget::fair(sf.clone()),
            Formula::Fair(sf),
        ),
        (
            format!("eventually not-{}-enabled", first.name()),
            LiveTarget::Eventually(p.clone()),
            Formula::pred(p).eventually(),
        ),
    ]
}

/// The counterexample must be a real fair behavior of the system that
/// violates the target.
fn confirm_semantically(sys: &System, cx: &Counterexample, target: &Formula) {
    let lasso = cx.to_lasso();
    let ctx = EvalCtx::with_universe(sys.universe().clone());
    assert!(
        eval(&sys.formula(), &lasso, &ctx).unwrap(),
        "counterexample must satisfy the system spec (incl. fairness)"
    );
    assert!(
        !eval(target, &lasso, &ctx).unwrap(),
        "counterexample must violate the target"
    );
}

/// Field-wise identity over everything a [`Counterexample`] renders.
fn assert_same_verdict(ctx: &str, seq: &Verdict, par: &Verdict) {
    match (seq, par) {
        (Verdict::Holds, Verdict::Holds) => {}
        (Verdict::Violated(a), Verdict::Violated(b)) => {
            assert_eq!(a.reason(), b.reason(), "{ctx}: reason diverges");
            assert_eq!(a.states(), b.states(), "{ctx}: lasso states diverge");
            assert_eq!(a.actions(), b.actions(), "{ctx}: lasso actions diverge");
            assert_eq!(a.loop_start(), b.loop_start(), "{ctx}: loop start diverges");
        }
        (a, b) => panic!(
            "{ctx}: verdicts diverge (sequential holds={}, parallel holds={})",
            a.holds(),
            b.holds()
        ),
    }
}

/// The full differential matrix. `small_graph_cutoff(0)` forces the
/// parallel engine even on the dozen-state scenarios, so the worker
/// machinery itself — not just the routing — is what's differenced.
#[test]
fn parallel_engine_matches_sequential_across_matrix() {
    for (name, sys) in systems() {
        for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
            let graph = explore(
                &sys,
                &ExploreOptions {
                    mode,
                    ..ExploreOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{name}: explore fails: {e}"));
            for (tname, target, formula) in targets(&sys) {
                let seq = check_liveness(&sys, &graph, &target)
                    .unwrap_or_else(|e| panic!("{name}/{tname}: sequential fails: {e}"));
                if let Some(cx) = seq.counterexample() {
                    confirm_semantically(&sys, cx, &formula);
                }
                for workers in [1usize, 2, 4] {
                    let opts = LivenessOptions::default()
                        .threads(workers)
                        .small_graph_cutoff(0);
                    let run = check_liveness_governed_with(
                        &sys,
                        &graph,
                        &target,
                        &Budget::default(),
                        &opts,
                    )
                    .unwrap_or_else(|e| {
                        panic!("{name}/{tname}/{workers}w: parallel fails: {e}")
                    });
                    assert!(
                        run.outcome.is_complete(),
                        "{name}/{tname}/{workers}w: unbudgeted run must complete"
                    );
                    let ctx = format!("{name}/{tname}/{mode:?}/{workers}w");
                    let verdict = run.verdict.expect("complete runs carry a verdict");
                    assert_same_verdict(&ctx, &seq, &verdict);
                    if let Some(cx) = verdict.counterexample() {
                        confirm_semantically(&sys, cx, &formula);
                    }
                }
            }
        }
    }
}

/// Default routing: below [`opentla_check::LIVENESS_SMALL_GRAPH_CUTOFF`]
/// states a 4-worker request runs sequentially and still produces the
/// identical verdict — the regression test for the small-graph
/// parallel-overhead fix on the liveness side.
#[test]
fn small_graphs_route_sequentially_with_identical_verdicts() {
    let sys = TokenRing::new(3).complete_system().expect("ring builds");
    let graph = explore(&sys, &ExploreOptions::default()).unwrap();
    assert!(
        graph.len() < opentla_check::LIVENESS_SMALL_GRAPH_CUTOFF,
        "fixture must sit below the routing cutoff"
    );
    for (tname, target, _) in targets(&sys) {
        let seq = check_liveness(&sys, &graph, &target).unwrap();
        // Default options: the 4-worker request routes to the
        // sequential engine (resolve_threads clamps to 1).
        let routed = check_liveness_governed_with(
            &sys,
            &graph,
            &target,
            &Budget::default(),
            &LivenessOptions::default().threads(4),
        )
        .unwrap();
        assert!(routed.outcome.is_complete());
        let verdict = routed.verdict.expect("complete runs carry a verdict");
        assert_same_verdict(&format!("ring/{tname}/routed"), &seq, &verdict);
    }
}
