//! Differential tests for the bounded-memory spill engine: under a
//! memory budget tight enough to force real on-disk segments, the
//! completed graph — statistics, canonical state order, initial ids,
//! per-state edge lists, and counterexample traces — must be
//! byte-identical to the in-RAM sequential engine's, in both
//! visited-set modes. Plus property tests over random systems at
//! randomized budgets and over the segment/run file formats
//! themselves (round-trip, truncation, corruption).

use opentla_check::{
    check_invariant, explore_governed_with, Budget, Engine, ExploreOptions,
    GuardedAction, Init, Outcome, StateGraph, System, Verdict, VisitedMode,
};
use opentla_kernel::store::{read_segment, FingerprintRun, SegmentStore, StoreError};
use opentla_kernel::{Domain, Expr, Value, Vars};
use opentla_queue::{FairnessStyle, QueueChain};
use opentla_scenarios::{AlternatingBit, ArbiterFairness, ClockWorld, Fig1, Mutex, TokenRing};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The scenario matrix, mirroring the liveness differential harness:
/// protocol, arbiter, ring, law-of-nature clock, the paper's Figure 1
/// circular pair, and queue chains up to tens of thousands of states.
fn systems() -> Vec<(&'static str, System)> {
    let fig1 = Fig1::new();
    vec![
        (
            "abp",
            AlternatingBit::new(2).complete_system().expect("abp builds"),
        ),
        (
            "mutex",
            Mutex::with_clients(2, ArbiterFairness::Weak)
                .product()
                .expect("mutex builds"),
        ),
        (
            "ring",
            TokenRing::new(3).complete_system().expect("ring builds"),
        ),
        ("clock", ClockWorld::new(2, 3).product().expect("clock builds")),
        (
            "fig1",
            opentla::closed_product(fig1.vars(), &[&fig1.pi_c(), &fig1.pi_d()])
                .expect("fig1 closes"),
        ),
        (
            "chain2",
            QueueChain::new(2, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain2 builds"),
        ),
        (
            "chain3",
            QueueChain::new(3, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain3 builds"),
        ),
        (
            "chain4",
            QueueChain::new(4, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain4 builds"),
        ),
    ]
}

/// The repo's byte-identity notion, as in the other engine
/// differentials: statistics, canonical state order, initial ids, and
/// per-state edge lists all agree.
fn assert_identical(label: &str, a: &StateGraph, b: &StateGraph) {
    assert_eq!(a.stats(), b.stats(), "{label}: stats diverge");
    assert_eq!(a.states(), b.states(), "{label}: state order diverges");
    assert_eq!(a.init(), b.init(), "{label}: initial ids diverge");
    for id in 0..a.len() {
        assert_eq!(a.edges(id), b.edges(id), "{label}: edges of {id} diverge");
    }
}

fn explore_spill(sys: &System, mode: VisitedMode, budget_bytes: usize) -> StateGraph {
    let run = explore_governed_with(
        sys,
        &Budget::unlimited(),
        &ExploreOptions {
            mode,
            threads: Some(1),
            mem_budget_bytes: Some(budget_bytes),
            ..ExploreOptions::default()
        },
    )
    .expect("spill run succeeds");
    assert!(
        matches!(run.outcome, Outcome::Complete),
        "unbudgeted spill run must complete"
    );
    run.graph
}

fn explore_seq(sys: &System, mode: VisitedMode) -> StateGraph {
    let run = explore_governed_with(
        sys,
        &Budget::unlimited(),
        &ExploreOptions {
            mode,
            threads: Some(1),
            ..ExploreOptions::default()
        },
    )
    .expect("sequential run succeeds");
    assert!(matches!(run.outcome, Outcome::Complete));
    run.graph
}

/// An invariant violated exactly at the graph's last (deepest) state,
/// so the counterexample trace walks the parent chain end to end.
fn last_state_invariant(sys: &System, graph: &StateGraph) -> Expr {
    let target = graph.states().last().expect("graphs are non-empty");
    let mut here = Expr::bool(true);
    for (slot, v) in sys.vars().iter().enumerate() {
        here = here.and(Expr::var(v).eq(Expr::con(target.values()[slot].clone())));
    }
    here.not()
}

/// Full matrix under a 1 MiB budget — small enough that the larger
/// chains spill multiple arena segments and visited runs, large
/// enough to keep the suite quick. Graphs and counterexample traces
/// must match the in-RAM engine field for field.
#[test]
fn spill_matches_sequential_across_matrix() {
    for (name, sys) in systems() {
        for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
            let label = format!("{name}/{mode:?}");
            let seq = explore_seq(&sys, mode);
            let spill = explore_spill(&sys, mode, 1 << 20);
            assert_identical(&label, &seq, &spill);

            // Counterexample identity: same violated invariant, same
            // trace through both graphs (exercises the parent chains
            // the spill engine reassembled from arena records).
            let pred = last_state_invariant(&sys, &seq);
            let a = check_invariant(&sys, &seq, &pred).expect("seq invariant runs");
            let b = check_invariant(&sys, &spill, &pred).expect("spill invariant runs");
            match (&a, &b) {
                (Verdict::Violated(ca), Verdict::Violated(cb)) => {
                    assert_eq!(ca.reason(), cb.reason(), "{label}: reason diverges");
                    assert_eq!(ca.states(), cb.states(), "{label}: trace diverges");
                    assert_eq!(ca.actions(), cb.actions(), "{label}: actions diverge");
                }
                _ => panic!("{label}: last-state invariant must be violated in both"),
            }
        }
    }
}

/// Explicit [`Engine::SpillBfs`] selection forces the spill machinery
/// even without a budget (running at the generous default) — same
/// graphs.
#[test]
fn explicit_spill_engine_matches_sequential() {
    let sys = TokenRing::new(3).complete_system().expect("ring builds");
    for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
        let seq = explore_seq(&sys, mode);
        let run = explore_governed_with(
            &sys,
            &Budget::unlimited(),
            &ExploreOptions {
                mode,
                threads: Some(1),
                engine: Engine::SpillBfs,
                ..ExploreOptions::default()
            },
        )
        .expect("spill run succeeds");
        assert!(matches!(run.outcome, Outcome::Complete));
        assert_identical(&format!("ring/{mode:?}/explicit"), &seq, &run.graph);
    }
}

/// The acceptance golden: chain4 under a budget forcing at least two
/// sealed arena segments reproduces 54358 states / 164736 transitions
/// / depth 55 byte-identically. A checkpoint spec pins the segment
/// directory so the test can count the sealed files it forced.
#[test]
fn golden_chain4_under_spill() {
    let sys = QueueChain::new(4, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain4 builds");
    let path = fresh_dir("golden").join("CKPT_chain4.snap");
    let run = explore_governed_with(
        &sys,
        &Budget::unlimited().with_checkpoint(&path, 1 << 30),
        &ExploreOptions {
            mode: VisitedMode::Fingerprint,
            threads: Some(1),
            mem_budget_bytes: Some(256 << 10),
            ..ExploreOptions::default()
        },
    )
    .expect("spill run succeeds");
    assert!(matches!(run.outcome, Outcome::Complete));
    let stats = run.graph.stats();
    assert_eq!(stats.states, 54358, "golden chain4 state count");
    assert_eq!(stats.transitions, 164736, "golden chain4 transition count");
    assert_eq!(stats.depth, 55, "golden chain4 depth");

    let segs_dir = PathBuf::from(format!("{}.segs", path.display()));
    let sealed_arena = std::fs::read_dir(&segs_dir)
        .expect("segment dir exists next to the checkpoint path")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let n = e.file_name();
            let n = n.to_string_lossy().into_owned();
            n.starts_with("arena-") && n.ends_with(".seg")
        })
        .count();
    assert!(
        sealed_arena >= 2,
        "budget must force >= 2 sealed arena segments, saw {sealed_arena}"
    );

    let seq = explore_seq(&sys, VisitedMode::Fingerprint);
    assert_identical("chain4/golden", &seq, &run.graph);
    let _ = std::fs::remove_dir_all(path.parent().expect("has parent"));
}

// ---------------------------------------------------------------------
// Random guarded-command systems at randomized budgets — the same
// generator shape the packed-roundtrip differential uses.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct ActionSpec {
    guard_var: usize,
    guard_val: i64,
    target_var: usize,
    update: UpdateKind,
}

#[derive(Clone, Debug)]
enum UpdateKind {
    Constant(i64),
    CopyOther,
    Increment,
}

fn arb_action_spec() -> impl Strategy<Value = ActionSpec> {
    (
        0..3usize,
        0..3i64,
        0..3usize,
        prop_oneof![
            (0..3i64).prop_map(UpdateKind::Constant),
            Just(UpdateKind::CopyOther),
            Just(UpdateKind::Increment),
        ],
    )
        .prop_map(|(guard_var, guard_val, target_var, update)| ActionSpec {
            guard_var,
            guard_val,
            target_var,
            update,
        })
}

/// Three integer variables over `0..=3` driven by random guarded
/// actions; every update stays in-domain under clamping guards.
fn build_system(specs: &[ActionSpec]) -> System {
    let mut vars = Vars::new();
    let a = vars.declare("a", Domain::int_range(0, 3));
    let b = vars.declare("b", Domain::int_range(0, 3));
    let c = vars.declare("c", Domain::int_range(0, 3));
    let ids = [a, b, c];
    let actions: Vec<GuardedAction> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let target = ids[spec.target_var];
            let other = ids[(spec.target_var + 1) % ids.len()];
            let (guard_extra, update) = match spec.update {
                UpdateKind::Constant(v) => (None, Expr::int(v)),
                UpdateKind::CopyOther => (None, Expr::var(other)),
                UpdateKind::Increment => (
                    Some(Expr::var(target).lt(Expr::int(3))),
                    Expr::var(target).add(Expr::int(1)),
                ),
            };
            let mut guard = Expr::var(ids[spec.guard_var]).eq(Expr::int(spec.guard_val));
            if let Some(extra) = guard_extra {
                guard = guard.and(extra);
            }
            GuardedAction::new(format!("act{i}"), guard, vec![(target, update)])
        })
        .collect();
    System::new(
        vars,
        Init::new([(a, Value::Int(0)), (b, Value::Int(0)), (c, Value::Int(0))]),
        actions,
    )
}

/// A unique scratch directory per call; tests run in parallel, so the
/// name mixes the pid with a process-wide counter.
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "opentla-spill-test-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random systems at random byte budgets (some tiny enough to
    /// spill everything, some comfortably resident): verdict and
    /// graph identity against unbounded RAM, both visited modes.
    #[test]
    fn spill_matches_sequential_random(
        specs in proptest::collection::vec(arb_action_spec(), 1..5),
        budget in 512usize..16384,
    ) {
        let sys = build_system(&specs);
        for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
            let seq = explore_seq(&sys, mode);
            let spill = explore_spill(&sys, mode, budget);
            prop_assert_eq!(seq.stats(), spill.stats());
            prop_assert_eq!(seq.states(), spill.states());
            prop_assert_eq!(seq.init(), spill.init());
            for id in 0..seq.len() {
                prop_assert_eq!(seq.edges(id), spill.edges(id));
            }
        }
    }

    /// Segment files round-trip: append random records (sealing as the
    /// target dictates), then read every record back by index through
    /// the store, and every sealed file again via the standalone
    /// verified reader.
    #[test]
    fn segment_file_roundtrip(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40),
            1..120,
        ),
        target in 64usize..512,
    ) {
        let dir = fresh_dir("roundtrip");
        let mut store = SegmentStore::create(&dir, "arena", target, 1 << 16)
            .expect("store creates");
        for rec in &records {
            store.append(rec).expect("append succeeds");
        }
        let mut buf = Vec::new();
        for (i, rec) in records.iter().enumerate() {
            store.read(i as u64, &mut buf).expect("read succeeds");
            prop_assert_eq!(&buf, rec);
        }
        // Reopen path: sealed files verify and decode standalone.
        let mut seen: Vec<Vec<u8>> = Vec::new();
        for meta in store.sealed() {
            let recs = read_segment(&store.dir().join(&meta.name), Some(meta))
                .expect("sealed segment verifies");
            prop_assert_eq!(recs.len() as u64, meta.records);
            seen.extend(recs);
        }
        seen.extend(store.hot_records().map(<[u8]>::to_vec));
        prop_assert_eq!(seen, records);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating or corrupting a sealed segment yields a typed
    /// [`StoreError`], never a panic or silently wrong bytes.
    #[test]
    fn corrupt_segment_is_a_typed_error(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..24),
            4..40,
        ),
        flip_at in any::<u64>(),
        cut in 1usize..32,
    ) {
        let dir = fresh_dir("corrupt");
        let mut store = SegmentStore::create(&dir, "arena", 64, 1 << 16)
            .expect("store creates");
        for rec in &records {
            store.append(rec).expect("append succeeds");
        }
        store.seal().expect("seal succeeds");
        let meta = store.sealed().first().expect("at least one sealed").clone();
        let path = store.dir().join(&meta.name);
        let pristine = std::fs::read(&path).expect("segment readable");

        // Bit flip anywhere in the file: checksum or header check trips.
        let mut bytes = pristine.clone();
        let at = (flip_at % bytes.len() as u64) as usize;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        prop_assert!(read_segment(&path, Some(&meta)).is_err());

        // Truncation: typed error too.
        let keep = pristine.len().saturating_sub(cut);
        std::fs::write(&path, &pristine[..keep]).expect("rewrite");
        let err = read_segment(&path, Some(&meta));
        prop_assert!(matches!(
            err,
            Err(StoreError::Corrupt { .. })
                | Err(StoreError::ChecksumMismatch { .. })
                | Err(StoreError::MetaMismatch { .. })
                | Err(StoreError::BadMagic { .. })
                | Err(StoreError::Io { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Fingerprint run files round-trip: every written key looks up
    /// every id recorded under it, reopening from disk included.
    #[test]
    fn fingerprint_run_roundtrip(
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..200),
    ) {
        let mut entries = raw;
        entries.sort_unstable();
        let dir = fresh_dir("run");
        let path = dir.join("visited-00000.run");
        let mut run = FingerprintRun::write(&path, &entries).expect("run writes");
        let mut reopened = FingerprintRun::open(&path).expect("run reopens");
        let mut out = Vec::new();
        for &(fp, _) in &entries {
            let want: Vec<u64> = entries
                .iter()
                .filter(|&&(f, _)| f == fp)
                .map(|&(_, id)| id)
                .collect();
            for r in [&mut run, &mut reopened] {
                out.clear();
                r.lookup(fp, &mut out).expect("lookup succeeds");
                out.sort_unstable();
                let mut expect = want.clone();
                expect.sort_unstable();
                prop_assert_eq!(&out, &expect);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
