//! # opentla
//!
//! A mechanization of **Abadi & Lamport, *Open Systems in TLA* (PODC
//! 1994)**: assumption/guarantee specifications `E ⊳ M`, the auxiliary
//! operators `C(F)`, `F +v`, and `E ⊥ M`, Propositions 1–4, and the
//! **Composition Theorem** — as *checked proof rules* whose hypotheses
//! are discharged by the explicit-state model checker of
//! `opentla-check` and recorded in auditable [`Certificate`]s.
//!
//! ## The shape of the theory
//!
//! * A [`ComponentSpec`] is a canonical-form specification
//!   `∃x : Init ∧ □[N]_{⟨m,x⟩} ∧ L` (Section 2.2 of the paper): output
//!   variables `m`, internal variables `x`, input variables `e`, a
//!   next-state action given as guarded commands, and fairness
//!   conditions over sub-actions of `N`. The builder enforces the
//!   side conditions the paper needs: actions touch only owned
//!   variables (so `N ⇒ (e' = e)`, the interleaving condition) and
//!   fairness refers to sub-actions of `N` (the side condition of
//!   Proposition 1, so closures are computed syntactically).
//! * An [`AgSpec`] pairs an environment assumption (a safety-only
//!   component) with a system guarantee; its meaning is the formula
//!   `E ⊳ M`.
//! * [`compose`] applies the **Composition Theorem**: given
//!   `E_j ⊳ M_j` components and a target `E ⊳ M`, it generates the
//!   theorem's hypotheses —
//!   1. `C(E) ∧ ∧ C(M_j) ⇒ E_i` for each `i`,
//!   2. (a) `C(E)+v ∧ ∧ C(M_j) ⇒ C(M)` and (b) `E ∧ ∧ M_j ⇒ M`
//!
//!   — eliminates `C` via Propositions 1–2 and `+v` via Propositions
//!   3–4, discharges each resulting complete-system obligation by
//!   model checking, and returns a [`Certificate`].
//! * [`refine`] is the paper's Corollary: refinement under a fixed
//!   environment assumption, `(E ⊳ M') ⇒ (E ⊳ M)`.
//! * [`check_ag_safety`] decides whether an implementation *realizes*
//!   an assumption/guarantee specification (safety part), by running
//!   the implementation against a chaos environment with an `⊳` monitor;
//!   [`check_ag_safety_diagnosed`] additionally pinpoints *where* the
//!   environment first broke the assumption ("M held k+1 steps, E
//!   broken at step k").
//! * The [`faults`] combinators (re-exported from `opentla-check`)
//!   manufacture adversarial environments — lossy channels, duplicating
//!   channels, crash–restart components, and assumption-breaking
//!   hostile environments — and every engine runs under a [`Budget`],
//!   degrading to partial, [`Outcome`]-tagged results (and
//!   [`ObligationStatus::Undecided`] certificates) when resources run
//!   out.
//!
//! Interleaving composition requires the conditional-implementation
//! guarantee `G = Disjoint(…)` (Section 2.3 and the appendix); the
//! closed product built here enforces `G` *structurally* — one
//! component steps at a time — and the certificate records `G`
//! explicitly so the conclusion reads `G ∧ ∧(E_j ⊳ M_j) ⇒ (E ⊳ M)`.
//!
//! ## Example
//!
//! The paper's first example: two processes, each guaranteeing its
//! output stays 0 assuming the other's does. See
//! [`compose`] for the worked version; the `opentla-queue` crate builds
//! the appendix's double-queue proof in full.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ag;
mod assembly;
mod certificate;
mod component;
mod compose;
mod error;
mod export;
mod props;
mod refinement;
mod suite;

pub use ag::{
    chaos_environment, check_ag_safety, check_ag_safety_diagnosed, AgReport, AgSpec,
    AssumptionBreak,
};
pub use assembly::closed_product;
pub use certificate::{Certificate, Method, Obligation, ObligationStatus};
pub use component::{ComponentBuilder, ComponentSpec};
pub use compose::{compose, refine, CompositionOptions, CompositionProblem};
pub use error::SpecError;
pub use export::{tla_expr, to_tla_module, trace_to_tla_module};
pub use refinement::{check_component_refinement, RefinementReport};
pub use suite::{CheckKind, Suite, SuiteEntry};
pub use props::{
    disjoint, proposition_1, proposition_2_sides, proposition_3_reduction,
    proposition_4_initial_condition, Prop3Reduction,
};

// Robustness layer, re-exported from `opentla-check` so open-system
// studies can inject faults and govern resources without a direct
// dependency on the checker crate.
pub use opentla_check::faults;
pub use opentla_check::{escalate, Budget, ExhaustReason, Governed, Outcome};

// Observability layer: structured run events, live progress metrics,
// and exportable run reports, routed by `OPENTLA_OBS=/path.jsonl` or
// an explicit recorder on the [`Budget`].
pub use opentla_check::obs;
pub use opentla_check::{
    CountingRecorder, JsonlRecorder, NullRecorder, Recorder, RecorderHandle, RunReport,
};

// Reduction layer: ample-set partial-order reduction and pluggable
// symmetry canonicalization for the explorer, off by default.
pub use opentla_check::{Canonicalize, PorConfig, Reduction, ReductionStats, SlotPermutations};
