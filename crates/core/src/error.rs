//! Error type for the assumption/guarantee calculus.

use opentla_check::CheckError;
use opentla_kernel::{KernelError, VarId};
use std::fmt;

/// An error raised while building specifications or applying the proof
/// rules. These are *engine* errors — a hypothesis that simply fails to
/// hold is reported inside a
/// [`Certificate`](crate::Certificate) instead.
#[derive(Debug)]
pub enum SpecError {
    /// A variable was declared in more than one role (output, internal,
    /// input) of the same component.
    OverlappingRoles {
        /// The component.
        component: String,
        /// The offending variable.
        var: VarId,
    },
    /// An action updates a variable the component does not own —
    /// violating the interleaving condition `N ⇒ (e' = e)`.
    ForeignUpdate {
        /// The component.
        component: String,
        /// The action.
        action: String,
        /// The variable it illegally updates.
        var: VarId,
    },
    /// The initial condition constrains a variable the component does
    /// not own.
    ForeignInit {
        /// The component.
        component: String,
        /// The offending variable.
        var: VarId,
    },
    /// A fairness condition refers to an action index out of range.
    FairnessOutOfRange {
        /// The component.
        component: String,
        /// The offending index.
        index: usize,
    },
    /// An environment assumption carries fairness conditions; the
    /// composition rules require assumptions to be safety properties
    /// (Section 3 of the paper).
    EnvWithFairness {
        /// The offending component.
        component: String,
    },
    /// Two composed components both own the same variable.
    DuplicateOwnership {
        /// The variable owned twice.
        var: VarId,
        /// The two owners.
        owners: (String, String),
    },
    /// An input of a component is produced by no other component in a
    /// closed product.
    NotClosed {
        /// The component with the dangling input.
        component: String,
        /// The unproduced input.
        var: VarId,
    },
    /// The refinement mapping does not cover exactly the target's
    /// internal variables.
    MappingDomain {
        /// A variable that is mapped but not internal, or internal but
        /// not mapped.
        var: VarId,
    },
    /// An assumption component has internal variables but no witness
    /// mapping was supplied for checking hypothesis 1.
    AssumptionNeedsWitness {
        /// The assumption component.
        component: String,
    },
    /// A hidden (internal) variable of one component occurs free in
    /// another component or in the target — violating the hypothesis of
    /// Proposition 2.
    HiddenVarLeak {
        /// The component whose internal variable leaks.
        component: String,
        /// The leaking variable.
        var: VarId,
        /// Where it occurs.
        leaked_into: String,
    },
    /// The underlying model checker failed.
    Check(CheckError),
    /// A syntactic transformation failed.
    Kernel(KernelError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::OverlappingRoles { component, var } => write!(
                f,
                "component {component}: variable #{} declared in two roles",
                var.index()
            ),
            SpecError::ForeignUpdate {
                component,
                action,
                var,
            } => write!(
                f,
                "component {component}: action {action} updates foreign variable #{} \
                 (the interleaving condition N ⇒ (e' = e) would fail)",
                var.index()
            ),
            SpecError::ForeignInit { component, var } => write!(
                f,
                "component {component}: initial condition constrains foreign variable #{}",
                var.index()
            ),
            SpecError::FairnessOutOfRange { component, index } => write!(
                f,
                "component {component}: fairness refers to action index {index} out of range"
            ),
            SpecError::EnvWithFairness { component } => write!(
                f,
                "assumption {component} has fairness conditions; environment \
                 assumptions must be safety properties"
            ),
            SpecError::DuplicateOwnership { var, owners } => write!(
                f,
                "variable #{} owned by both {} and {}",
                var.index(),
                owners.0,
                owners.1
            ),
            SpecError::NotClosed { component, var } => write!(
                f,
                "input #{} of component {component} is produced by no component",
                var.index()
            ),
            SpecError::MappingDomain { var } => write!(
                f,
                "refinement mapping must cover exactly the internal variables; \
                 variable #{} is mismatched",
                var.index()
            ),
            SpecError::AssumptionNeedsWitness { component } => write!(
                f,
                "assumption {component} has internal variables; supply a witness mapping"
            ),
            SpecError::HiddenVarLeak {
                component,
                var,
                leaked_into,
            } => write!(
                f,
                "internal variable #{} of {component} occurs free in {leaked_into}; \
                 Proposition 2 requires hidden variables to be private",
                var.index()
            ),
            SpecError::Check(e) => write!(f, "{e}"),
            SpecError::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Check(e) => Some(e),
            SpecError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckError> for SpecError {
    fn from(e: CheckError) -> Self {
        SpecError::Check(e)
    }
}

impl From<KernelError> for SpecError {
    fn from(e: KernelError) -> Self {
        SpecError::Kernel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_the_paper_conditions() {
        let e = SpecError::EnvWithFairness {
            component: "env".into(),
        };
        assert!(e.to_string().contains("safety"));
        let e = SpecError::ForeignUpdate {
            component: "c".into(),
            action: "a".into(),
            var: unsafe_var(3),
        };
        assert!(e.to_string().contains("interleaving"));
    }

    fn unsafe_var(i: usize) -> VarId {
        // Build a VarId by declaring enough variables.
        let mut vars = opentla_kernel::Vars::new();
        let mut last = None;
        for k in 0..=i {
            last = Some(vars.declare(format!("v{k}"), opentla_kernel::Domain::bits()));
        }
        last.expect("declared at least one")
    }
}
