//! Closed products: assembling a complete system from components.
//!
//! Section 5 of the paper observes that each hypothesis of the
//! Composition Theorem has the form `P ∧ ∧ Q_j ⇒ R` where
//! `P ∧ ∧ Q_j` "is equivalent to a canonical-form specification of a
//! complete system". [`closed_product`] builds that complete system as
//! a [`System`] the model checker can run:
//!
//! * the actions are the union of the components' actions — each step
//!   is a step of exactly one component, which *structurally enforces*
//!   the disjointness guarantee `G = Disjoint(⟨outputs⟩, …)` that
//!   interleaving composition needs (Section 2.3, formula (4) of the
//!   appendix);
//! * the initial condition is the conjunction of the components';
//! * the fairness conditions are the union of the components'.
//!
//! Variables in the registry owned by no component (e.g. the *target*
//! specification's internal variables, which a refinement mapping
//! eliminates) are pinned to a fixed value so they do not inflate the
//! state space.

use crate::{ComponentSpec, SpecError};
use opentla_check::{Init, System, SystemFairness};
use opentla_kernel::{VarId, Vars};
use std::collections::HashMap;

/// Builds the complete system `P ∧ ∧ Q_j` from components.
///
/// Every variable of `vars` must be owned (output or internal) by at
/// most one component; unowned variables are pinned to the first value
/// of their domain. Every input of every component must be produced
/// (as an output) by some other component — otherwise the system is
/// not closed.
///
/// # Errors
///
/// * [`SpecError::DuplicateOwnership`] if two components own a
///   variable;
/// * [`SpecError::NotClosed`] if an input is produced by no component.
///
/// # Example
///
/// ```
/// use opentla::{closed_product, ComponentSpec};
/// use opentla_check::{explore, ExploreOptions, GuardedAction, Init};
/// use opentla_kernel::{Domain, Expr, Value, Vars};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut vars = Vars::new();
/// let ping = vars.declare("ping", Domain::bits());
/// let pong = vars.declare("pong", Domain::bits());
/// let player = |name: &str, mine, theirs| {
///     ComponentSpec::builder(name)
///         .outputs([mine]).inputs([theirs])
///         .init(Init::new([(mine, Value::Int(0))]))
///         .action(GuardedAction::new(
///             "echo",
///             Expr::bool(true),
///             vec![(mine, Expr::var(theirs))],
///         ))
///         .build()
/// };
/// let sys = closed_product(&vars, &[&player("a", ping, pong)?, &player("b", pong, ping)?])?;
/// let graph = explore(&sys, &ExploreOptions::default())?;
/// assert_eq!(graph.len(), 1); // both echo zeros forever
/// # Ok(())
/// # }
/// ```
pub fn closed_product(
    vars: &Vars,
    components: &[&ComponentSpec],
) -> Result<System, SpecError> {
    // Ownership check.
    let mut owner: HashMap<VarId, &str> = HashMap::new();
    for c in components {
        for v in c.owned() {
            if let Some(prev) = owner.insert(v, c.name()) {
                return Err(SpecError::DuplicateOwnership {
                    var: v,
                    owners: (prev.to_string(), c.name().to_string()),
                });
            }
        }
    }
    // Closedness: inputs must be someone's output.
    for c in components {
        for v in c.inputs() {
            if !owner.contains_key(v) {
                return Err(SpecError::NotClosed {
                    component: c.name().to_string(),
                    var: *v,
                });
            }
        }
    }
    // Initial condition: merge, pinning unowned variables.
    let mut init = Init::new([]);
    for c in components {
        init = init.merge(c.init());
    }
    let pinned: Vec<(VarId, opentla_kernel::Value)> = vars
        .iter()
        .filter(|v| !owner.contains_key(v))
        .map(|v| (v, vars.domain(v).values()[0].clone()))
        .collect();
    init = init.merge(&Init::new(pinned));

    // Actions and fairness, with index offsets.
    let mut actions = Vec::new();
    let mut fairness: Vec<SystemFairness> = Vec::new();
    for c in components {
        let offset = actions.len();
        actions.extend(c.actions().iter().cloned());
        for (kind, ids) in c.fairness() {
            let shifted: Vec<usize> = ids.iter().map(|i| i + offset).collect();
            fairness.push(SystemFairness {
                kind: *kind,
                action_ids: shifted,
                sub: c.owned(),
            });
        }
    }
    let mut system = System::new(vars.clone(), init, actions);
    for f in fairness {
        system = system.with_fairness(f);
    }
    Ok(system)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{explore, ExploreOptions, GuardedAction};
    use opentla_kernel::{Domain, Expr, Value};

    /// Π_c and Π_d from the paper's introduction: each repeatedly
    /// copies the other's output.
    fn fig1_processes() -> (Vars, ComponentSpec, ComponentSpec) {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let pc = ComponentSpec::builder("Pi_c")
            .outputs([c])
            .inputs([d])
            .init(Init::new([(c, Value::Int(0))]))
            .action(GuardedAction::new(
                "copy_d",
                Expr::bool(true),
                vec![(c, Expr::var(d))],
            ))
            .build()
            .unwrap();
        let pd = ComponentSpec::builder("Pi_d")
            .outputs([d])
            .inputs([c])
            .init(Init::new([(d, Value::Int(0))]))
            .action(GuardedAction::new(
                "copy_c",
                Expr::bool(true),
                vec![(d, Expr::var(c))],
            ))
            .build()
            .unwrap();
        (vars, pc, pd)
    }

    #[test]
    fn product_of_fig1_processes() {
        let (vars, pc, pd) = fig1_processes();
        let sys = closed_product(&vars, &[&pc, &pd]).unwrap();
        assert_eq!(sys.actions().len(), 2);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        // Both start at 0 and only ever copy each other: single state.
        assert_eq!(graph.len(), 1);
    }

    #[test]
    fn duplicate_ownership_rejected() {
        let (vars, pc, _) = fig1_processes();
        let err = closed_product(&vars, &[&pc, &pc]);
        assert!(matches!(err, Err(SpecError::DuplicateOwnership { .. })));
    }

    #[test]
    fn open_input_rejected() {
        let (vars, pc, _) = fig1_processes();
        // Π_c alone reads d, which nobody produces.
        let err = closed_product(&vars, &[&pc]);
        assert!(matches!(err, Err(SpecError::NotClosed { .. })));
    }

    #[test]
    fn unowned_vars_are_pinned() {
        let (mut vars, pc, pd) = fig1_processes();
        // An abstract variable used only by a target spec.
        let ghost = vars.declare("ghost", Domain::int_range(0, 9));
        let sys = closed_product(&vars, &[&pc, &pd]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        // Still a single state: ghost pinned to 0, not enumerated.
        assert_eq!(graph.len(), 1);
        assert_eq!(graph.state(0).get(ghost), &Value::Int(0));
    }

    #[test]
    fn fairness_offsets() {
        let mut vars = Vars::new();
        let a = vars.declare("a", Domain::bits());
        let b = vars.declare("b", Domain::bits());
        let one = ComponentSpec::builder("one")
            .outputs([a])
            .init(Init::new([(a, Value::Int(0))]))
            .action(GuardedAction::new(
                "seta",
                Expr::var(a).eq(Expr::int(0)),
                vec![(a, Expr::int(1))],
            ))
            .weak_fairness([0])
            .build()
            .unwrap();
        let two = ComponentSpec::builder("two")
            .outputs([b])
            .init(Init::new([(b, Value::Int(0))]))
            .action(GuardedAction::new(
                "setb",
                Expr::var(b).eq(Expr::int(0)),
                vec![(b, Expr::int(1))],
            ))
            .weak_fairness([0])
            .build()
            .unwrap();
        let sys = closed_product(&vars, &[&one, &two]).unwrap();
        assert_eq!(sys.fairness().len(), 2);
        // Second component's fairness refers to the offset action.
        assert_eq!(sys.fairness()[1].action_ids, vec![1]);
        assert_eq!(sys.fairness()[1].sub, vec![b]);
    }
}
