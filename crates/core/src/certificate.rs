//! Proof certificates: the audit trail of a rule application.

use opentla_check::{Counterexample, Outcome};
use opentla_kernel::Vars;
use std::fmt;

/// How an obligation was discharged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Enforced by construction of the closed product (e.g. the
    /// disjointness guarantee `G`, or Proposition 1's side condition).
    Structural,
    /// Step simulation over the reachable states (safety).
    Simulation,
    /// A check over the initial states (Proposition 4's hypothesis).
    InitialStates,
    /// Fair-lasso search (liveness).
    Liveness,
    /// Reachability of the complete system (the substrate every other
    /// method runs on; appears only when exploration itself exhausts
    /// its budget).
    Exploration,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Structural => "structural",
            Method::Simulation => "simulation",
            Method::InitialStates => "initial states",
            Method::Liveness => "liveness",
            Method::Exploration => "exploration",
        };
        f.write_str(s)
    }
}

/// The status of one proof obligation.
#[derive(Clone, Debug)]
pub enum ObligationStatus {
    /// Discharged.
    Proved {
        /// States examined (0 for structural facts).
        states: usize,
    },
    /// Refuted, with a counterexample.
    Failed(Counterexample),
    /// Neither proved nor refuted: the checking budget ran out first.
    /// The [`Outcome`] records why and how much ground was covered.
    Undecided {
        /// The (exhausted) resource outcome of the check.
        outcome: Outcome,
    },
}

impl ObligationStatus {
    /// Whether the obligation was discharged.
    pub fn proved(&self) -> bool {
        matches!(self, ObligationStatus::Proved { .. })
    }

    /// Whether the obligation was refuted (as opposed to merely
    /// undecided).
    pub fn failed(&self) -> bool {
        matches!(self, ObligationStatus::Failed(_))
    }

    /// Whether the budget ran out before the obligation was decided.
    pub fn undecided(&self) -> bool {
        matches!(self, ObligationStatus::Undecided { .. })
    }
}

/// One hypothesis of a proof rule, as checked.
#[derive(Clone, Debug)]
pub struct Obligation {
    /// Short identifier, e.g. `"H1[env-of-q1]"` or `"H2a/closure"`.
    pub id: String,
    /// What the obligation asserts, in the paper's notation.
    pub description: String,
    /// How it was discharged.
    pub method: Method,
    /// Whether it was discharged.
    pub status: ObligationStatus,
}

/// The result of applying a proof rule: the conclusion plus every
/// checked hypothesis.
///
/// A certificate with [`Certificate::holds`]` == false` is not an
/// error: it faithfully records which hypothesis failed and why.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The rule applied, e.g. `"Composition Theorem"`.
    pub rule: String,
    /// The conclusion, in the paper's notation.
    pub conclusion: String,
    /// Every obligation checked, in order.
    pub obligations: Vec<Obligation>,
    /// Reachable states of the complete system used to discharge the
    /// hypotheses.
    pub product_states: usize,
    /// Transitions of that system.
    pub product_edges: usize,
}

impl Certificate {
    /// Whether every obligation was discharged — i.e. the conclusion
    /// is established. An undecided certificate does not hold (but see
    /// [`Certificate::decided`] to tell exhaustion from refutation).
    pub fn holds(&self) -> bool {
        self.obligations.iter().all(|o| o.status.proved())
    }

    /// Whether every obligation was decided one way or the other —
    /// `false` means some check's budget ran out and the conclusion is
    /// open, not refuted. Retry with a larger [`Budget`]
    /// (`opentla_check::Budget`), e.g. via `opentla_check::escalate`.
    ///
    /// [`Budget`]: opentla_check::Budget
    pub fn decided(&self) -> bool {
        !self.obligations.iter().any(|o| o.status.undecided())
    }

    /// The first *refuted* obligation, if any (undecided obligations
    /// are not failures; see [`Certificate::first_undecided`]).
    pub fn first_failure(&self) -> Option<&Obligation> {
        self.obligations.iter().find(|o| o.status.failed())
    }

    /// The first obligation whose check exhausted its budget, if any.
    pub fn first_undecided(&self) -> Option<&Obligation> {
        self.obligations.iter().find(|o| o.status.undecided())
    }

    /// Renders the certificate with variable names (for
    /// counterexamples).
    pub fn display<'a>(&'a self, vars: &'a Vars) -> CertificateDisplay<'a> {
        CertificateDisplay { cert: self, vars }
    }
}

impl opentla_check::Governed for Certificate {
    /// A certificate is "exhausted" when any obligation is undecided,
    /// making whole rule applications retryable with
    /// `opentla_check::escalate`.
    fn exhaustion(&self) -> Option<&opentla_check::ExhaustReason> {
        self.obligations.iter().find_map(|o| match &o.status {
            ObligationStatus::Undecided { outcome } => outcome.exhaustion(),
            _ => None,
        })
    }
}

/// Helper returned by [`Certificate::display`].
#[derive(Clone, Copy)]
pub struct CertificateDisplay<'a> {
    cert: &'a Certificate,
    vars: &'a Vars,
}

impl fmt::Display for CertificateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.cert;
        writeln!(f, "rule: {}", c.rule)?;
        writeln!(f, "conclusion: {}", c.conclusion)?;
        writeln!(
            f,
            "complete system: {} states, {} transitions",
            c.product_states, c.product_edges
        )?;
        writeln!(
            f,
            "verdict: {}",
            if c.holds() {
                "PROVED"
            } else if c.first_failure().is_some() {
                "FAILED"
            } else {
                "UNDECIDED (budget exhausted)"
            }
        )?;
        for o in &c.obligations {
            match &o.status {
                ObligationStatus::Proved { states } => {
                    writeln!(
                        f,
                        "  ✓ {} [{}; {} states]  {}",
                        o.id, o.method, states, o.description
                    )?;
                }
                ObligationStatus::Failed(cx) => {
                    writeln!(f, "  ✗ {} [{}]  {}", o.id, o.method, o.description)?;
                    write!(f, "{}", cx.display(self.vars))?;
                }
                ObligationStatus::Undecided { outcome } => {
                    writeln!(
                        f,
                        "  ? {} [{}]  {} — {}",
                        o.id, o.method, o.description, outcome
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::{Domain, State, Value};

    fn proved(id: &str) -> Obligation {
        Obligation {
            id: id.into(),
            description: "test".into(),
            method: Method::Simulation,
            status: ObligationStatus::Proved { states: 7 },
        }
    }

    #[test]
    fn holds_iff_all_proved() {
        let mut cert = Certificate {
            rule: "Composition Theorem".into(),
            conclusion: "E ⊳ M".into(),
            obligations: vec![proved("H1"), proved("H2a")],
            product_states: 10,
            product_edges: 20,
        };
        assert!(cert.holds());
        assert!(cert.first_failure().is_none());
        cert.obligations.push(Obligation {
            id: "H2b".into(),
            description: "liveness".into(),
            method: Method::Liveness,
            status: ObligationStatus::Failed(Counterexample::new(
                "starved",
                vec![State::new(vec![Value::Int(0)])],
                vec![None],
                Some(0),
            )),
        });
        assert!(!cert.holds());
        assert_eq!(cert.first_failure().unwrap().id, "H2b");
    }

    #[test]
    fn undecided_is_neither_proved_nor_failed() {
        use opentla_check::{ExhaustReason, GraphStats};
        let outcome = Outcome::Exhausted {
            reason: ExhaustReason::StateLimit { limit: 3 },
            frontier_size: 2,
            stats: GraphStats {
                states: 3,
                transitions: 1,
                deadlocks: 0,
                depth: 1,
            },
            resume: None,
        };
        let cert = Certificate {
            rule: "Composition Theorem".into(),
            conclusion: "E ⊳ M".into(),
            obligations: vec![
                proved("G"),
                Obligation {
                    id: "H2a".into(),
                    description: "simulation".into(),
                    method: Method::Simulation,
                    status: ObligationStatus::Undecided { outcome },
                },
            ],
            product_states: 3,
            product_edges: 1,
        };
        assert!(!cert.holds());
        assert!(!cert.decided());
        assert!(cert.first_failure().is_none());
        assert_eq!(cert.first_undecided().unwrap().id, "H2a");
        use opentla_check::Governed;
        assert_eq!(
            cert.exhaustion(),
            Some(&ExhaustReason::StateLimit { limit: 3 })
        );
        let mut vars = Vars::new();
        vars.declare("x", Domain::bits());
        let text = cert.display(&vars).to_string();
        assert!(text.contains("UNDECIDED"), "{text}");
        assert!(text.contains("state limit of 3"), "{text}");
        assert!(text.contains("? H2a"), "{text}");
    }

    #[test]
    fn display_includes_everything() {
        let mut vars = Vars::new();
        vars.declare("x", Domain::bits());
        let cert = Certificate {
            rule: "Corollary".into(),
            conclusion: "(E ⊳ M') ⇒ (E ⊳ M)".into(),
            obligations: vec![proved("a")],
            product_states: 3,
            product_edges: 4,
        };
        let text = cert.display(&vars).to_string();
        assert!(text.contains("Corollary"));
        assert!(text.contains("PROVED"));
        assert!(text.contains("3 states"));
        assert!(text.contains('✓'));
    }
}
