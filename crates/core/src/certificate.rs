//! Proof certificates: the audit trail of a rule application.

use opentla_check::Counterexample;
use opentla_kernel::Vars;
use std::fmt;

/// How an obligation was discharged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Enforced by construction of the closed product (e.g. the
    /// disjointness guarantee `G`, or Proposition 1's side condition).
    Structural,
    /// Step simulation over the reachable states (safety).
    Simulation,
    /// A check over the initial states (Proposition 4's hypothesis).
    InitialStates,
    /// Fair-lasso search (liveness).
    Liveness,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Structural => "structural",
            Method::Simulation => "simulation",
            Method::InitialStates => "initial states",
            Method::Liveness => "liveness",
        };
        f.write_str(s)
    }
}

/// The status of one proof obligation.
#[derive(Clone, Debug)]
pub enum ObligationStatus {
    /// Discharged.
    Proved {
        /// States examined (0 for structural facts).
        states: usize,
    },
    /// Refuted, with a counterexample.
    Failed(Counterexample),
}

impl ObligationStatus {
    /// Whether the obligation was discharged.
    pub fn proved(&self) -> bool {
        matches!(self, ObligationStatus::Proved { .. })
    }
}

/// One hypothesis of a proof rule, as checked.
#[derive(Clone, Debug)]
pub struct Obligation {
    /// Short identifier, e.g. `"H1[env-of-q1]"` or `"H2a/closure"`.
    pub id: String,
    /// What the obligation asserts, in the paper's notation.
    pub description: String,
    /// How it was discharged.
    pub method: Method,
    /// Whether it was discharged.
    pub status: ObligationStatus,
}

/// The result of applying a proof rule: the conclusion plus every
/// checked hypothesis.
///
/// A certificate with [`Certificate::holds`]` == false` is not an
/// error: it faithfully records which hypothesis failed and why.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The rule applied, e.g. `"Composition Theorem"`.
    pub rule: String,
    /// The conclusion, in the paper's notation.
    pub conclusion: String,
    /// Every obligation checked, in order.
    pub obligations: Vec<Obligation>,
    /// Reachable states of the complete system used to discharge the
    /// hypotheses.
    pub product_states: usize,
    /// Transitions of that system.
    pub product_edges: usize,
}

impl Certificate {
    /// Whether every obligation was discharged — i.e. the conclusion
    /// is established.
    pub fn holds(&self) -> bool {
        self.obligations.iter().all(|o| o.status.proved())
    }

    /// The first failed obligation, if any.
    pub fn first_failure(&self) -> Option<&Obligation> {
        self.obligations.iter().find(|o| !o.status.proved())
    }

    /// Renders the certificate with variable names (for
    /// counterexamples).
    pub fn display<'a>(&'a self, vars: &'a Vars) -> CertificateDisplay<'a> {
        CertificateDisplay { cert: self, vars }
    }
}

/// Helper returned by [`Certificate::display`].
#[derive(Clone, Copy)]
pub struct CertificateDisplay<'a> {
    cert: &'a Certificate,
    vars: &'a Vars,
}

impl fmt::Display for CertificateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.cert;
        writeln!(f, "rule: {}", c.rule)?;
        writeln!(f, "conclusion: {}", c.conclusion)?;
        writeln!(
            f,
            "complete system: {} states, {} transitions",
            c.product_states, c.product_edges
        )?;
        writeln!(
            f,
            "verdict: {}",
            if c.holds() { "PROVED" } else { "FAILED" }
        )?;
        for o in &c.obligations {
            match &o.status {
                ObligationStatus::Proved { states } => {
                    writeln!(
                        f,
                        "  ✓ {} [{}; {} states]  {}",
                        o.id, o.method, states, o.description
                    )?;
                }
                ObligationStatus::Failed(cx) => {
                    writeln!(f, "  ✗ {} [{}]  {}", o.id, o.method, o.description)?;
                    write!(f, "{}", cx.display(self.vars))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::{Domain, State, Value};

    fn proved(id: &str) -> Obligation {
        Obligation {
            id: id.into(),
            description: "test".into(),
            method: Method::Simulation,
            status: ObligationStatus::Proved { states: 7 },
        }
    }

    #[test]
    fn holds_iff_all_proved() {
        let mut cert = Certificate {
            rule: "Composition Theorem".into(),
            conclusion: "E ⊳ M".into(),
            obligations: vec![proved("H1"), proved("H2a")],
            product_states: 10,
            product_edges: 20,
        };
        assert!(cert.holds());
        assert!(cert.first_failure().is_none());
        cert.obligations.push(Obligation {
            id: "H2b".into(),
            description: "liveness".into(),
            method: Method::Liveness,
            status: ObligationStatus::Failed(Counterexample::new(
                "starved",
                vec![State::new(vec![Value::Int(0)])],
                vec![None],
                Some(0),
            )),
        });
        assert!(!cert.holds());
        assert_eq!(cert.first_failure().unwrap().id, "H2b");
    }

    #[test]
    fn display_includes_everything() {
        let mut vars = Vars::new();
        vars.declare("x", Domain::bits());
        let cert = Certificate {
            rule: "Corollary".into(),
            conclusion: "(E ⊳ M') ⇒ (E ⊳ M)".into(),
            obligations: vec![proved("a")],
            product_states: 3,
            product_edges: 4,
        };
        let text = cert.display(&vars).to_string();
        assert!(text.contains("Corollary"));
        assert!(text.contains("PROVED"));
        assert!(text.contains("3 states"));
        assert!(text.contains('✓'));
    }
}
