//! Propositions 1–4 of the paper, as executable artifacts.
//!
//! The Composition Theorem's hypotheses mention the closure `C` and
//! the `+v` operator; the paper's Propositions 1–4 eliminate them so
//! that every obligation becomes a complete-system safety or liveness
//! check. This module exposes each proposition:
//!
//! * **Proposition 1** — `C(Init ∧ □[N]_v ∧ L) = Init ∧ □[N]_v` when
//!   `L` is a conjunction of `WF`/`SF` over sub-actions of `N`:
//!   [`proposition_1`]. The side condition is enforced structurally by
//!   [`ComponentSpec`](crate::ComponentSpec) (fairness refers to action
//!   indices).
//! * **Proposition 2** — pushes closure implications through hiding;
//!   its side condition (internal variables are private) is checked by
//!   [`proposition_2_sides`].
//! * **Proposition 3** — replaces `E+v ∧ R ⇒ M` by `E ∧ R ⇒ M` plus
//!   the orthogonality `R ⇒ (E ⊥ M)`: [`proposition_3_reduction`]
//!   builds both obligations as formulas (so they can also be fed to
//!   the semantic oracle).
//! * **Proposition 4** — derives the orthogonality of interleaving
//!   component specifications from `Disjoint(e, m)` plus an initial
//!   condition: [`proposition_4_initial_condition`] builds the
//!   predicate to verify on the initial states; the disjointness is
//!   structural in a closed product.

use crate::{ComponentSpec, SpecError};
use opentla_kernel::{unchanged, Expr, Formula, VarId};

/// The paper's `Disjoint(v₁, …, v_n)` formula (Section 2.3): no two of
/// the tuples change in the same step,
/// `∧_{i≠j} □[(vᵢ' = vᵢ) ∨ (vⱼ' = vⱼ)]_{⟨vᵢ,vⱼ⟩}`.
///
/// In closed products this holds by construction (each step fires one
/// component's action); the formula is exposed so the conditional-
/// implementation guarantee `G` can be stated, displayed, and tested
/// semantically.
pub fn disjoint(tuples: &[Vec<VarId>]) -> Formula {
    let mut conjuncts = Vec::new();
    for (i, vi) in tuples.iter().enumerate() {
        for vj in tuples.iter().skip(i + 1) {
            let action = Expr::any([unchanged(vi), unchanged(vj)]);
            let sub: Vec<VarId> = vi.iter().chain(vj.iter()).copied().collect();
            conjuncts.push(Formula::act_box(action, sub));
        }
    }
    Formula::all(conjuncts)
}

/// **Proposition 1**: the closure of a canonical component
/// specification is its safety part.
///
/// The side condition — each fairness condition is over a sub-action
/// of `N` — holds by construction for every [`ComponentSpec`], so this
/// simply returns `Init ∧ □[N]_v`.
pub fn proposition_1(component: &ComponentSpec) -> Formula {
    component.closure()
}

/// **Proposition 2** side conditions: for each component, its internal
/// variables must not occur (free) in any other component or in the
/// target.
///
/// When this holds, proving
/// `∧ C(Mᵢ) ⇒ ∃x : C(M)` (internals visible, closures computed by
/// Proposition 1) establishes
/// `∧ C(∃xᵢ : Mᵢ) ⇒ C(∃x : M)` — which is how the `compose` engine
/// justifies checking hypotheses on the unhidden product.
///
/// # Errors
///
/// [`SpecError::HiddenVarLeak`] naming the leaking variable.
pub fn proposition_2_sides(
    components: &[&ComponentSpec],
    target: &ComponentSpec,
) -> Result<(), SpecError> {
    for (i, c) in components.iter().enumerate() {
        for x in c.internals() {
            for (j, other) in components.iter().enumerate() {
                if i != j && other.formula().free_vars().contains(*x) {
                    return Err(SpecError::HiddenVarLeak {
                        component: c.name().to_string(),
                        var: *x,
                        leaked_into: other.name().to_string(),
                    });
                }
            }
            // The target formula with *its own* internals still bound
            // counts as "M" in the proposition; x_i must not be free in
            // it.
            if target.hidden_formula().free_vars().contains(*x) {
                return Err(SpecError::HiddenVarLeak {
                    component: c.name().to_string(),
                    var: *x,
                    leaked_into: target.name().to_string(),
                });
            }
        }
    }
    Ok(())
}

/// The two obligations **Proposition 3** reduces `⊨ E+v ∧ R ⇒ M` to,
/// plus the conclusion — all as formulas.
#[derive(Clone, Debug)]
pub struct Prop3Reduction {
    /// `⊨ E ∧ R ⇒ M` (the `+`-free implication).
    pub implication: Formula,
    /// `⊨ R ⇒ (E ⊥ M)` (the orthogonality obligation).
    pub orthogonality: Formula,
    /// `⊨ E+v ∧ R ⇒ M` (what the two together establish).
    pub conclusion: Formula,
}

/// **Proposition 3**: if `E`, `M`, `R` are safety properties and `v`
/// contains all free variables of `M`, then `⊨ E ∧ R ⇒ M` and
/// `⊨ R ⇒ (E ⊥ M)` imply `⊨ E+v ∧ R ⇒ M`.
///
/// This function only *builds* the three formulas; the caller proves
/// the two hypotheses (the `compose` engine does so by simulation and
/// by Proposition 4) or feeds all three to the semantic oracle, as the
/// property-based tests do.
pub fn proposition_3_reduction(
    env: Formula,
    r: Formula,
    m: Formula,
    v: Vec<VarId>,
) -> Prop3Reduction {
    Prop3Reduction {
        implication: env.clone().and(r.clone()).implies(m.clone()),
        orthogonality: r.clone().implies(env.clone().ortho(m.clone())),
        conclusion: env.plus(v).and(r).implies(m),
    }
}

/// **Proposition 4**'s remaining hypothesis as a state predicate.
///
/// For interleaving component specifications `E` (closure
/// `Init_E ∧ □[N_E]`) and `M` (closure `Init_M ∧ □[N_M]`), Proposition
/// 4 derives `C(E) ⊥ C(M)` from `Disjoint(e, m)` — structural in a
/// closed product — plus the initial condition
/// `∃x : Init_E ∨ ∃y : Init_M`. This function returns the *stronger*
/// predicate `Init_E ∨ Init_M` over the visible product state (whose
/// actual internal-variable values serve as the `∃` witnesses), with
/// the target's internal variables replaced via the refinement mapping
/// by the caller.
pub fn proposition_4_initial_condition(env_init: Expr, sys_init_mapped: Expr) -> Expr {
    Expr::any([env_init, sys_init_mapped])
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{GuardedAction, Init};
    use opentla_kernel::{Domain, State, Value, Vars};
    use opentla_semantics::{eval, EvalCtx, Lasso};

    #[test]
    fn disjoint_formula_semantics() {
        let mut vars = Vars::new();
        let a = vars.declare("a", Domain::bits());
        let b = vars.declare("b", Domain::bits());
        let g = disjoint(&[vec![a], vec![b]]);
        let ctx = EvalCtx::default();
        let st = |x: i64, y: i64| State::new(vec![Value::Int(x), Value::Int(y)]);
        // a and b change on different steps: Disjoint holds.
        let ok = Lasso::new(vec![st(0, 0), st(1, 0), st(1, 1)], 2).unwrap();
        assert!(eval(&g, &ok, &ctx).unwrap());
        // Simultaneous change: violated.
        let bad = Lasso::new(vec![st(0, 0), st(1, 1)], 1).unwrap();
        assert!(!eval(&g, &bad, &ctx).unwrap());
        // A single tuple (or none): vacuously TRUE.
        assert_eq!(disjoint(&[vec![a]]), Formula::tt());
        assert_eq!(disjoint(&[]), Formula::tt());
    }

    #[test]
    fn prop2_side_condition_detects_leak() {
        let mut vars = Vars::new();
        let m1 = vars.declare("m1", Domain::bits());
        let x1 = vars.declare("x1", Domain::bits());
        let m2 = vars.declare("m2", Domain::bits());
        let c1 = ComponentSpec::builder("c1")
            .outputs([m1])
            .internals([x1])
            .init(Init::new([(m1, Value::Int(0)), (x1, Value::Int(0))]))
            .build()
            .unwrap();
        // c2 illegally reads c1's internal x1.
        let c2_leaky = ComponentSpec::builder("c2")
            .outputs([m2])
            .inputs([x1])
            .init(Init::new([(m2, Value::Int(0))]))
            .action(GuardedAction::new(
                "peek",
                Expr::bool(true),
                vec![(m2, Expr::var(x1))],
            ))
            .build()
            .unwrap();
        let target = ComponentSpec::builder("t").build().unwrap();
        let err = proposition_2_sides(&[&c1, &c2_leaky], &target);
        assert!(matches!(err, Err(SpecError::HiddenVarLeak { .. })));
        // Without the leak, fine.
        let c2_ok = ComponentSpec::builder("c2")
            .outputs([m2])
            .inputs([m1])
            .init(Init::new([(m2, Value::Int(0))]))
            .build()
            .unwrap();
        assert!(proposition_2_sides(&[&c1, &c2_ok], &target).is_ok());
    }

    #[test]
    fn prop3_reduction_validity_over_enumerated_universe() {
        // Proposition 3 speaks about *validity*: if ⊨ E ∧ R ⇒ M and
        // ⊨ R ⇒ (E ⊥ M), then ⊨ E+v ∧ R ⇒ M. We pick E, M, R where the
        // hypotheses are genuinely valid and verify all three over
        // every lasso of a small universe.
        //
        //   E: y stays 0.
        //   M: x stays 0.
        //   R: x starts 0 and every step either sets x to y (keeping y)
        //      or leaves x alone — the "implementation glue" making the
        //      hypotheses valid.
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::bits());
        let e = Formula::pred(Expr::var(y).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![y]));
        let m = Formula::pred(Expr::var(x).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![x]));
        let r = Formula::pred(Expr::var(x).eq(Expr::int(0))).and(Formula::act_box(
            Expr::all([
                Expr::prime(x).eq(Expr::var(y)),
                Expr::prime(y).eq(Expr::var(y)),
            ]),
            vec![x],
        ));
        let red = proposition_3_reduction(e, r, m, vec![x]);
        let ctx = EvalCtx::default();
        let universe = opentla_semantics::Universe::new(vars);
        let lassos = opentla_semantics::all_lassos(&universe, 3);
        assert!(lassos.len() > 100, "enumeration should be substantial");
        for sigma in &lassos {
            assert!(
                eval(&red.implication, sigma, &ctx).unwrap(),
                "hypothesis E ∧ R ⇒ M must be valid; fails on {sigma:?}"
            );
            assert!(
                eval(&red.orthogonality, sigma, &ctx).unwrap(),
                "hypothesis R ⇒ (E ⊥ M) must be valid; fails on {sigma:?}"
            );
            assert!(
                eval(&red.conclusion, sigma, &ctx).unwrap(),
                "conclusion E+v ∧ R ⇒ M must then be valid; fails on {sigma:?}"
            );
        }
    }

    #[test]
    fn prop4_initial_condition_is_a_disjunction() {
        let mut vars = Vars::new();
        let a = vars.declare("a", Domain::bits());
        let p = proposition_4_initial_condition(
            Expr::var(a).eq(Expr::int(0)),
            Expr::var(a).eq(Expr::int(1)),
        );
        let s0 = State::new(vec![Value::Int(0)]);
        let s1 = State::new(vec![Value::Int(1)]);
        assert!(p.holds_state(&s0).unwrap());
        assert!(p.holds_state(&s1).unwrap());
    }
}
