//! The Composition Theorem and its Corollary, as checked proof rules.

use crate::props::{proposition_2_sides, proposition_4_initial_condition};
use crate::{
    closed_product, AgSpec, Certificate, ComponentSpec, Method, Obligation,
    ObligationStatus, SpecError,
};
use opentla_check::{
    check_liveness_governed, check_simulation_governed, explore_governed, Budget,
    ExploreOptions, LiveTarget, Verdict,
};
use opentla_kernel::{Formula, Substitution, Vars};

/// Options for the composition engine.
#[derive(Clone, Debug, Default)]
pub struct CompositionOptions {
    /// Exploration limits for the complete system.
    pub explore: ExploreOptions,
    /// Whether to check the liveness half of hypothesis 2(b). Defaults
    /// to `true`; disable only for safety-only studies.
    pub skip_liveness: bool,
    /// Resource budget for every engine run (exploration and each
    /// obligation check). Exhaustion is not an error: the affected
    /// obligations are recorded as
    /// [`ObligationStatus::Undecided`](crate::ObligationStatus) and the
    /// certificate's [`Certificate::decided`](crate::Certificate) turns
    /// false. Defaults to unlimited.
    pub budget: Budget,
}

/// A composition problem: components `E_j ⊳ M_j`, a target `E ⊳ M`,
/// and the refinement mapping eliminating the target guarantee's
/// internal variables.
#[derive(Clone, Debug)]
pub struct CompositionProblem<'a> {
    /// The shared variable registry.
    pub vars: &'a Vars,
    /// The component specifications `E_j ⊳ M_j`.
    pub components: Vec<&'a AgSpec>,
    /// The target specification `E ⊳ M`.
    pub target: &'a AgSpec,
    /// Maps each internal variable of the target guarantee to a state
    /// function of the product's variables (empty if none).
    pub mapping: Substitution,
}

/// Applies the **Composition Theorem** (Section 5):
///
/// > If, for each `i`,
/// > 1. `⊨ C(E) ∧ ∧ C(M_j) ⇒ E_i`, and
/// > 2. (a) `⊨ C(E)+v ∧ ∧ C(M_j) ⇒ C(M)` and (b) `⊨ E ∧ ∧ M_j ⇒ M`,
/// > then `⊨ ∧ (E_j ⊳ M_j) ⇒ (E ⊳ M)`.
///
/// The engine mechanizes the paper's proof recipe (illustrated by its
/// Figure 9):
///
/// * **Propositions 1–2** eliminate the closures: each `C(M_j)` is the
///   component's safety part (Prop. 1, side condition enforced by
///   construction), and hiding is handled by checking the unhidden
///   product (Prop. 2, side condition checked here);
/// * **Propositions 3–4** eliminate the `+v`: disjointness of outputs
///   is structural in the interleaving product, and the initial
///   condition `Init_E ∨ Init_M` is checked on the initial states,
///   yielding `C(E) ⊥ C(M)`, so 2(a) reduces to the `+`-free
///   simulation;
/// * each hypothesis is then a complete-system obligation over the
///   closed product `C(E) ∧ ∧ C(M_j)`, discharged by reachability
///   (safety) or fair-lasso search (liveness).
///
/// Because the product is interleaving, the established conclusion is
/// the conditional implementation
/// `⊨ G ∧ ∧ (E_j ⊳ M_j) ⇒ (E ⊳ M)` with `G` the disjointness
/// guarantee — exactly formula (4) of the paper's appendix. `G` is
/// recorded in the certificate.
///
/// # Errors
///
/// Structural errors ([`SpecError`]) — e.g. overlapping outputs, a
/// non-closed product, a bad mapping, or Proposition 2's side condition
/// failing. A hypothesis that is simply *false* is not an error: it is
/// reported as a failed obligation in the returned [`Certificate`].
///
/// # Example
///
/// The paper's introductory circular composition:
///
/// ```
/// use opentla::{compose, AgSpec, ComponentSpec, CompositionOptions, CompositionProblem};
/// use opentla_check::Init;
/// use opentla_kernel::{Domain, Substitution, Value, Vars};
///
/// # fn main() -> Result<(), opentla::SpecError> {
/// let mut vars = Vars::new();
/// let c = vars.declare("c", Domain::bits());
/// let d = vars.declare("d", Domain::bits());
/// let stays_zero = |name: &str, out, inp| {
///     ComponentSpec::builder(name)
///         .outputs([out]).inputs([inp])
///         .init(Init::new([(out, Value::Int(0))]))
///         .build()
/// };
/// let ag_c = AgSpec::new(stays_zero("M0_d", d, c)?, stays_zero("M0_c", c, d)?)?;
/// let ag_d = AgSpec::new(stays_zero("M0_c", c, d)?, stays_zero("M0_d", d, c)?)?;
/// let both = ComponentSpec::builder("both")
///     .outputs([c, d])
///     .init(Init::new([(c, Value::Int(0)), (d, Value::Int(0))]))
///     .build()?;
/// let target = AgSpec::new(ComponentSpec::builder("TRUE").build()?, both)?;
/// let cert = compose(
///     &CompositionProblem {
///         vars: &vars,
///         components: vec![&ag_c, &ag_d],
///         target: &target,
///         mapping: Substitution::default(),
///     },
///     &CompositionOptions::default(),
/// )?;
/// assert!(cert.holds());
/// # Ok(())
/// # }
/// ```
pub fn compose(
    problem: &CompositionProblem<'_>,
    options: &CompositionOptions,
) -> Result<Certificate, SpecError> {
    build_certificate(problem, options, "Composition Theorem", None)
}

/// Applies the paper's **Corollary** — refinement under a fixed
/// environment assumption:
///
/// > If `E` is a safety property, (a) `⊨ E+v ∧ C(M') ⇒ C(M)` and
/// > (b) `⊨ E ∧ M' ⇒ M`, then `⊨ (E ⊳ M') ⇒ (E ⊳ M)`.
///
/// Implemented as the one-component instance of [`compose`] (hypothesis
/// 1 is the trivial `C(E) ∧ C(M') ⇒ E`).
///
/// # Errors
///
/// As for [`compose`].
pub fn refine(
    vars: &Vars,
    env: &ComponentSpec,
    lower: &ComponentSpec,
    upper: &ComponentSpec,
    mapping: Substitution,
    options: &CompositionOptions,
) -> Result<Certificate, SpecError> {
    let component = AgSpec::new(env.clone(), lower.clone())?;
    let target = AgSpec::new(env.clone(), upper.clone())?;
    let problem = CompositionProblem {
        vars,
        components: vec![&component],
        target: &target,
        mapping,
    };
    build_certificate(
        &problem,
        options,
        "Corollary (refinement under a fixed environment)",
        Some(format!(
            "⊨ ({} ⊳ {}) ⇒ ({} ⊳ {})",
            env.name(),
            lower.name(),
            env.name(),
            upper.name()
        )),
    )
}

fn build_certificate(
    problem: &CompositionProblem<'_>,
    options: &CompositionOptions,
    rule: &str,
    conclusion_override: Option<String>,
) -> Result<Certificate, SpecError> {
    let target_env = problem.target.env();
    let target_sys = problem.target.sys();

    // --- structural validation ------------------------------------------
    if target_env.has_fairness() {
        return Err(SpecError::EnvWithFairness {
            component: target_env.name().to_string(),
        });
    }
    for ag in &problem.components {
        if !ag.env().internals().is_empty() {
            return Err(SpecError::AssumptionNeedsWitness {
                component: ag.env().name().to_string(),
            });
        }
    }
    // Mapping covers exactly the target guarantee's internals.
    for x in target_sys.internals() {
        if problem.mapping.get(*x).is_none() {
            return Err(SpecError::MappingDomain { var: *x });
        }
    }
    for v in problem.mapping.domain() {
        if !target_sys.internals().contains(&v) {
            return Err(SpecError::MappingDomain { var: v });
        }
    }

    // Proposition 2 side conditions: product internals are private.
    let guarantees: Vec<&ComponentSpec> =
        problem.components.iter().map(|ag| ag.sys()).collect();
    proposition_2_sides(&guarantees, target_sys)?;

    // --- the complete system  C(E) ∧ ∧ C(M_j) ----------------------------
    let mut members: Vec<&ComponentSpec> = vec![target_env];
    members.extend(guarantees.iter().copied());
    let product = closed_product(problem.vars, &members)?;
    // The legacy `explore.max_states` option narrows the budget, so old
    // call sites keep their limit while gaining graceful degradation.
    let budget = if options.explore.max_states < options.budget.max_states {
        options.budget.clone().states(options.explore.max_states)
    } else {
        options.budget.clone()
    };
    let rec = budget.recorder.clone();
    let _phase =
        opentla_check::obs::PhaseGuard::enter(&rec, opentla_check::obs::Phase::Compose);
    let exploration = explore_governed(&product, &budget)?;
    let graph = &exploration.graph;

    let mut obligations = Vec::new();

    // G: the disjointness guarantee, structural in the product.
    let tuples: Vec<String> = members
        .iter()
        .map(|c| {
            let names: Vec<&str> = c
                .outputs()
                .iter()
                .map(|v| problem.vars.name(*v))
                .collect();
            format!("⟨{}⟩", names.join(", "))
        })
        .collect();
    obligations.push(Obligation {
        id: "G".into(),
        description: format!(
            "Disjoint({}) — one component steps at a time (interleaving product)",
            tuples.join(", ")
        ),
        method: Method::Structural,
        status: ObligationStatus::Proved { states: 0 },
    });
    obligations.push(Obligation {
        id: "P1+P2".into(),
        description: "closures computed by Proposition 1 (fairness over sub-actions, \
                      by construction); hiding handled by Proposition 2 (internals \
                      are private, checked)"
            .into(),
        method: Method::Structural,
        status: ObligationStatus::Proved { states: 0 },
    });

    // An exhausted exploration leaves a partial graph: every remaining
    // hypothesis would be checked over a strict subset of the reachable
    // states, so record them all as undecided rather than pretend.
    if !exploration.outcome.is_complete() {
        obligations.push(Obligation {
            id: "exploration".into(),
            description: "reachability of the complete system C(E) ∧ ∧ C(M_j) \
                          (every semantic hypothesis depends on it)"
                .into(),
            method: Method::Exploration,
            status: ObligationStatus::Undecided {
                outcome: exploration.outcome.clone(),
            },
        });
        emit_obligations(&rec, &obligations);
        return Ok(Certificate {
            rule: rule.to_string(),
            conclusion: conclusion_override.unwrap_or_else(|| {
                default_conclusion(problem)
            }),
            obligations,
            product_states: graph.len(),
            product_edges: graph.edge_count(),
        });
    }

    // --- hypothesis 1: C(E) ∧ ∧ C(M_j) ⇒ E_i ------------------------------
    let empty = Substitution::default();
    for ag in &problem.components {
        let run = check_simulation_governed(
            &product,
            graph,
            &ag.env().safety_formula(),
            &empty,
            &budget,
        )?;
        obligations.push(Obligation {
            id: format!("H1[{}]", ag.env().name()),
            description: format!(
                "C(E) ∧ ∧ C(M_j) ⇒ {} (assumption of {})",
                ag.env().name(),
                ag.sys().name()
            ),
            method: Method::Simulation,
            status: simulation_status(run),
        });
    }

    // --- hypothesis 2(a): C(E)+v ∧ ∧ C(M_j) ⇒ C(M) ------------------------
    // Proposition 4: orthogonality from structural disjointness + the
    // initial condition Init_E ∨ Init_M (mapped).
    let mapped_sys_init = problem.mapping.expr(&target_sys.init().as_pred())?;
    let init_cond = proposition_4_initial_condition(
        target_env.init().as_pred(),
        mapped_sys_init,
    );
    let mut init_status = ObligationStatus::Proved {
        states: graph.init().len(),
    };
    for &id in graph.init() {
        if !init_cond
            .holds_state(graph.state(id))
            .map_err(opentla_check::CheckError::from)?
        {
            init_status = ObligationStatus::Failed(opentla_check::Counterexample::new(
                "initial state satisfies neither Init_E nor Init_M \
                 (Proposition 4's hypothesis)",
                vec![graph.state(id).clone()],
                vec![None],
                None,
            ));
            break;
        }
    }
    obligations.push(Obligation {
        id: "H2a/P4".into(),
        description: "Init_E ∨ Init_M holds initially ⟹ C(E) ⊥ C(M) \
                      (Proposition 4; disjointness is structural)"
            .into(),
        method: Method::InitialStates,
        status: init_status,
    });
    // Proposition 3 then reduces 2(a) to the +‑free simulation.
    let run = check_simulation_governed(
        &product,
        graph,
        &target_sys.safety_formula(),
        &problem.mapping,
        &budget,
    )?;
    obligations.push(Obligation {
        id: "H2a".into(),
        description: format!(
            "C(E) ∧ ∧ C(M_j) ⇒ C({}) under the refinement mapping \
             (Proposition 3 eliminated the +v)",
            target_sys.name()
        ),
        method: Method::Simulation,
        status: simulation_status(run),
    });

    // --- hypothesis 2(b): E ∧ ∧ M_j ⇒ M (liveness half) -------------------
    if !options.skip_liveness {
        for i in 0..target_sys.fairness().len() {
            let fair_formula = Formula::Fair(target_sys.fairness_condition(i));
            let mapped = problem.mapping.formula(&fair_formula)?;
            let Formula::Fair(mapped_fair) = mapped else {
                unreachable!("substitution preserves the Fair constructor");
            };
            // Enabledness: `Enabled` does not commute with
            // substitution, so the mapped angle action's enabledness is
            // computed *abstractly* (guard holds and the update would
            // change an owned variable — exact for guarded commands)
            // and then mapped. Using concrete-successor enabledness
            // here would be unsound: an abstract action can be enabled
            // at states the concrete implementation has saturated.
            let enabled = problem
                .mapping
                .expr(&target_sys.fairness_enabled_expr(i))?;
            let run = check_liveness_governed(
                &product,
                graph,
                &LiveTarget::fair_with_enabled(mapped_fair, enabled),
                &budget,
            )?;
            obligations.push(Obligation {
                id: format!("H2b/fairness[{i}]"),
                description: format!(
                    "E ∧ ∧ M_j ⇒ fairness condition #{i} of {} \
                     (under the refinement mapping)",
                    target_sys.name()
                ),
                method: Method::Liveness,
                status: match run.verdict {
                    Some(Verdict::Holds) => ObligationStatus::Proved {
                        states: graph.len(),
                    },
                    Some(Verdict::Violated(cx)) => ObligationStatus::Failed(cx),
                    None => ObligationStatus::Undecided {
                        outcome: run.outcome,
                    },
                },
            });
        }
    }

    let conclusion =
        conclusion_override.unwrap_or_else(|| default_conclusion(problem));
    emit_obligations(&rec, &obligations);
    Ok(Certificate {
        rule: rule.to_string(),
        conclusion,
        obligations,
        product_states: graph.len(),
        product_edges: graph.edge_count(),
    })
}

/// Reports each obligation's status as a `check` event (`holds` is true
/// only for proved obligations; failed *and* undecided read as false,
/// matching [`Certificate::holds`]).
fn emit_obligations(rec: &opentla_check::RecorderHandle, obligations: &[Obligation]) {
    if !rec.enabled() {
        return;
    }
    for ob in obligations {
        rec.record(&opentla_check::Event::Check {
            kind: "obligation",
            name: &ob.id,
            holds: matches!(ob.status, ObligationStatus::Proved { .. }),
        });
    }
}

/// The theorem's conclusion `⊨ G ∧ ∧(E_j ⊳ M_j) ⇒ (E ⊳ M)` in the
/// paper's notation.
fn default_conclusion(problem: &CompositionProblem<'_>) -> String {
    let antecedents: Vec<String> = problem
        .components
        .iter()
        .map(|ag| format!("({})", ag.name()))
        .collect();
    format!(
        "⊨ G ∧ {} ⇒ ({})",
        antecedents.join(" ∧ "),
        problem.target.name()
    )
}

/// Folds a governed simulation run into an obligation status.
fn simulation_status(run: opentla_check::SimulationRun) -> ObligationStatus {
    match run.report {
        Some(report) => match report.verdict {
            Verdict::Holds => ObligationStatus::Proved {
                states: report.states,
            },
            Verdict::Violated(cx) => ObligationStatus::Failed(cx),
        },
        None => ObligationStatus::Undecided {
            outcome: run.outcome,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{GuardedAction, Init};
    use opentla_kernel::{Domain, Expr, Value};

    /// The paper's introductory example, mechanized end to end.
    ///
    /// `M⁰_c` = "c is always 0", `M⁰_d` = "d is always 0". Each process
    /// guarantees its own output assuming the other: the Composition
    /// Theorem proves `(M⁰_d ⊳ M⁰_c) ∧ (M⁰_c ⊳ M⁰_d) ⇒ (TRUE ⊳ M⁰_c ∧ M⁰_d)`
    /// despite the circularity.
    fn fig1_safety_setup() -> (Vars, AgSpec, AgSpec, AgSpec) {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let stays = |name: &str, out, inp| {
            ComponentSpec::builder(name)
                .outputs([out])
                .inputs([inp])
                .init(Init::new([(out, Value::Int(0))]))
                .build()
                .unwrap()
        };
        let ag_c = AgSpec::new(stays("M0d", d, c), stays("M0c", c, d)).unwrap();
        let ag_d = AgSpec::new(stays("M0c", c, d), stays("M0d", d, c)).unwrap();
        // Target: no environment; guarantee owns both c and d.
        let both = ComponentSpec::builder("M0c∧M0d")
            .outputs([c, d])
            .init(Init::new([(c, Value::Int(0)), (d, Value::Int(0))]))
            .build()
            .unwrap();
        let empty_env = ComponentSpec::builder("TRUE").build().unwrap();
        let target = AgSpec::new(empty_env, both).unwrap();
        (vars, ag_c, ag_d, target)
    }

    #[test]
    fn circular_safety_composition_goes_through() {
        let (vars, ag_c, ag_d, target) = fig1_safety_setup();
        let problem = CompositionProblem {
            vars: &vars,
            components: vec![&ag_c, &ag_d],
            target: &target,
            mapping: Substitution::default(),
        };
        let cert = compose(&problem, &CompositionOptions::default()).unwrap();
        assert!(cert.holds(), "{}", cert.display(&vars));
        // The single reachable state: c = d = 0.
        assert_eq!(cert.product_states, 1);
        // Obligations: G, P1+P2, two H1s, H2a/P4, H2a.
        assert_eq!(cert.obligations.len(), 6);
        assert!(cert.conclusion.contains("⊳"));
    }

    #[test]
    fn composition_detects_false_guarantee() {
        // Break the target: claim the composition keeps c at 1.
        let (vars, ag_c, ag_d, _) = fig1_safety_setup();
        let c = vars.find("c").unwrap();
        let d = vars.find("d").unwrap();
        let wrong = ComponentSpec::builder("wrong")
            .outputs([c, d])
            .init(Init::new([(c, Value::Int(1)), (d, Value::Int(0))]))
            .build()
            .unwrap();
        let empty_env = ComponentSpec::builder("TRUE").build().unwrap();
        let target = AgSpec::new(empty_env, wrong).unwrap();
        let problem = CompositionProblem {
            vars: &vars,
            components: vec![&ag_c, &ag_d],
            target: &target,
            mapping: Substitution::default(),
        };
        let cert = compose(&problem, &CompositionOptions::default()).unwrap();
        assert!(!cert.holds());
        let failure = cert.first_failure().unwrap();
        assert!(failure.id.starts_with("H2a"), "{}", failure.id);
    }

    #[test]
    fn composition_detects_unmet_assumption() {
        // Components whose assumptions are NOT discharged by the other
        // side: M_c assumes d stays 0, but the other component only
        // guarantees d stays ≤ 1 (i.e. nothing).
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let stays_zero = |name: &str, out: opentla_kernel::VarId, inp| {
            ComponentSpec::builder(name)
                .outputs([out])
                .inputs([inp])
                .init(Init::new([(out, Value::Int(0))]))
                .build()
                .unwrap()
        };
        // d-component may freely toggle d.
        let toggler = ComponentSpec::builder("toggler")
            .outputs([d])
            .inputs([c])
            .init(Init::new([(d, Value::Int(0))]))
            .action(GuardedAction::new(
                "toggle",
                Expr::bool(true),
                vec![(d, Expr::int(1).sub(Expr::var(d)))],
            ))
            .build()
            .unwrap();
        let ag_c = AgSpec::new(stays_zero("E_c", d, c), stays_zero("M_c", c, d)).unwrap();
        let ag_d = AgSpec::new(stays_zero("E_d", c, d), toggler).unwrap();
        let both = ComponentSpec::builder("target")
            .outputs([c, d])
            .init(Init::new([(c, Value::Int(0)), (d, Value::Int(0))]))
            .build()
            .unwrap();
        let empty_env = ComponentSpec::builder("TRUE").build().unwrap();
        let target = AgSpec::new(empty_env, both).unwrap();
        let problem = CompositionProblem {
            vars: &vars,
            components: vec![&ag_c, &ag_d],
            target: &target,
            mapping: Substitution::default(),
        };
        let cert = compose(&problem, &CompositionOptions::default()).unwrap();
        assert!(!cert.holds());
        let failure = cert.first_failure().unwrap();
        assert!(
            failure.id.starts_with("H1[E_c]"),
            "hypothesis 1 for M_c's assumption must fail, got {}",
            failure.id
        );
    }

    #[test]
    fn refinement_corollary() {
        // Environment: chaotic input e. Lower: copies e to m via an
        // internal latch. Upper: m just follows e "eventually" — here,
        // the safety-only view: □[m' = x ...]; keep it simple: upper
        // allows any m change (TRUE spec) — refinement must hold; and a
        // wrong upper (m constant) must fail.
        let mut vars = Vars::new();
        let m = vars.declare("m", Domain::bits());
        let x = vars.declare("x", Domain::bits());
        let e = vars.declare("e", Domain::bits());
        let env = crate::chaos_environment("env", &vars, &[e]);
        let lower = ComponentSpec::builder("impl")
            .outputs([m])
            .internals([x])
            .inputs([e])
            .init(Init::new([(m, Value::Int(0)), (x, Value::Int(0))]))
            .action(GuardedAction::new(
                "latch",
                Expr::bool(true),
                vec![(x, Expr::var(e))],
            ))
            .action(GuardedAction::new(
                "emit",
                Expr::bool(true),
                vec![(m, Expr::var(x))],
            ))
            .build()
            .unwrap();
        // Upper spec: m starts 0 and may change freely.
        let upper_ok = ComponentSpec::builder("loose")
            .outputs([m])
            .inputs([e])
            .init(Init::new([(m, Value::Int(0))]))
            .action(GuardedAction::new(
                "any0",
                Expr::bool(true),
                vec![(m, Expr::int(0))],
            ))
            .action(GuardedAction::new(
                "any1",
                Expr::bool(true),
                vec![(m, Expr::int(1))],
            ))
            .build()
            .unwrap();
        let cert = refine(
            &vars,
            &env,
            &lower,
            &upper_ok,
            Substitution::default(),
            &CompositionOptions::default(),
        )
        .unwrap();
        assert!(cert.holds(), "{}", cert.display(&vars));
        assert!(cert.conclusion.contains("impl"));

        // Wrong upper: m never changes.
        let upper_frozen = ComponentSpec::builder("frozen")
            .outputs([m])
            .inputs([e])
            .init(Init::new([(m, Value::Int(0))]))
            .build()
            .unwrap();
        let cert = refine(
            &vars,
            &env,
            &lower,
            &upper_frozen,
            Substitution::default(),
            &CompositionOptions::default(),
        )
        .unwrap();
        assert!(!cert.holds());
    }

    #[test]
    fn exhausted_budget_yields_undecided_certificate() {
        let (vars, ag_c, ag_d, target) = fig1_safety_setup();
        let problem = CompositionProblem {
            vars: &vars,
            components: vec![&ag_c, &ag_d],
            target: &target,
            mapping: Substitution::default(),
        };
        let options = CompositionOptions {
            budget: Budget::default().states(0),
            ..CompositionOptions::default()
        };
        let cert = compose(&problem, &options).unwrap();
        // Undecided, not refuted: no failure, but no proof either.
        assert!(!cert.holds());
        assert!(!cert.decided());
        assert!(cert.first_failure().is_none());
        let und = cert.first_undecided().unwrap();
        assert_eq!(und.id, "exploration");
        let text = cert.display(&vars).to_string();
        assert!(text.contains("UNDECIDED"), "{text}");
        assert!(text.contains("state limit of 0"), "{text}");
        // Escalating the budget recovers the full proof.
        let cert = opentla_check::escalate(&options.budget.states(1), 4, 4, |b| {
            compose(
                &problem,
                &CompositionOptions {
                    budget: b.clone(),
                    ..CompositionOptions::default()
                },
            )
        })
        .unwrap();
        assert!(cert.holds(), "{}", cert.display(&vars));
        assert_eq!(cert.obligations.len(), 6);
    }

    #[test]
    fn mapping_domain_validated() {
        let (vars, ag_c, ag_d, target) = fig1_safety_setup();
        // A mapping for a variable that is not an internal of the target.
        let c = vars.find("c").unwrap();
        let problem = CompositionProblem {
            vars: &vars,
            components: vec![&ag_c, &ag_d],
            target: &target,
            mapping: Substitution::new([(c, Expr::int(0))]),
        };
        assert!(matches!(
            compose(&problem, &CompositionOptions::default()),
            Err(SpecError::MappingDomain { .. })
        ));
    }

    #[test]
    fn liveness_obligation_failure_reported() {
        // Target guarantee demands WF on an action the components never
        // take: H2b must fail with a fair lasso.
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let idle_c = ComponentSpec::builder("idle_c")
            .outputs([c])
            .inputs([d])
            .init(Init::new([(c, Value::Int(0))]))
            .build()
            .unwrap();
        let idle_d = ComponentSpec::builder("idle_d")
            .outputs([d])
            .inputs([c])
            .init(Init::new([(d, Value::Int(0))]))
            .build()
            .unwrap();
        let env_c = ComponentSpec::builder("E_c-any")
            .outputs([d])
            .inputs([c])
            .init(Init::new([(d, Value::Int(0))]))
            .build()
            .unwrap();
        let env_d = ComponentSpec::builder("E_d-any")
            .outputs([c])
            .inputs([d])
            .init(Init::new([(c, Value::Int(0))]))
            .build()
            .unwrap();
        let ag_c = AgSpec::new(env_c, idle_c).unwrap();
        let ag_d = AgSpec::new(env_d, idle_d).unwrap();
        // Target: c must eventually be set to 1, with WF on the setter.
        let eager = ComponentSpec::builder("eager")
            .outputs([c, d])
            .init(Init::new([(c, Value::Int(0)), (d, Value::Int(0))]))
            .action(GuardedAction::new(
                "set_c",
                Expr::var(c).eq(Expr::int(0)),
                vec![(c, Expr::int(1))],
            ))
            .weak_fairness([0])
            .build()
            .unwrap();
        let empty_env = ComponentSpec::builder("TRUE").build().unwrap();
        let target = AgSpec::new(empty_env, eager).unwrap();
        let problem = CompositionProblem {
            vars: &vars,
            components: vec![&ag_c, &ag_d],
            target: &target,
            mapping: Substitution::default(),
        };
        let cert = compose(&problem, &CompositionOptions::default()).unwrap();
        assert!(!cert.holds());
        let failure = cert.first_failure().unwrap();
        assert!(failure.id.starts_with("H2b"), "{}", failure.id);
        assert!(matches!(failure.method, Method::Liveness));
        // With liveness skipped, the (unsound for liveness, but useful
        // for safety studies) certificate passes.
        let cert = compose(
            &problem,
            &CompositionOptions {
                skip_liveness: true,
                ..CompositionOptions::default()
            },
        )
        .unwrap();
        assert!(cert.holds());
    }
}
