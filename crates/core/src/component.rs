//! Canonical-form component specifications (Section 2.2 of the paper).

use crate::SpecError;
use opentla_check::{GuardedAction, Init};
use opentla_kernel::{
    Expr, Fairness, FairnessKind, Formula, Renaming, VarId, VarSet,
};

/// A component specification in the paper's canonical form
/// `∃x : Init ∧ □[N]_{⟨m,x⟩} ∧ L`:
///
/// * `m` — the [`outputs`](ComponentSpec::outputs): variables only this
///   component changes;
/// * `x` — the [`internals`](ComponentSpec::internals): hidden state;
/// * `e` — the [`inputs`](ComponentSpec::inputs): variables the
///   component reads but never changes;
/// * `Init` — the initial condition, over `m ∪ x` only;
/// * `N` — the next-state action, the disjunction of guarded commands
///   that update owned variables only (hence `N ⇒ (e' = e)`, the
///   interleaving condition);
/// * `L` — a conjunction of `WF`/`SF` conditions over sub-actions of
///   `N`, which is exactly the side condition of **Proposition 1**, so
///   [`ComponentSpec::closure`] is computed syntactically.
///
/// Build with [`ComponentSpec::builder`]; all canonical-form side
/// conditions are validated at [`ComponentBuilder::build`] time.
///
/// # Example
///
/// A one-place buffer that latches its input:
///
/// ```
/// use opentla::ComponentSpec;
/// use opentla_check::{GuardedAction, Init};
/// use opentla_kernel::{Domain, Expr, Value, Vars};
///
/// # fn main() -> Result<(), opentla::SpecError> {
/// let mut vars = Vars::new();
/// let out = vars.declare("out", Domain::bits());
/// let full = vars.declare("full", Domain::bits());
/// let inp = vars.declare("inp", Domain::bits());
/// let buffer = ComponentSpec::builder("buffer")
///     .outputs([out])
///     .internals([full])
///     .inputs([inp])
///     .init(Init::new([(out, Value::Int(0)), (full, Value::Int(0))]))
///     .action(GuardedAction::new(
///         "latch",
///         Expr::var(full).eq(Expr::int(0)),
///         vec![(out, Expr::var(inp)), (full, Expr::int(1))],
///     ))
///     .weak_fairness([0])
///     .build()?;
/// // Proposition 1, by construction: the closure is the safety part.
/// assert_eq!(buffer.closure(), buffer.safety_formula());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ComponentSpec {
    name: String,
    outputs: Vec<VarId>,
    internals: Vec<VarId>,
    inputs: Vec<VarId>,
    init: Init,
    actions: Vec<GuardedAction>,
    fairness: Vec<(FairnessKind, Vec<usize>)>,
}

impl ComponentSpec {
    /// Starts building a component.
    pub fn builder(name: impl Into<String>) -> ComponentBuilder {
        ComponentBuilder {
            name: name.into(),
            outputs: Vec::new(),
            internals: Vec::new(),
            inputs: Vec::new(),
            init: Init::default(),
            actions: Vec::new(),
            fairness: Vec::new(),
        }
    }

    /// The component's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The output variables `m`.
    pub fn outputs(&self) -> &[VarId] {
        &self.outputs
    }

    /// The internal variables `x`.
    pub fn internals(&self) -> &[VarId] {
        &self.internals
    }

    /// The input variables `e`.
    pub fn inputs(&self) -> &[VarId] {
        &self.inputs
    }

    /// The owned variables `⟨m, x⟩` — the subscript of `□[N]_v` and of
    /// the fairness conditions.
    pub fn owned(&self) -> Vec<VarId> {
        self.outputs
            .iter()
            .chain(self.internals.iter())
            .copied()
            .collect()
    }

    /// The initial condition.
    pub fn init(&self) -> &Init {
        &self.init
    }

    /// The guarded actions whose disjunction is `N`.
    pub fn actions(&self) -> &[GuardedAction] {
        &self.actions
    }

    /// The fairness conditions (kind, action indices).
    pub fn fairness(&self) -> &[(FairnessKind, Vec<usize>)] {
        &self.fairness
    }

    /// Whether the component has fairness conditions (i.e. is more than
    /// a safety property).
    pub fn has_fairness(&self) -> bool {
        !self.fairness.is_empty()
    }

    /// The frame over which an action expression is formed: owned
    /// variables plus inputs (so the action asserts `e' = e`).
    fn frame(&self) -> Vec<VarId> {
        self.owned()
            .into_iter()
            .chain(self.inputs.iter().copied())
            .collect()
    }

    /// The next-state action `N` as an expression.
    pub fn next_expr(&self) -> Expr {
        let frame = self.frame();
        Expr::any(self.actions.iter().map(|a| a.action_expr(&frame)))
    }

    /// One fairness condition as a kernel [`Fairness`].
    pub fn fairness_condition(&self, index: usize) -> Fairness {
        let (kind, ids) = &self.fairness[index];
        let frame = self.frame();
        let action = Expr::any(ids.iter().map(|i| self.actions[*i].action_expr(&frame)));
        Fairness {
            kind: *kind,
            action,
            sub: self.owned(),
        }
    }

    /// The enabledness of one fairness condition's angle action,
    /// `Enabled ⟨A_{k1} ∨ … ∨ A_{km}⟩_{⟨m,x⟩}`, as a state predicate:
    /// some listed action's guard holds and firing it would change an
    /// owned variable.
    ///
    /// For guarded commands this is *exact* over the abstract universe
    /// (updates within the guard always produce a legal state), which
    /// is what refinement-mapped fairness obligations must use —
    /// `Enabled` does not commute with substitution, so the mapped
    /// angle action's enabledness must be computed abstractly and then
    /// mapped, not re-derived from concrete successors.
    pub fn fairness_enabled_expr(&self, index: usize) -> Expr {
        let (_, ids) = &self.fairness[index];
        Expr::any(ids.iter().map(|k| {
            let action = &self.actions[*k];
            let changes = Expr::any(
                action
                    .updates()
                    .iter()
                    .map(|(v, upd)| upd.clone().ne(Expr::var(*v))),
            );
            action.guard().clone().and(changes)
        }))
    }

    /// The safety part `Init ∧ □[N]_{⟨m,x⟩}` (internals visible).
    pub fn safety_formula(&self) -> Formula {
        Formula::pred(self.init.as_pred())
            .and(Formula::act_box(self.next_expr(), self.owned()))
    }

    /// The full canonical formula `Init ∧ □[N]_v ∧ L` (internals
    /// visible).
    pub fn formula(&self) -> Formula {
        let mut f = self.safety_formula();
        for i in 0..self.fairness.len() {
            f = f.and(Formula::Fair(self.fairness_condition(i)));
        }
        f
    }

    /// The component's specification with internals hidden:
    /// `∃x : Init ∧ □[N]_v ∧ L`.
    pub fn hidden_formula(&self) -> Formula {
        Formula::exists(self.internals.clone(), self.formula())
    }

    /// The closure `C(spec)` — by **Proposition 1**, simply the safety
    /// part `Init ∧ □[N]_v`, because every fairness condition is over a
    /// sub-action of `N` (enforced at build time).
    pub fn closure(&self) -> Formula {
        self.safety_formula()
    }

    /// The closure with internals hidden. Sound by **Proposition 2**'s
    /// machinery (see [`crate::proposition_2_sides`]).
    pub fn hidden_closure(&self) -> Formula {
        Formula::exists(self.internals.clone(), self.closure())
    }

    /// A copy of the component under a variable renaming — the paper's
    /// `F[1] = F[z/o, q1/q]` constructions.
    pub fn rename(&self, name: impl Into<String>, renaming: &Renaming) -> ComponentSpec {
        let map = |vs: &[VarId]| vs.iter().map(|v| renaming.var(*v)).collect::<Vec<_>>();
        let init = {
            let mut init = Init::new(
                self.init
                    .fixed()
                    .iter()
                    .map(|(v, val)| (renaming.var(*v), val.clone())),
            );
            if let Some(c) = self.init.constraint() {
                init = init.with_constraint(renaming.expr(c));
            }
            init
        };
        let actions = self
            .actions
            .iter()
            .map(|a| {
                GuardedAction::new(
                    a.name().to_string(),
                    renaming.expr(a.guard()),
                    a.updates()
                        .iter()
                        .map(|(v, e)| (renaming.var(*v), renaming.expr(e)))
                        .collect(),
                )
            })
            .collect();
        ComponentSpec {
            name: name.into(),
            outputs: map(&self.outputs),
            internals: map(&self.internals),
            inputs: map(&self.inputs),
            init,
            actions,
            fairness: self.fairness.clone(),
        }
    }
}

/// Builder for [`ComponentSpec`]; see [`ComponentSpec::builder`].
#[derive(Clone, Debug)]
pub struct ComponentBuilder {
    name: String,
    outputs: Vec<VarId>,
    internals: Vec<VarId>,
    inputs: Vec<VarId>,
    init: Init,
    actions: Vec<GuardedAction>,
    fairness: Vec<(FairnessKind, Vec<usize>)>,
}

impl ComponentBuilder {
    /// Declares output variables (the tuple `m`).
    pub fn outputs(mut self, vars: impl IntoIterator<Item = VarId>) -> Self {
        self.outputs.extend(vars);
        self
    }

    /// Declares internal variables (the tuple `x`).
    pub fn internals(mut self, vars: impl IntoIterator<Item = VarId>) -> Self {
        self.internals.extend(vars);
        self
    }

    /// Declares input variables (the tuple `e`).
    pub fn inputs(mut self, vars: impl IntoIterator<Item = VarId>) -> Self {
        self.inputs.extend(vars);
        self
    }

    /// Sets the initial condition.
    pub fn init(mut self, init: Init) -> Self {
        self.init = init;
        self
    }

    /// Adds one guarded action (a disjunct of `N`), returning its
    /// index for use in fairness conditions.
    pub fn action(mut self, action: GuardedAction) -> Self {
        self.actions.push(action);
        self
    }

    /// Adds several actions.
    pub fn actions(mut self, actions: impl IntoIterator<Item = GuardedAction>) -> Self {
        self.actions.extend(actions);
        self
    }

    /// Adds `WF_{⟨m,x⟩}(∨ of the listed actions)`.
    pub fn weak_fairness(mut self, action_ids: impl IntoIterator<Item = usize>) -> Self {
        self.fairness
            .push((FairnessKind::Weak, action_ids.into_iter().collect()));
        self
    }

    /// Adds `SF_{⟨m,x⟩}(∨ of the listed actions)`.
    pub fn strong_fairness(mut self, action_ids: impl IntoIterator<Item = usize>) -> Self {
        self.fairness
            .push((FairnessKind::Strong, action_ids.into_iter().collect()));
        self
    }

    /// Validates and builds the component.
    ///
    /// # Errors
    ///
    /// * [`SpecError::OverlappingRoles`] if a variable appears in two of
    ///   the outputs/internals/inputs lists;
    /// * [`SpecError::ForeignUpdate`] if an action updates a variable
    ///   outside `m ∪ x`;
    /// * [`SpecError::ForeignInit`] if the initial condition constrains
    ///   a variable outside `m ∪ x`;
    /// * [`SpecError::FairnessOutOfRange`] for bad fairness indices.
    pub fn build(self) -> Result<ComponentSpec, SpecError> {
        let out_set: VarSet = self.outputs.iter().copied().collect();
        let int_set: VarSet = self.internals.iter().copied().collect();
        let in_set: VarSet = self.inputs.iter().copied().collect();
        for v in out_set.iter() {
            if int_set.contains(v) || in_set.contains(v) {
                return Err(SpecError::OverlappingRoles {
                    component: self.name,
                    var: v,
                });
            }
        }
        for v in int_set.iter() {
            if in_set.contains(v) {
                return Err(SpecError::OverlappingRoles {
                    component: self.name,
                    var: v,
                });
            }
        }
        let mut owned = out_set.clone();
        owned.union_with(&int_set);
        for a in &self.actions {
            for v in a.touched() {
                if !owned.contains(v) {
                    return Err(SpecError::ForeignUpdate {
                        component: self.name,
                        action: a.name().to_string(),
                        var: v,
                    });
                }
            }
        }
        for (v, _) in self.init.fixed() {
            if !owned.contains(*v) {
                return Err(SpecError::ForeignInit {
                    component: self.name,
                    var: *v,
                });
            }
        }
        if let Some(c) = self.init.constraint() {
            for v in c.unprimed_vars().iter() {
                if !owned.contains(v) {
                    return Err(SpecError::ForeignInit {
                        component: self.name,
                        var: v,
                    });
                }
            }
        }
        for (_, ids) in &self.fairness {
            for id in ids {
                if *id >= self.actions.len() {
                    return Err(SpecError::FairnessOutOfRange {
                        component: self.name,
                        index: *id,
                    });
                }
            }
        }
        Ok(ComponentSpec {
            name: self.name,
            outputs: self.outputs,
            internals: self.internals,
            inputs: self.inputs,
            init: self.init,
            actions: self.actions,
            fairness: self.fairness,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::{Domain, Value, Vars};

    fn setup() -> (Vars, VarId, VarId, VarId) {
        let mut vars = Vars::new();
        let m = vars.declare("m", Domain::bits());
        let x = vars.declare("x", Domain::bits());
        let e = vars.declare("e", Domain::bits());
        (vars, m, x, e)
    }

    fn copy_component(m: VarId, x: VarId, e: VarId) -> ComponentSpec {
        // Copies input e to output m via internal x.
        ComponentSpec::builder("copier")
            .outputs([m])
            .internals([x])
            .inputs([e])
            .init(Init::new([(m, Value::Int(0)), (x, Value::Int(0))]))
            .action(GuardedAction::new(
                "latch",
                Expr::bool(true),
                vec![(x, Expr::var(e))],
            ))
            .action(GuardedAction::new(
                "emit",
                Expr::bool(true),
                vec![(m, Expr::var(x))],
            ))
            .weak_fairness([0, 1])
            .build()
            .expect("well-formed")
    }

    #[test]
    fn builder_accepts_canonical_component() {
        let (_, m, x, e) = setup();
        let c = copy_component(m, x, e);
        assert_eq!(c.name(), "copier");
        assert_eq!(c.owned(), vec![m, x]);
        assert!(c.has_fairness());
    }

    #[test]
    fn foreign_update_rejected() {
        let (_, m, x, e) = setup();
        let r = ComponentSpec::builder("bad")
            .outputs([m])
            .internals([x])
            .inputs([e])
            .action(GuardedAction::new(
                "cheat",
                Expr::bool(true),
                vec![(e, Expr::int(1))],
            ))
            .build();
        assert!(matches!(r, Err(SpecError::ForeignUpdate { .. })));
    }

    #[test]
    fn overlapping_roles_rejected() {
        let (_, m, _, e) = setup();
        let r = ComponentSpec::builder("bad")
            .outputs([m])
            .inputs([m, e])
            .build();
        assert!(matches!(r, Err(SpecError::OverlappingRoles { .. })));
    }

    #[test]
    fn foreign_init_rejected() {
        let (_, m, _, e) = setup();
        let r = ComponentSpec::builder("bad")
            .outputs([m])
            .inputs([e])
            .init(Init::new([(e, Value::Int(0))]))
            .build();
        assert!(matches!(r, Err(SpecError::ForeignInit { .. })));
        let r = ComponentSpec::builder("bad")
            .outputs([m])
            .inputs([e])
            .init(Init::new([]).with_constraint(Expr::var(e).eq(Expr::int(0))))
            .build();
        assert!(matches!(r, Err(SpecError::ForeignInit { .. })));
    }

    #[test]
    fn fairness_bounds_checked() {
        let (_, m, _, _) = setup();
        let r = ComponentSpec::builder("bad")
            .outputs([m])
            .weak_fairness([2])
            .build();
        assert!(matches!(r, Err(SpecError::FairnessOutOfRange { .. })));
    }

    #[test]
    fn closure_is_safety_part() {
        let (_, m, x, e) = setup();
        let c = copy_component(m, x, e);
        // Proposition 1: C(Init ∧ □[N]_v ∧ WF) = Init ∧ □[N]_v.
        assert_eq!(c.closure(), c.safety_formula());
        // The full formula has the fairness conjunct.
        assert_ne!(c.formula(), c.safety_formula());
    }

    #[test]
    fn actions_assert_inputs_unchanged() {
        let (_, m, x, e) = setup();
        let c = copy_component(m, x, e);
        // The interleaving condition: N ⇒ (e' = e).
        let n = c.next_expr();
        assert!(n.primed_vars().contains(e), "frame includes the input");
        use opentla_kernel::{State, StatePair};
        let s = State::new(vec![Value::Int(0), Value::Int(0), Value::Int(1)]);
        // A step that copies e into x but also flips e: not an N step.
        let t = State::new(vec![Value::Int(0), Value::Int(1), Value::Int(0)]);
        assert!(!n.holds_action(StatePair::new(&s, &t)).unwrap());
        // Same step with e held: an N step.
        let t = State::new(vec![Value::Int(0), Value::Int(1), Value::Int(1)]);
        assert!(n.holds_action(StatePair::new(&s, &t)).unwrap());
    }

    #[test]
    fn hidden_formula_binds_internals() {
        let (_, m, x, e) = setup();
        let c = copy_component(m, x, e);
        let hidden = c.hidden_formula();
        let fv = hidden.free_vars();
        assert!(fv.contains(m));
        assert!(fv.contains(e));
        assert!(!fv.contains(x));
        let cl = c.hidden_closure();
        assert!(!cl.free_vars().contains(x));
    }

    #[test]
    fn renaming_produces_instance() {
        let (mut vars, m, x, e) = setup();
        let m2 = vars.declare("m2", Domain::bits());
        let x2 = vars.declare("x2", Domain::bits());
        let c = copy_component(m, x, e);
        let r = Renaming::new([(m, m2), (x, x2)]);
        let c2 = c.rename("copier2", &r);
        assert_eq!(c2.outputs(), &[m2]);
        assert_eq!(c2.internals(), &[x2]);
        assert_eq!(c2.inputs(), &[e]);
        assert_eq!(c2.actions().len(), 2);
        assert_eq!(c2.init().fixed().len(), 2);
        assert_eq!(c2.init().fixed()[0].0, m2);
    }

    #[test]
    fn empty_component_is_legal() {
        // The target environment of a closed system: no variables at
        // all (E = TRUE).
        let c = ComponentSpec::builder("true-env").build().expect("legal");
        assert!(c.owned().is_empty());
        assert_eq!(c.safety_formula().free_vars().len(), 0);
    }

    #[test]
    fn fairness_condition_shape() {
        let (_, m, x, e) = setup();
        let c = copy_component(m, x, e);
        let fair = c.fairness_condition(0);
        assert_eq!(fair.kind, FairnessKind::Weak);
        assert_eq!(fair.sub, vec![m, x]);
        let _ = e;
    }
}
