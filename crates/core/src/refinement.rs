//! Complete-system refinement under a refinement mapping.
//!
//! Section A.4 of the paper proves `CDQ ⇒ CQ[dbl]` "by standard TLA
//! reasoning using a simple refinement mapping". This module packages
//! that standard reasoning: a concrete [`System`] implements the
//! conjunction of abstract [`ComponentSpec`]s when
//!
//! 1. (safety) every reachable state/transition satisfies the mapped
//!    initial conditions and step boxes — step simulation; and
//! 2. (liveness) every fair behavior satisfies each abstract fairness
//!    condition, checked with the *abstract* enabledness mapped through
//!    the refinement (`Enabled` does not commute with substitution).

use crate::{ComponentSpec, SpecError};
use opentla_check::{
    check_liveness, check_simulation, LiveTarget, SimulationReport, StateGraph, System,
    Verdict,
};
use opentla_kernel::{Formula, Substitution};

/// The result of a complete-system refinement check.
#[derive(Clone, Debug)]
pub struct RefinementReport {
    /// The safety (step-simulation) half.
    pub simulation: SimulationReport,
    /// One verdict per abstract fairness condition, labeled
    /// `"component/fairness[k]"`.
    pub liveness: Vec<(String, Verdict)>,
}

impl RefinementReport {
    /// Whether both halves hold.
    pub fn holds(&self) -> bool {
        self.simulation.holds() && self.liveness.iter().all(|(_, v)| v.holds())
    }
}

/// Checks that every behavior of `system` implements the conjunction
/// of the `abstracts` component specifications, with the target
/// components' internal variables eliminated by `mapping`.
///
/// This is the paper's complete-system refinement (its step 3 /
/// Section A.4), exposed as a standalone rule; `opentla-queue`'s
/// `DoubleQueue::prove_refinement` is an instance.
///
/// # Errors
///
/// Engine errors only ([`SpecError`]); refuted refinements are reported
/// in the [`RefinementReport`].
pub fn check_component_refinement(
    system: &System,
    graph: &StateGraph,
    abstracts: &[&ComponentSpec],
    mapping: &Substitution,
) -> Result<RefinementReport, SpecError> {
    // Safety: the conjunction of the abstract safety formulas, mapped.
    let target = Formula::all(abstracts.iter().map(|c| c.safety_formula()));
    let simulation = check_simulation(system, graph, &target, mapping)?;

    // Liveness: each abstract fairness condition under the mapping,
    // with abstract enabledness.
    let mut liveness = Vec::new();
    for c in abstracts {
        for k in 0..c.fairness().len() {
            let fair = Formula::Fair(c.fairness_condition(k));
            let mapped = mapping.formula(&fair)?;
            let Formula::Fair(mapped_fair) = mapped else {
                unreachable!("substitution preserves Fair")
            };
            let enabled = mapping.expr(&c.fairness_enabled_expr(k))?;
            let verdict = check_liveness(
                system,
                graph,
                &LiveTarget::fair_with_enabled(mapped_fair, enabled),
            )?;
            liveness.push((format!("{}/fairness[{k}]", c.name()), verdict));
        }
    }
    Ok(RefinementReport {
        simulation,
        liveness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_product;
    use opentla_check::{explore, ExploreOptions, GuardedAction, Init};
    use opentla_kernel::{Domain, Expr, Value, VarId, Vars};

    /// A two-phase counter (lo/hi bits) refining an abstract mod-4
    /// counter with fairness.
    fn setup() -> (Vars, ComponentSpec, ComponentSpec, VarId) {
        let mut vars = Vars::new();
        let lo = vars.declare("lo", Domain::bits());
        let hi = vars.declare("hi", Domain::bits());
        let n = vars.declare("n", Domain::int_range(0, 3));
        let concrete = ComponentSpec::builder("bits")
            .outputs([lo, hi])
            .init(Init::new([(lo, Value::Int(0)), (hi, Value::Int(0))]))
            .action(GuardedAction::new(
                "tick",
                Expr::bool(true),
                vec![
                    (lo, Expr::int(1).sub(Expr::var(lo))),
                    (
                        hi,
                        Expr::var(lo)
                            .eq(Expr::int(1))
                            .ite(Expr::int(1).sub(Expr::var(hi)), Expr::var(hi)),
                    ),
                ],
            ))
            .weak_fairness([0])
            .build()
            .unwrap();
        let abstract_counter = ComponentSpec::builder("counter")
            .outputs([n])
            .init(Init::new([(n, Value::Int(0))]))
            .action(GuardedAction::new(
                "incr",
                Expr::bool(true),
                vec![(
                    n,
                    Expr::var(n)
                        .eq(Expr::int(3))
                        .ite(Expr::int(0), Expr::var(n).add(Expr::int(1))),
                )],
            ))
            .weak_fairness([0])
            .build()
            .unwrap();
        (vars, concrete, abstract_counter, n)
    }

    #[test]
    fn counter_refinement_holds() {
        let (vars, concrete, abstract_counter, n) = setup();
        let sys = closed_product(&vars, &[&concrete]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let lo = vars.find("lo").unwrap();
        let hi = vars.find("hi").unwrap();
        let mapping = Substitution::new([(
            n,
            Expr::int(2).mul(Expr::var(hi)).add(Expr::var(lo)),
        )]);
        let report =
            check_component_refinement(&sys, &graph, &[&abstract_counter], &mapping)
                .unwrap();
        assert!(report.holds(), "{:?}", report);
        assert_eq!(report.liveness.len(), 1);
        assert!(report.liveness[0].0.contains("counter"));
    }

    #[test]
    fn liveness_refinement_fails_without_concrete_fairness() {
        // Same refinement but the concrete system drops its WF: the
        // abstract counter's fairness cannot be discharged (the system
        // may stutter forever while the abstract incr stays enabled).
        let (vars, concrete, abstract_counter, n) = setup();
        let unfair = ComponentSpec::builder("bits-unfair")
            .outputs(concrete.outputs().to_vec())
            .init(concrete.init().clone())
            .actions(concrete.actions().to_vec())
            .build()
            .unwrap();
        let sys = closed_product(&vars, &[&unfair]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let lo = vars.find("lo").unwrap();
        let hi = vars.find("hi").unwrap();
        let mapping = Substitution::new([(
            n,
            Expr::int(2).mul(Expr::var(hi)).add(Expr::var(lo)),
        )]);
        let report =
            check_component_refinement(&sys, &graph, &[&abstract_counter], &mapping)
                .unwrap();
        assert!(report.simulation.holds(), "safety half is unaffected");
        assert!(!report.holds(), "liveness half must fail");
        let (_, verdict) = &report.liveness[0];
        assert!(verdict.counterexample().is_some());
    }
}
