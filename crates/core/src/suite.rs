//! Verification suites: named batches of checks with one report.
//!
//! Reproductions and regression baselines typically run *many* checks
//! against one system — invariants, step invariants, liveness targets,
//! and composition certificates. A [`Suite`] collects them with names
//! and produces a single pass/fail report (the `experiments` binary of
//! `opentla-bench` is essentially a hand-rolled one of these).

use crate::{Certificate, SpecError};
use opentla_check::{
    check_invariant, check_liveness, check_liveness_governed, check_step_invariant,
    Budget, LiveTarget, StateGraph, System,
};
use opentla_kernel::{Expr, VarId};
use std::fmt;

/// What kind of check a suite entry was.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckKind {
    /// A state invariant.
    Invariant,
    /// A step (action) invariant.
    StepInvariant,
    /// A liveness target.
    Liveness,
    /// A composition/refinement certificate.
    Certificate,
    /// A caller-recorded fact.
    Recorded,
}

impl CheckKind {
    /// The kind's wire name in observability `check` events
    /// (snake_case, unlike [`Display`](fmt::Display)'s prose form).
    pub fn wire_name(&self) -> &'static str {
        match self {
            CheckKind::Invariant => "invariant",
            CheckKind::StepInvariant => "step_invariant",
            CheckKind::Liveness => "liveness",
            CheckKind::Certificate => "certificate",
            CheckKind::Recorded => "recorded",
        }
    }
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckKind::Invariant => "invariant",
            CheckKind::StepInvariant => "step invariant",
            CheckKind::Liveness => "liveness",
            CheckKind::Certificate => "certificate",
            CheckKind::Recorded => "recorded",
        };
        f.write_str(s)
    }
}

/// One named check and its outcome.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// The check's name.
    pub name: String,
    /// What was checked.
    pub kind: CheckKind,
    /// Whether it passed.
    pub holds: bool,
    /// A short human-readable detail (counterexample reason, conclusion,
    /// …).
    pub detail: String,
}

/// A named batch of verification checks.
///
/// # Example
///
/// ```
/// use opentla::Suite;
/// use opentla_check::{explore, ExploreOptions, GuardedAction, Init, System};
/// use opentla_kernel::{Domain, Expr, Value, Vars};
///
/// # fn main() -> Result<(), opentla::SpecError> {
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::int_range(0, 3));
/// let incr = GuardedAction::new(
///     "incr",
///     Expr::var(x).lt(Expr::int(3)),
///     vec![(x, Expr::var(x).add(Expr::int(1)))],
/// );
/// let sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr]);
/// let graph = explore(&sys, &ExploreOptions::default())?;
/// let mut suite = Suite::new("counter");
/// suite.invariant("bounded", &sys, &graph, &Expr::var(x).le(Expr::int(3)))?;
/// suite.invariant("too tight", &sys, &graph, &Expr::var(x).lt(Expr::int(3)))?;
/// assert!(!suite.holds());
/// assert_eq!(suite.entries().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Suite {
    name: String,
    entries: Vec<SuiteEntry>,
}

impl Suite {
    /// An empty suite.
    pub fn new(name: impl Into<String>) -> Suite {
        Suite {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// The suite's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All entries, in execution order.
    pub fn entries(&self) -> &[SuiteEntry] {
        &self.entries
    }

    /// Whether every entry passed.
    pub fn holds(&self) -> bool {
        self.entries.iter().all(|e| e.holds)
    }

    /// The failing entries.
    pub fn failures(&self) -> impl Iterator<Item = &SuiteEntry> {
        self.entries.iter().filter(|e| !e.holds)
    }

    /// Records an entry, mirroring it to the process-wide observability
    /// recorder (`OPENTLA_OBS`) as a `check` event under the `suite`
    /// phase — every way of adding an entry funnels through here.
    fn push(&mut self, entry: SuiteEntry) {
        let rec = opentla_check::obs::global();
        if rec.enabled() {
            let _phase = opentla_check::obs::PhaseGuard::enter(
                &rec,
                opentla_check::obs::Phase::Suite,
            );
            rec.record(&opentla_check::Event::Check {
                kind: entry.kind.wire_name(),
                name: &entry.name,
                holds: entry.holds,
            });
        }
        self.entries.push(entry);
    }

    /// Runs and records a state-invariant check; returns whether it
    /// held.
    ///
    /// # Errors
    ///
    /// Engine errors from the checker.
    pub fn invariant(
        &mut self,
        name: impl Into<String>,
        system: &System,
        graph: &StateGraph,
        pred: &Expr,
    ) -> Result<bool, SpecError> {
        let verdict = check_invariant(system, graph, pred)?;
        let holds = verdict.holds();
        self.push(SuiteEntry {
            name: name.into(),
            kind: CheckKind::Invariant,
            holds,
            detail: verdict
                .counterexample()
                .map_or_else(|| format!("{} states", graph.len()), |c| c.reason().to_string()),
        });
        Ok(holds)
    }

    /// Runs and records a step-invariant check.
    ///
    /// # Errors
    ///
    /// Engine errors from the checker.
    pub fn step_invariant(
        &mut self,
        name: impl Into<String>,
        system: &System,
        graph: &StateGraph,
        action: &Expr,
        sub: &[VarId],
    ) -> Result<bool, SpecError> {
        let verdict = check_step_invariant(system, graph, action, sub)?;
        let holds = verdict.holds();
        self.push(SuiteEntry {
            name: name.into(),
            kind: CheckKind::StepInvariant,
            holds,
            detail: verdict
                .counterexample()
                .map_or_else(|| format!("{} transitions", graph.edge_count()), |c| {
                    c.reason().to_string()
                }),
        });
        Ok(holds)
    }

    /// Runs and records a liveness check.
    ///
    /// # Errors
    ///
    /// Engine errors from the checker.
    pub fn liveness(
        &mut self,
        name: impl Into<String>,
        system: &System,
        graph: &StateGraph,
        target: &LiveTarget,
    ) -> Result<bool, SpecError> {
        let verdict = check_liveness(system, graph, target)?;
        let holds = verdict.holds();
        self.push(SuiteEntry {
            name: name.into(),
            kind: CheckKind::Liveness,
            holds,
            detail: verdict
                .counterexample()
                .map_or_else(|| "no fair violation".to_string(), |c| c.reason().to_string()),
        });
        Ok(holds)
    }

    /// Runs and records a liveness check under a resource [`Budget`].
    ///
    /// Returns `Some(holds)` when the check was decided within the
    /// budget, and `None` when the budget ran out — the entry is then
    /// recorded as *not* passing (conservatively), with the exhaustion
    /// outcome in its detail, so a partial suite never reads as a
    /// clean pass.
    ///
    /// # Errors
    ///
    /// Engine errors from the checker.
    pub fn liveness_governed(
        &mut self,
        name: impl Into<String>,
        system: &System,
        graph: &StateGraph,
        target: &LiveTarget,
        budget: &Budget,
    ) -> Result<Option<bool>, SpecError> {
        let run = check_liveness_governed(system, graph, target, budget)?;
        match run.verdict {
            Some(verdict) => {
                let holds = verdict.holds();
                self.push(SuiteEntry {
                    name: name.into(),
                    kind: CheckKind::Liveness,
                    holds,
                    detail: verdict.counterexample().map_or_else(
                        || "no fair violation".to_string(),
                        |c| c.reason().to_string(),
                    ),
                });
                Ok(Some(holds))
            }
            None => {
                self.push(SuiteEntry {
                    name: name.into(),
                    kind: CheckKind::Liveness,
                    holds: false,
                    detail: format!("undecided: {}", run.outcome),
                });
                Ok(None)
            }
        }
    }

    /// Records a composition/refinement certificate.
    pub fn certificate(&mut self, name: impl Into<String>, cert: &Certificate) -> bool {
        let holds = cert.holds();
        self.push(SuiteEntry {
            name: name.into(),
            kind: CheckKind::Certificate,
            holds,
            detail: cert.conclusion.clone(),
        });
        holds
    }

    /// Records an externally computed fact.
    pub fn record(&mut self, name: impl Into<String>, holds: bool, detail: impl Into<String>) {
        self.push(SuiteEntry {
            name: name.into(),
            kind: CheckKind::Recorded,
            holds,
            detail: detail.into(),
        });
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "suite {}: {} ({}/{} passed)",
            self.name,
            if self.holds() { "PASS" } else { "FAIL" },
            self.entries.iter().filter(|e| e.holds).count(),
            self.entries.len()
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "  {} {} [{}]  {}",
                if e.holds { "✓" } else { "✗" },
                e.name,
                e.kind,
                e.detail
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{explore, ExploreOptions, GuardedAction, Init};
    use opentla_kernel::{Domain, Value, Vars};

    fn counter() -> (System, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 3));
        let incr = GuardedAction::new(
            "incr",
            Expr::var(x).lt(Expr::int(3)),
            vec![(x, Expr::var(x).add(Expr::int(1)))],
        );
        (
            System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr]),
            x,
        )
    }

    #[test]
    fn suite_collects_mixed_checks() {
        let (sys, x) = counter();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let mut suite = Suite::new("counter");
        assert!(suite
            .invariant("bounded", &sys, &graph, &Expr::var(x).le(Expr::int(3)))
            .unwrap());
        assert!(suite
            .step_invariant(
                "increments",
                &sys,
                &graph,
                &Expr::prime(x).eq(Expr::var(x).add(Expr::int(1))),
                &[x],
            )
            .unwrap());
        assert!(!suite
            .liveness(
                "terminates (no fairness)",
                &sys,
                &graph,
                &LiveTarget::Eventually(Expr::var(x).eq(Expr::int(3))),
            )
            .unwrap());
        suite.record("external", true, "measured elsewhere");
        assert!(!suite.holds());
        assert_eq!(suite.failures().count(), 1);
        let text = suite.to_string();
        assert!(text.contains("3/4 passed"), "{text}");
        assert!(text.contains("✗ terminates"), "{text}");
        assert!(text.contains("[liveness]"), "{text}");
    }

    #[test]
    fn governed_liveness_entry_records_exhaustion() {
        let (sys, x) = counter();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let mut suite = Suite::new("governed");
        let target = LiveTarget::Eventually(Expr::var(x).eq(Expr::int(3)));
        let decided = suite
            .liveness_governed(
                "terminates",
                &sys,
                &graph,
                &target,
                &Budget::default().transitions(0),
            )
            .unwrap();
        assert!(decided.is_none());
        assert!(!suite.holds());
        let text = suite.to_string();
        assert!(text.contains("undecided"), "{text}");
        assert!(text.contains("transition limit"), "{text}");
        // With a real budget the same check decides (and fails: no
        // fairness forces termination).
        let decided = suite
            .liveness_governed(
                "terminates (retry)",
                &sys,
                &graph,
                &target,
                &Budget::unlimited(),
            )
            .unwrap();
        assert_eq!(decided, Some(false));
    }

    #[test]
    fn empty_suite_holds() {
        let suite = Suite::new("empty");
        assert!(suite.holds());
        assert_eq!(suite.entries().len(), 0);
        assert!(suite.to_string().contains("0/0"));
    }
}
