//! Export to TLA⁺ source.
//!
//! Components built with this library can be emitted as a TLA⁺ module
//! so they can be cross-checked with the standard TLA⁺ tooling (TLC,
//! TLAPS) — the natural interoperability target for a mechanization of
//! a TLA paper.
//!
//! The emitted module declares every variable, defines each
//! component's `Init`, per-action operators, `Next`, and fairness, and
//! assembles the closed-system `Spec`. Variable names are sanitized
//! (`i.sig` becomes `i_sig`).

use crate::ComponentSpec;
use opentla_check::GuardedAction;
use opentla_kernel::{BinOp, Domain, Expr, FairnessKind, UnOp, Value, VarId, Vars};
use std::fmt::Write as _;

/// Renders a [`Value`] as a TLA⁺ literal.
fn tla_value(v: &Value) -> String {
    match v {
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("{s:?}"),
        Value::Tuple(items) | Value::Seq(items) => {
            let inner: Vec<String> = items.iter().map(tla_value).collect();
            format!("<<{}>>", inner.join(", "))
        }
    }
}

/// A TLA⁺-safe identifier for a variable.
fn tla_name(vars: &Vars, v: VarId) -> String {
    vars.name(v).replace(['.', '-', ' '], "_")
}

/// Renders an expression as TLA⁺ source.
pub fn tla_expr(vars: &Vars, e: &Expr) -> String {
    match e {
        Expr::Const(v) => tla_value(v),
        Expr::Var(v) => tla_name(vars, *v),
        Expr::Prime(v) => format!("{}'", tla_name(vars, *v)),
        Expr::Unary(UnOp::Not, x) => format!("~({})", tla_expr(vars, x)),
        Expr::Unary(UnOp::Neg, x) => format!("-({})", tla_expr(vars, x)),
        Expr::Unary(UnOp::Len, x) => format!("Len({})", tla_expr(vars, x)),
        Expr::Unary(UnOp::Head, x) => format!("Head({})", tla_expr(vars, x)),
        Expr::Unary(UnOp::Tail, x) => format!("Tail({})", tla_expr(vars, x)),
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "\\div",
                BinOp::Mod => "%",
                BinOp::Eq => "=",
                BinOp::Ne => "#",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Implies => "=>",
                BinOp::Equiv => "<=>",
                BinOp::Concat => "\\o",
            };
            format!("({} {} {})", tla_expr(vars, a), sym, tla_expr(vars, b))
        }
        Expr::And(es) => {
            if es.is_empty() {
                "TRUE".to_string()
            } else {
                let inner: Vec<String> = es.iter().map(|x| tla_expr(vars, x)).collect();
                format!("({})", inner.join(" /\\ "))
            }
        }
        Expr::Or(es) => {
            if es.is_empty() {
                "FALSE".to_string()
            } else {
                let inner: Vec<String> = es.iter().map(|x| tla_expr(vars, x)).collect();
                format!("({})", inner.join(" \\/ "))
            }
        }
        Expr::Ite(c, a, b) => format!(
            "(IF {} THEN {} ELSE {})",
            tla_expr(vars, c),
            tla_expr(vars, a),
            tla_expr(vars, b)
        ),
        Expr::Tuple(es) | Expr::MkSeq(es) => {
            let inner: Vec<String> = es.iter().map(|x| tla_expr(vars, x)).collect();
            format!("<<{}>>", inner.join(", "))
        }
        Expr::InSet(x, set) => {
            let items: Vec<String> = set.iter().map(tla_value).collect();
            format!("({} \\in {{{}}})", tla_expr(vars, x), items.join(", "))
        }
    }
}

/// Renders a domain as a TLA⁺ set.
fn tla_domain(d: &Domain) -> String {
    // Contiguous integer ranges render as a..b.
    let ints: Option<Vec<i64>> = d.values().iter().map(Value::as_int).collect();
    if let Some(ints) = ints {
        if ints.len() > 1 && ints.windows(2).all(|w| w[1] == w[0] + 1) {
            return format!("{}..{}", ints[0], ints[ints.len() - 1]);
        }
    }
    let items: Vec<String> = d.values().iter().map(tla_value).collect();
    format!("{{{}}}", items.join(", "))
}

fn sanitize_op(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("A{cleaned}")
    } else {
        cleaned
    }
}

fn action_def(vars: &Vars, component: &ComponentSpec, a: &GuardedAction) -> String {
    let mut conjuncts = vec![tla_expr(vars, a.guard())];
    for (v, e) in a.updates() {
        conjuncts.push(format!("{}' = {}", tla_name(vars, *v), tla_expr(vars, e)));
    }
    let untouched: Vec<String> = component
        .owned()
        .into_iter()
        .chain(component.inputs().iter().copied())
        .filter(|v| !a.updates().iter().any(|(w, _)| w == v))
        .map(|v| tla_name(vars, v))
        .collect();
    if !untouched.is_empty() {
        conjuncts.push(format!("UNCHANGED <<{}>>", untouched.join(", ")));
    }
    conjuncts
        .iter()
        .map(|c| format!("  /\\ {c}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Emits a closed system of components as a complete TLA⁺ module.
///
/// The module contains a `TypeOK` predicate from the declared domains,
/// per-component `Init`/`Next`/action operators, the conjoined `Spec`,
/// and each component's fairness conditions.
///
/// # Example
///
/// ```
/// use opentla::{to_tla_module, ComponentSpec};
/// use opentla_check::{GuardedAction, Init};
/// use opentla_kernel::{Domain, Expr, Value, Vars};
///
/// # fn main() -> Result<(), opentla::SpecError> {
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::bits());
/// let toggler = ComponentSpec::builder("toggler")
///     .outputs([x])
///     .init(Init::new([(x, Value::Int(0))]))
///     .action(GuardedAction::new(
///         "toggle",
///         Expr::bool(true),
///         vec![(x, Expr::int(1).sub(Expr::var(x)))],
///     ))
///     .build()?;
/// let module = to_tla_module("Toggler", &vars, &[&toggler]);
/// assert!(module.contains("---- MODULE Toggler ----"));
/// assert!(module.contains("x' = (1 - x)"));
/// assert!(module.contains("Spec == Init /\\ [][Next]_vars"));
/// # Ok(())
/// # }
/// ```
pub fn to_tla_module(
    module_name: &str,
    vars: &Vars,
    components: &[&ComponentSpec],
) -> String {
    let mut out = String::new();
    let title = format!("---- MODULE {module_name} ----");
    out.push_str(&title);
    out.push('\n');
    out.push_str("EXTENDS Integers, Sequences\n\n");

    let names: Vec<String> = vars.iter().map(|v| tla_name(vars, v)).collect();
    let _ = writeln!(out, "VARIABLES {}", names.join(", "));
    let _ = writeln!(out, "vars == <<{}>>\n", names.join(", "));

    let _ = writeln!(out, "TypeOK ==");
    for v in vars.iter() {
        let _ = writeln!(
            out,
            "  /\\ {} \\in {}",
            tla_name(vars, v),
            tla_domain(vars.domain(v))
        );
    }
    out.push('\n');

    for c in components {
        let prefix = sanitize_op(c.name());
        let _ = writeln!(out, "\\* component {}", c.name());
        let _ = writeln!(out, "{prefix}Init ==");
        for (v, val) in c.init().fixed() {
            let _ = writeln!(out, "  /\\ {} = {}", tla_name(vars, *v), tla_value(val));
        }
        if let Some(constraint) = c.init().constraint() {
            let _ = writeln!(out, "  /\\ {}", tla_expr(vars, constraint));
        }
        if c.init().fixed().is_empty() && c.init().constraint().is_none() {
            let _ = writeln!(out, "  TRUE");
        }
        let mut action_ops = Vec::new();
        for a in c.actions() {
            let op = format!("{prefix}_{}", sanitize_op(a.name()));
            let _ = writeln!(out, "{op} ==\n{}", action_def(vars, c, a));
            action_ops.push(op);
        }
        if action_ops.is_empty() {
            let _ = writeln!(out, "{prefix}Next == FALSE");
        } else {
            let _ = writeln!(out, "{prefix}Next == {}", action_ops.join(" \\/ "));
        }
        out.push('\n');
    }

    let init = components
        .iter()
        .map(|c| format!("{}Init", sanitize_op(c.name())))
        .collect::<Vec<_>>()
        .join(" /\\ ");
    let next = components
        .iter()
        .map(|c| format!("{}Next", sanitize_op(c.name())))
        .collect::<Vec<_>>()
        .join(" \\/ ");
    let _ = writeln!(out, "Init == {init}");
    let _ = writeln!(out, "Next == {next}\n");

    let mut fairness = Vec::new();
    for c in components {
        let prefix = sanitize_op(c.name());
        for (k, (kind, ids)) in c.fairness().iter().enumerate() {
            let action = ids
                .iter()
                .map(|i| format!("{prefix}_{}", sanitize_op(c.actions()[*i].name())))
                .collect::<Vec<_>>()
                .join(" \\/ ");
            let sub = c
                .owned()
                .into_iter()
                .map(|v| tla_name(vars, v))
                .collect::<Vec<_>>()
                .join(", ");
            let wf = match kind {
                FairnessKind::Weak => "WF",
                FairnessKind::Strong => "SF",
            };
            let op = format!("{prefix}Fair{k}");
            let _ = writeln!(out, "{op} == {wf}_<<{sub}>>({action})");
            fairness.push(op);
        }
    }
    out.push('\n');
    let fair_conj = if fairness.is_empty() {
        String::new()
    } else {
        format!(" /\\ {}", fairness.join(" /\\ "))
    };
    let _ = writeln!(out, "Spec == Init /\\ [][Next]_vars{fair_conj}");
    out.push_str(&"=".repeat(title.chars().count()));
    out.push('\n');
    out
}

/// Emits a counterexample trace as a TLA⁺ module defining
/// `Trace == <<state₁, state₂, …>>` (each state a record) plus a
/// `LoopStart` constant for lasso counterexamples — replayable next to
/// the exported specification.
pub fn trace_to_tla_module(
    module_name: &str,
    vars: &Vars,
    cx: &opentla_check::Counterexample,
) -> String {
    let mut out = String::new();
    let title = format!("---- MODULE {module_name} ----");
    out.push_str(&title);
    out.push('\n');
    let _ = writeln!(out, "\\* {}", cx.reason());
    let _ = writeln!(out, "Trace == <<");
    for (i, (state, action)) in cx.states().iter().zip(cx.actions()).enumerate() {
        let fields: Vec<String> = vars
            .iter()
            .map(|v| {
                format!(
                    "{} |-> {}",
                    tla_name(vars, v),
                    state
                        .try_get(v)
                        .map_or("?".to_string(), tla_value)
                )
            })
            .collect();
        let label = action.as_deref().unwrap_or("init");
        let comma = if i + 1 < cx.states().len() { "," } else { "" };
        let _ = writeln!(out, "  [{}]{comma} \\* {label}", fields.join(", "));
    }
    let _ = writeln!(out, ">>");
    match cx.loop_start() {
        Some(l) => {
            // TLA⁺ sequences are 1-indexed.
            let _ = writeln!(out, "LoopStart == {}", l + 1);
        }
        None => {
            let _ = writeln!(out, "\\* finite trace: extend by stuttering");
        }
    }
    out.push_str(&"=".repeat(title.chars().count()));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::Init;
    use opentla_kernel::Domain;

    fn sample() -> (Vars, ComponentSpec, ComponentSpec) {
        let mut vars = Vars::new();
        let c = vars.declare("c.sig", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let one = ComponentSpec::builder("one")
            .outputs([c])
            .inputs([d])
            .init(Init::new([(c, Value::Int(0))]))
            .action(GuardedAction::new(
                "copy d",
                Expr::var(d).eq(Expr::int(1)),
                vec![(c, Expr::var(d))],
            ))
            .weak_fairness([0])
            .build()
            .unwrap();
        let two = ComponentSpec::builder("two")
            .outputs([d])
            .inputs([c])
            .init(Init::new([(d, Value::Int(0))]))
            .build()
            .unwrap();
        (vars, one, two)
    }

    #[test]
    fn module_structure() {
        let (vars, one, two) = sample();
        let src = to_tla_module("Sample", &vars, &[&one, &two]);
        assert!(src.starts_with("---- MODULE Sample ----"));
        assert!(src.contains("VARIABLES c_sig, d"));
        assert!(src.contains("TypeOK =="));
        assert!(src.contains("c_sig \\in 0..1"));
        assert!(src.contains("oneInit =="));
        assert!(src.contains("one_copy_d =="));
        assert!(src.contains("UNCHANGED <<d>>"));
        assert!(src.contains("oneFair0 == WF_<<c_sig>>(one_copy_d)"));
        assert!(src.contains("twoNext == FALSE"));
        assert!(src.contains("Spec == Init /\\ [][Next]_vars /\\ oneFair0"));
        assert!(src.trim_end().ends_with('='));
    }

    #[test]
    fn expr_rendering() {
        let (vars, _, _) = sample();
        let c = vars.find("c.sig").unwrap();
        let d = vars.find("d").unwrap();
        let e = Expr::prime(c).eq(Expr::int(1).sub(Expr::var(d)));
        assert_eq!(tla_expr(&vars, &e), "(c_sig' = (1 - d))");
        let e = Expr::var(c).in_set([Value::Int(0), Value::Int(1)]);
        assert_eq!(tla_expr(&vars, &e), "(c_sig \\in {0, 1})");
        let e = Expr::MkSeq(vec![Expr::var(d)]).concat(Expr::empty_seq());
        assert_eq!(tla_expr(&vars, &e), "(<<d>> \\o <<>>)");
        let e = Expr::var(d)
            .eq(Expr::int(0))
            .ite(Expr::int(1), Expr::int(2));
        assert_eq!(tla_expr(&vars, &e), "(IF (d = 0) THEN 1 ELSE 2)");
    }

    #[test]
    fn value_rendering() {
        assert_eq!(tla_value(&Value::Bool(true)), "TRUE");
        assert_eq!(
            tla_value(&Value::seq(vec![Value::Int(1), Value::Int(2)])),
            "<<1, 2>>"
        );
        assert_eq!(tla_value(&Value::str("hi")), "\"hi\"");
    }

    #[test]
    fn trace_export() {
        use opentla_check::Counterexample;
        use opentla_kernel::State;
        let (vars, _, _) = sample();
        let cx = Counterexample::new(
            "liveness violated",
            vec![
                State::new(vec![Value::Int(0), Value::Int(0)]),
                State::new(vec![Value::Int(1), Value::Int(0)]),
            ],
            vec![None, Some("copy d".into())],
            Some(1),
        );
        let src = trace_to_tla_module("Cx", &vars, &cx);
        assert!(src.contains("---- MODULE Cx ----"));
        assert!(src.contains("liveness violated"));
        assert!(src.contains("[c_sig |-> 0, d |-> 0], \\* init"));
        assert!(src.contains("[c_sig |-> 1, d |-> 0] \\* copy d"));
        assert!(src.contains("LoopStart == 2"));

        // Finite traces note the stuttering extension instead.
        let finite = Counterexample::new(
            "invariant violated",
            vec![State::new(vec![Value::Int(0), Value::Int(0)])],
            vec![None],
            None,
        );
        let src = trace_to_tla_module("Cx2", &vars, &finite);
        assert!(src.contains("stuttering"));
    }

    #[test]
    fn non_contiguous_domain_renders_as_set() {
        let d = Domain::new(vec![Value::Int(0), Value::Int(2)]);
        assert_eq!(tla_domain(&d), "{0, 2}");
        assert_eq!(tla_domain(&Domain::int_range(0, 3)), "0..3");
        assert_eq!(tla_domain(&Domain::booleans()), "{FALSE, TRUE}");
    }
}
