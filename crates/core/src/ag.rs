//! Assumption/guarantee specifications `E ⊳ M` and realization
//! checking.

use crate::{ComponentSpec, SpecError};
use opentla_check::{
    Counterexample, GuardedAction, StateGraph, System, Verdict,
};
use opentla_kernel::{Formula, Renaming, State, StatePair, VarId, Vars};
use opentla_semantics::{safety_canonical, SafetyCanonical};
use std::collections::HashMap;

/// An assumption/guarantee specification `E ⊳ M` (Section 3 of the
/// paper): the system guarantees `M` at least one step longer than the
/// environment satisfies `E`.
///
/// The assumption is a safety-only component (the paper's practice:
/// "we write the environment assumption as a safety property"); the
/// guarantee may carry fairness.
///
/// # Example
///
/// ```
/// use opentla::{AgSpec, ComponentSpec};
/// use opentla_check::Init;
/// use opentla_kernel::{Domain, Formula, Value, Vars};
///
/// # fn main() -> Result<(), opentla::SpecError> {
/// let mut vars = Vars::new();
/// let c = vars.declare("c", Domain::bits());
/// let d = vars.declare("d", Domain::bits());
/// let env = ComponentSpec::builder("E")
///     .outputs([d]).inputs([c])
///     .init(Init::new([(d, Value::Int(0))]))
///     .build()?;
/// let sys = ComponentSpec::builder("M")
///     .outputs([c]).inputs([d])
///     .init(Init::new([(c, Value::Int(0))]))
///     .build()?;
/// let ag = AgSpec::new(env, sys)?;
/// assert_eq!(ag.name(), "E ⊳ M");
/// assert!(matches!(ag.formula(), Formula::WhilePlus { .. }));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AgSpec {
    env: ComponentSpec,
    sys: ComponentSpec,
}

impl AgSpec {
    /// Pairs an environment assumption with a system guarantee.
    ///
    /// # Errors
    ///
    /// * [`SpecError::EnvWithFairness`] if the assumption has fairness
    ///   conditions (assumptions must be safety properties for the
    ///   composition rules to apply);
    /// * [`SpecError::DuplicateOwnership`] if the two components claim
    ///   the same output.
    pub fn new(env: ComponentSpec, sys: ComponentSpec) -> Result<Self, SpecError> {
        if env.has_fairness() {
            return Err(SpecError::EnvWithFairness {
                component: env.name().to_string(),
            });
        }
        for v in env.owned() {
            if sys.owned().contains(&v) {
                return Err(SpecError::DuplicateOwnership {
                    var: v,
                    owners: (env.name().to_string(), sys.name().to_string()),
                });
            }
        }
        Ok(AgSpec { env, sys })
    }

    /// The environment assumption `E`.
    pub fn env(&self) -> &ComponentSpec {
        &self.env
    }

    /// The system guarantee `M`.
    pub fn sys(&self) -> &ComponentSpec {
        &self.sys
    }

    /// The specification's name, `env ⊳ sys`.
    pub fn name(&self) -> String {
        format!("{} ⊳ {}", self.env.name(), self.sys.name())
    }

    /// The formula `E ⊳ M` (internals hidden on both sides).
    pub fn formula(&self) -> Formula {
        self.env
            .hidden_formula()
            .while_plus(self.sys.hidden_formula())
    }

    /// Renames both sides — the paper's `QE[1] ⊳ QM[1]` instances.
    pub fn rename(
        &self,
        env_name: impl Into<String>,
        sys_name: impl Into<String>,
        renaming: &Renaming,
    ) -> AgSpec {
        AgSpec {
            env: self.env.rename(env_name, renaming),
            sys: self.sys.rename(sys_name, renaming),
        }
    }

    /// Checks (the safety half of) "`implementation` realizes this
    /// specification": the implementation is run against a maximally
    /// hostile environment owning the guarantee's inputs, and the `⊳`
    /// monitor verifies the guarantee is never violated unless the
    /// assumption was violated strictly earlier.
    ///
    /// `mapping` eliminates the guarantee's internal variables in terms
    /// of the implementation's (pass the empty [`Substitution`] when
    /// the implementation uses the very same internals, as when a
    /// component realizes its own specification).
    ///
    /// # Errors
    ///
    /// Structural or engine errors; a genuine non-realization is a
    /// [`Verdict::Violated`] with the offending trace.
    pub fn realize_safety(
        &self,
        vars: &Vars,
        implementation: &ComponentSpec,
        mapping: &opentla_kernel::Substitution,
    ) -> Result<Verdict, SpecError> {
        let chaos = chaos_environment(
            format!("chaos-for-{}", self.sys.name()),
            vars,
            self.sys.inputs(),
        );
        let system = crate::closed_product(vars, &[implementation, &chaos])?;
        let graph = opentla_check::explore(
            &system,
            &opentla_check::ExploreOptions::default(),
        )?;
        let env_f = mapping.formula(&self.env.safety_formula())?;
        let sys_f = mapping.formula(&self.sys.safety_formula())?;
        check_ag_safety(&system, &graph, &env_f, &sys_f)
    }
}

/// A maximally hostile (but interleaving) environment: a component that
/// owns `outputs` and may set any one of them to any domain value at
/// any step.
///
/// Used for *realization* checks: an implementation satisfies `E ⊳ M`
/// iff it does so against every environment, and the chaos environment
/// exhibits them all.
pub fn chaos_environment(
    name: impl Into<String>,
    vars: &Vars,
    outputs: &[VarId],
) -> ComponentSpec {
    let name = name.into();
    let mut builder = ComponentSpec::builder(name.clone()).outputs(outputs.iter().copied());
    for v in outputs {
        for value in vars.domain(*v).iter() {
            builder = builder.action(GuardedAction::new(
                format!("chaos[{} := {}]", vars.name(*v), value),
                opentla_kernel::Expr::var(*v)
                    .ne(opentla_kernel::Expr::con(value.clone())),
                vec![(*v, opentla_kernel::Expr::con(value.clone()))],
            ));
        }
    }
    builder.build().expect("chaos environment is well-formed")
}

/// A precise `⊳` diagnosis of how (and when) the environment first
/// broke the assumption `E` on some reachable behavior.
///
/// States of a behavior are numbered from 0; "`E` broken at step `k`"
/// means the prefix ending in state `k` is the first prefix violating
/// `E` (`k = 0` when the initial state already violates it). Because
/// the verdict holds, the guarantee `M` was still intact at state `k` —
/// `M` held `k + 1` steps, the one-step-longer margin `E ⊳ M` demands.
#[derive(Clone, Debug)]
pub struct AssumptionBreak {
    /// Index of the first state whose prefix violates the assumption.
    pub step: usize,
    /// Name of the environment action whose step broke the assumption
    /// (`None` when the initial state already violates it).
    pub action: Option<String>,
    /// The violated conjunct of the assumption (initial predicate,
    /// invariant, or step box), rendered with variable names.
    pub conjunct: String,
    /// A shortest behavior exhibiting the break; its last state is
    /// state `step`.
    pub trace: Counterexample,
}

impl std::fmt::Display for AssumptionBreak {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.action {
            Some(a) => write!(
                f,
                "assumption violated by environment at step {}: action {} \
                 broke conjunct {}; E broken at step {}, M held {} steps — \
                 the one-step-longer margin E ⊳ M requires",
                self.step,
                a,
                self.conjunct,
                self.step,
                self.step + 1
            ),
            None => write!(
                f,
                "assumption violated by environment at step 0: the initial \
                 state breaks conjunct {}; E broken at step 0, M held 1 step — \
                 the one-step-longer margin E ⊳ M requires",
                self.conjunct
            ),
        }
    }
}

/// The result of a diagnosed `⊳` safety check: the verdict, plus —
/// when the environment can break the assumption at all — the earliest
/// such break with its offending action and conjunct.
#[derive(Clone, Debug)]
pub struct AgReport {
    /// Whether `E ⊳ M` holds on every reachable behavior.
    pub verdict: Verdict,
    /// The earliest assumption break reachable while the guarantee was
    /// still intact, if any. `None` with a holding verdict means the
    /// environment never misbehaves (the cooperative case); `Some`
    /// means `⊳` was genuinely exercised.
    pub env_break: Option<AssumptionBreak>,
}

impl AgReport {
    /// Whether `E ⊳ M` holds.
    pub fn holds(&self) -> bool {
        self.verdict.holds()
    }
}

/// The first conjunct of `sc` (initial predicate or invariant) failing
/// in state `s`, rendered with `vars` names.
fn failing_state_conjunct(
    sc: &SafetyCanonical,
    s: &State,
    vars: &Vars,
) -> Result<Option<String>, SpecError> {
    for p in sc.init.iter().chain(sc.invariants.iter()) {
        if !p.holds_state(s).map_err(opentla_check::CheckError::from)? {
            return Ok(Some(p.display(vars).to_string()));
        }
    }
    Ok(None)
}

/// The first conjunct of `sc` (step box or invariant) failing on the
/// transition `pair`, rendered with `vars` names.
fn failing_step_conjunct(
    sc: &SafetyCanonical,
    pair: StatePair<'_>,
    vars: &Vars,
) -> Result<Option<String>, SpecError> {
    for (a, sub) in &sc.boxes {
        if !opentla_kernel::box_action(a.clone(), sub)
            .holds_action(pair)
            .map_err(opentla_check::CheckError::from)?
        {
            let subscript: Vec<&str> = sub.iter().map(|v| vars.name(*v)).collect();
            return Ok(Some(format!(
                "□[{}]_⟨{}⟩",
                a.display(vars),
                subscript.join(", ")
            )));
        }
    }
    for p in &sc.invariants {
        if !p
            .holds_state(pair.new)
            .map_err(opentla_check::CheckError::from)?
        {
            return Ok(Some(p.display(vars).to_string()));
        }
    }
    Ok(None)
}

/// Checks the safety part of "`system` realizes `E ⊳ M`": on every
/// reachable behavior of the (closed) `system`, the guarantee must not
/// be violated unless the assumption was violated *strictly earlier*.
///
/// `env` and `sys` are safety-canonical formulas (apply any refinement
/// mapping first). The check runs a three-state monitor
/// (`both hold` / `assumption already broken`) in product with the
/// graph, which is exactly the first-failure comparison `m₀ > n₀`
/// defining `⊳` (see `opentla-semantics`).
///
/// This is the verdict-only form of [`check_ag_safety_diagnosed`].
///
/// # Errors
///
/// [`SpecError`] wrapping a [`CheckError::NotCanonical`]
/// (via [`SpecError::Check`]) if either formula is not
/// safety-canonical, or evaluation errors.
///
/// [`CheckError::NotCanonical`]: opentla_check::CheckError::NotCanonical
pub fn check_ag_safety(
    system: &System,
    graph: &StateGraph,
    env: &Formula,
    sys: &Formula,
) -> Result<Verdict, SpecError> {
    Ok(check_ag_safety_diagnosed(system, graph, env, sys)?.verdict)
}

/// [`check_ag_safety`] with the full `⊳` diagnosis: the returned
/// [`AgReport`] additionally pinpoints the earliest reachable
/// assumption break — which environment action broke which conjunct of
/// `E` at which step — so a holding verdict over a hostile environment
/// reads "M held k+1 steps, E broken at step k" rather than a bare
/// "holds".
///
/// # Errors
///
/// As for [`check_ag_safety`].
pub fn check_ag_safety_diagnosed(
    system: &System,
    graph: &StateGraph,
    env: &Formula,
    sys: &Formula,
) -> Result<AgReport, SpecError> {
    let rec = opentla_check::obs::global();
    let _phase =
        opentla_check::obs::PhaseGuard::enter(&rec, opentla_check::obs::Phase::AgMonitor);
    let report = ag_monitor(system, graph, env, sys)?;
    if rec.enabled() {
        rec.record(&opentla_check::Event::Check {
            kind: "ag_safety",
            name: "⊳-monitor",
            holds: report.holds(),
        });
        if let Verdict::Violated(cx) = &report.verdict {
            opentla_check::obs::emit_counterexample(&rec, "ag_safety", cx);
        }
        if let Some(brk) = &report.env_break {
            if let Some(action) = brk.action.as_deref() {
                if opentla_check::faults::is_fault_action(action) {
                    rec.record(&opentla_check::Event::FaultActivation {
                        action,
                        step: brk.step as u64,
                        kind: "fired",
                    });
                }
            }
        }
    }
    Ok(report)
}

/// The `⊳` monitor proper (the BFS over `graph × {E intact, E broken}`),
/// separated from [`check_ag_safety_diagnosed`] so observability events
/// wrap every exit path uniformly.
fn ag_monitor(
    system: &System,
    graph: &StateGraph,
    env: &Formula,
    sys: &Formula,
) -> Result<AgReport, SpecError> {
    let env_sc = safety_canonical(env).ok_or(opentla_check::CheckError::NotCanonical {
        context: "check_ag_safety (assumption)",
    })?;
    let sys_sc = safety_canonical(sys).ok_or(opentla_check::CheckError::NotCanonical {
        context: "check_ag_safety (guarantee)",
    })?;
    let vars = system.vars();

    // Monitor state: false = both intact, true = assumption broken.
    // (Guarantee breaking while the assumption is intact — or on the
    // same step — is the violation `m₀ ≤ n₀`.)
    // Key: (graph state, assumption-broken flag); value: BFS parent
    // (state, flag, action) or None for roots.
    type MonitorParents = HashMap<(usize, bool), Option<(usize, bool, usize)>>;
    let mut seen: MonitorParents = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    // The earliest (BFS-first) observed assumption break: the monitor
    // key where E first failed, plus the offending action and conjunct.
    let mut env_break: Option<((usize, bool), Option<usize>, String)> = None;

    // Reconstructs the monitor trace ending at `last`, through `seen`.
    let rebuild = |seen: &MonitorParents, last: (usize, bool), reason: String| {
        let mut rev = Vec::new();
        let mut cur = last;
        loop {
            match seen[&cur] {
                Some((pid, pflag, action)) => {
                    rev.push((Some(action), cur.0));
                    cur = (pid, pflag);
                }
                None => {
                    rev.push((None, cur.0));
                    break;
                }
            }
        }
        rev.reverse();
        let states = rev.iter().map(|(_, n)| graph.state(*n).clone()).collect();
        let actions = rev
            .iter()
            .map(|(a, _)| a.map(|i| system.actions()[i].name().to_string()))
            .collect();
        Counterexample::new(reason, states, actions, None)
    };

    for &id in graph.init() {
        let s = graph.state(id);
        if let Some(conjunct) = failing_state_conjunct(&sys_sc, s, vars)? {
            // m₀ = 1 ≤ n₀ always.
            return Ok(AgReport {
                verdict: Verdict::Violated(Counterexample::new(
                    format!(
                        "guarantee's initial condition fails at step 0 \
                         (violated conjunct: {conjunct}): E ⊳ M requires M \
                         to hold initially, unconditionally"
                    ),
                    vec![s.clone()],
                    vec![None],
                    None,
                )),
                env_break: None,
            });
        }
        let broken_conjunct = failing_state_conjunct(&env_sc, s, vars)?;
        let env_broken = broken_conjunct.is_some();
        if seen.insert((id, env_broken), None).is_none() {
            queue.push_back((id, env_broken));
            if env_break.is_none() {
                if let Some(conjunct) = broken_conjunct {
                    env_break = Some(((id, true), None, conjunct));
                }
            }
        }
    }
    while let Some((id, env_broken)) = queue.pop_front() {
        if env_broken {
            // No further obligations once the assumption has failed.
            continue;
        }
        let s = graph.state(id);
        for e in graph.edges(id) {
            let t = graph.state(e.target);
            let pair = StatePair::new(s, t);
            if let Some(conjunct) = failing_step_conjunct(&sys_sc, pair, vars)? {
                // Violation: reconstruct the trace through the monitor.
                let action = system.actions()[e.action].name().to_string();
                let base = rebuild(&seen, (id, env_broken), String::new());
                let step = base.states().len();
                let mut states = base.states().to_vec();
                let mut actions = base.actions().to_vec();
                states.push(t.clone());
                actions.push(Some(action.clone()));
                return Ok(AgReport {
                    verdict: Verdict::Violated(Counterexample::new(
                        format!(
                            "guarantee violated at step {step} by action \
                             {action} while the assumption still held, or on \
                             the same step (violated conjunct: {conjunct}): \
                             E ⊳ M fails"
                        ),
                        states,
                        actions,
                        None,
                    )),
                    env_break: None,
                });
            }
            let broken_conjunct = failing_step_conjunct(&env_sc, pair, vars)?;
            let next_broken = broken_conjunct.is_some();
            let key = (e.target, next_broken);
            if let std::collections::hash_map::Entry::Vacant(entry) = seen.entry(key) {
                entry.insert(Some((id, env_broken, e.action)));
                queue.push_back(key);
                if next_broken && env_break.is_none() {
                    if let Some(conjunct) = broken_conjunct {
                        env_break = Some((key, Some(e.action), conjunct));
                    }
                }
            }
        }
    }
    let env_break = env_break.map(|(key, action, conjunct)| {
        let action = action.map(|i| system.actions()[i].name().to_string());
        let trace = rebuild(&seen, key, String::new());
        let mut brk = AssumptionBreak {
            step: trace.states().len() - 1,
            action,
            conjunct,
            trace,
        };
        brk.trace = Counterexample::new(
            brk.to_string(),
            brk.trace.states().to_vec(),
            brk.trace.actions().to_vec(),
            None,
        );
        brk
    });
    Ok(AgReport {
        verdict: Verdict::Holds,
        env_break,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_product;
    use opentla_check::{explore, ExploreOptions, Init};
    use opentla_kernel::{Domain, Expr, Value};
    use opentla_semantics::{eval, EvalCtx};

    /// The paper's Figure 1 safety instance: output stays 0.
    fn stays_zero(name: &str, out: VarId, inp: VarId) -> ComponentSpec {
        ComponentSpec::builder(name)
            .outputs([out])
            .inputs([inp])
            .init(Init::new([(out, Value::Int(0))]))
            .build()
            .expect("well-formed")
    }

    fn copier(name: &str, out: VarId, inp: VarId) -> ComponentSpec {
        ComponentSpec::builder(name)
            .outputs([out])
            .inputs([inp])
            .init(Init::new([(out, Value::Int(0))]))
            .action(GuardedAction::new(
                "copy",
                Expr::bool(true),
                vec![(out, Expr::var(inp))],
            ))
            .build()
            .expect("well-formed")
    }

    #[test]
    fn ag_spec_formula_shape() {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let ag = AgSpec::new(stays_zero("M0d", d, c), stays_zero("M0c", c, d)).unwrap();
        assert_eq!(ag.name(), "M0d ⊳ M0c");
        assert!(matches!(ag.formula(), Formula::WhilePlus { .. }));
    }

    #[test]
    fn env_with_fairness_rejected() {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let env = ComponentSpec::builder("env")
            .outputs([d])
            .action(GuardedAction::new("a", Expr::bool(true), vec![(d, Expr::int(0))]))
            .weak_fairness([0])
            .build()
            .unwrap();
        let sys = stays_zero("sys", c, d);
        assert!(matches!(
            AgSpec::new(env, sys),
            Err(SpecError::EnvWithFairness { .. })
        ));
    }

    #[test]
    fn pi_c_realizes_its_ag_spec() {
        // Π_c (copies d into c) against a chaotic d: realizes
        // (d stays 0) ⊳ (c stays 0).
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let pi_c = copier("Pi_c", c, d);
        let chaos = chaos_environment("chaos_d", &vars, &[d]);
        // Give the chaotic d an initial value so the product is finite
        // and closed; d starts anywhere.
        let sys = closed_product(&vars, &[&pi_c, &chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 4);

        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        let verdict = check_ag_safety(&sys, &graph, &e, &m).unwrap();
        assert!(verdict.holds(), "{:?}", verdict.counterexample());
    }

    #[test]
    fn eager_process_fails_realization() {
        // A process that sets c to 1 unconditionally violates the
        // guarantee before the environment misbehaves.
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let eager = ComponentSpec::builder("eager")
            .outputs([c])
            .inputs([d])
            .init(Init::new([(c, Value::Int(0))]))
            .action(GuardedAction::new(
                "spoil",
                Expr::bool(true),
                vec![(c, Expr::int(1))],
            ))
            .build()
            .unwrap();
        let chaos = chaos_environment("chaos_d", &vars, &[d]);
        let sys = closed_product(&vars, &[&eager, &chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        let verdict = check_ag_safety(&sys, &graph, &e, &m).unwrap();
        let cx = verdict.counterexample().expect("eager process must fail");
        // Confirm against the trace semantics: the stutter-extension of
        // the trace violates E ⊳ M.
        let lasso = cx.to_lasso();
        let ctx = EvalCtx::default();
        let ag = e.while_plus(m);
        assert!(!eval(&ag, &lasso, &ctx).unwrap());
    }

    #[test]
    fn violation_after_env_breaks_is_allowed() {
        // A process that echoes d into c: when the environment sets
        // d to 1 (breaking E), c may follow — no violation of E ⊳ M.
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let pi_c = copier("Pi_c", c, d);
        let chaos = chaos_environment("chaos_d", &vars, &[d]);
        let sys = closed_product(&vars, &[&pi_c, &chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        // The graph contains behaviors where d flips to 1 and then c
        // follows; realization must still hold.
        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        assert!(check_ag_safety(&sys, &graph, &e, &m).unwrap().holds());
    }

    #[test]
    fn simultaneous_violation_is_caught() {
        // A process whose single action breaks the guarantee in the
        // very step that also breaks the assumption... in an
        // interleaving product a single action cannot change both c and
        // d (they belong to different components), so emulate it with a
        // process that owns both.
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let both = ComponentSpec::builder("both")
            .outputs([c, d])
            .init(Init::new([(c, Value::Int(0)), (d, Value::Int(0))]))
            .action(GuardedAction::new(
                "boom",
                Expr::bool(true),
                vec![(c, Expr::int(1)), (d, Expr::int(1))],
            ))
            .build()
            .unwrap();
        let sys = closed_product(&vars, &[&both]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = Formula::pred(Expr::var(d).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![d]));
        let m = Formula::pred(Expr::var(c).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![c]));
        // ⊳ forbids the simultaneous break.
        let verdict = check_ag_safety(&sys, &graph, &e, &m).unwrap();
        assert!(!verdict.holds(), "simultaneous violation must be caught");
    }

    #[test]
    fn bad_initial_guarantee_is_caught() {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let starts_one = ComponentSpec::builder("starts1")
            .outputs([c])
            .inputs([d])
            .init(Init::new([(c, Value::Int(1))]))
            .build()
            .unwrap();
        let chaos = chaos_environment("chaos_d", &vars, &[d]);
        let sys = closed_product(&vars, &[&starts_one, &chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        let verdict = check_ag_safety(&sys, &graph, &e, &m).unwrap();
        let cx = verdict.counterexample().expect("bad init");
        assert!(cx.reason().contains("initial"));
    }

    #[test]
    fn realize_safety_api() {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let ag = AgSpec::new(stays_zero("E", d, c), stays_zero("M", c, d)).unwrap();
        // Π_c realizes its own A/G spec...
        let verdict = ag
            .realize_safety(&vars, &copier("Pi_c", c, d), &Default::default())
            .unwrap();
        assert!(verdict.holds());
        // ...while an eager spoiler does not.
        let eager = ComponentSpec::builder("eager")
            .outputs([c])
            .inputs([d])
            .init(Init::new([(c, Value::Int(0))]))
            .action(GuardedAction::new(
                "spoil",
                Expr::bool(true),
                vec![(c, Expr::int(1))],
            ))
            .build()
            .unwrap();
        let verdict = ag
            .realize_safety(&vars, &eager, &Default::default())
            .unwrap();
        assert!(!verdict.holds());
    }

    #[test]
    fn diagnosed_break_in_initial_state() {
        // Chaos owns d with no initial constraint: some initial state
        // already violates "d stays 0", so E is broken at step 0 and M
        // held 1 step.
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let pi_c = copier("Pi_c", c, d);
        let chaos = chaos_environment("chaos_d", &vars, &[d]);
        let sys = closed_product(&vars, &[&pi_c, &chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        let report = check_ag_safety_diagnosed(&sys, &graph, &e, &m).unwrap();
        assert!(report.holds());
        let brk = report.env_break.expect("chaos must break E");
        assert_eq!(brk.step, 0);
        assert!(brk.action.is_none());
        assert!(brk.trace.reason().contains("E broken at step 0"));
        assert!(brk.trace.reason().contains("M held 1 step"));
    }

    #[test]
    fn diagnosed_break_names_action_step_and_conjunct() {
        // The environment starts well-behaved (d = 0) and breaks E with
        // a named action one step in: the diagnosis must say which
        // action, at which step, violated which conjunct.
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let pi_c = copier("Pi_c", c, d);
        let env = ComponentSpec::builder("env")
            .outputs([d])
            .inputs([c])
            .init(Init::new([(d, Value::Int(0))]))
            .action(GuardedAction::new(
                "sabotage_d",
                Expr::var(d).eq(Expr::int(0)),
                vec![(d, Expr::int(1))],
            ))
            .build()
            .unwrap();
        let sys = closed_product(&vars, &[&pi_c, &env]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        let report = check_ag_safety_diagnosed(&sys, &graph, &e, &m).unwrap();
        assert!(report.holds(), "{:?}", report.verdict.counterexample());
        let brk = report.env_break.expect("the saboteur must break E");
        assert_eq!(brk.step, 1);
        assert_eq!(brk.action.as_deref(), Some("sabotage_d"));
        assert!(brk.conjunct.contains('d'), "conjunct: {}", brk.conjunct);
        let text = brk.to_string();
        assert!(text.contains("E broken at step 1"), "{text}");
        assert!(text.contains("M held 2 steps"), "{text}");
        assert!(text.contains("sabotage_d"), "{text}");
        assert_eq!(brk.trace.states().len(), 2);
    }

    #[test]
    fn cooperative_environment_reports_no_break() {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let sys =
            closed_product(&vars, &[&stays_zero("Mc", c, d), &stays_zero("Md", d, c)])
                .unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        let report = check_ag_safety_diagnosed(&sys, &graph, &e, &m).unwrap();
        assert!(report.holds());
        assert!(report.env_break.is_none());
    }

    #[test]
    fn violation_diagnosis_names_action_and_step() {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let eager = ComponentSpec::builder("eager")
            .outputs([c])
            .inputs([d])
            .init(Init::new([(c, Value::Int(0))]))
            .action(GuardedAction::new(
                "spoil",
                Expr::bool(true),
                vec![(c, Expr::int(1))],
            ))
            .build()
            .unwrap();
        let chaos = chaos_environment("chaos_d", &vars, &[d]);
        let sys = closed_product(&vars, &[&eager, &chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        let report = check_ag_safety_diagnosed(&sys, &graph, &e, &m).unwrap();
        let cx = report.verdict.counterexample().expect("eager must fail");
        assert!(cx.reason().contains("spoil"), "{}", cx.reason());
        assert!(cx.reason().contains("step 1"), "{}", cx.reason());
        assert!(cx.reason().contains("violated conjunct"), "{}", cx.reason());
    }

    #[test]
    fn chaos_environment_reaches_everything() {
        let mut vars = Vars::new();
        let d = vars.declare("d", Domain::int_range(0, 2));
        let chaos = chaos_environment("chaos", &vars, &[d]);
        // 3 values → 3 setter actions.
        assert_eq!(chaos.actions().len(), 3);
        let sys = closed_product(&vars, &[&chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 3);
    }
}
