//! Assumption/guarantee specifications `E ⊳ M` and realization
//! checking.

use crate::{ComponentSpec, SpecError};
use opentla_check::{
    Counterexample, GuardedAction, StateGraph, System, Verdict,
};
use opentla_kernel::{Formula, Renaming, State, StatePair, VarId, Vars};
use opentla_semantics::{safety_canonical, SafetyCanonical};
use std::collections::HashMap;

/// An assumption/guarantee specification `E ⊳ M` (Section 3 of the
/// paper): the system guarantees `M` at least one step longer than the
/// environment satisfies `E`.
///
/// The assumption is a safety-only component (the paper's practice:
/// "we write the environment assumption as a safety property"); the
/// guarantee may carry fairness.
///
/// # Example
///
/// ```
/// use opentla::{AgSpec, ComponentSpec};
/// use opentla_check::Init;
/// use opentla_kernel::{Domain, Formula, Value, Vars};
///
/// # fn main() -> Result<(), opentla::SpecError> {
/// let mut vars = Vars::new();
/// let c = vars.declare("c", Domain::bits());
/// let d = vars.declare("d", Domain::bits());
/// let env = ComponentSpec::builder("E")
///     .outputs([d]).inputs([c])
///     .init(Init::new([(d, Value::Int(0))]))
///     .build()?;
/// let sys = ComponentSpec::builder("M")
///     .outputs([c]).inputs([d])
///     .init(Init::new([(c, Value::Int(0))]))
///     .build()?;
/// let ag = AgSpec::new(env, sys)?;
/// assert_eq!(ag.name(), "E ⊳ M");
/// assert!(matches!(ag.formula(), Formula::WhilePlus { .. }));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AgSpec {
    env: ComponentSpec,
    sys: ComponentSpec,
}

impl AgSpec {
    /// Pairs an environment assumption with a system guarantee.
    ///
    /// # Errors
    ///
    /// * [`SpecError::EnvWithFairness`] if the assumption has fairness
    ///   conditions (assumptions must be safety properties for the
    ///   composition rules to apply);
    /// * [`SpecError::DuplicateOwnership`] if the two components claim
    ///   the same output.
    pub fn new(env: ComponentSpec, sys: ComponentSpec) -> Result<Self, SpecError> {
        if env.has_fairness() {
            return Err(SpecError::EnvWithFairness {
                component: env.name().to_string(),
            });
        }
        for v in env.owned() {
            if sys.owned().contains(&v) {
                return Err(SpecError::DuplicateOwnership {
                    var: v,
                    owners: (env.name().to_string(), sys.name().to_string()),
                });
            }
        }
        Ok(AgSpec { env, sys })
    }

    /// The environment assumption `E`.
    pub fn env(&self) -> &ComponentSpec {
        &self.env
    }

    /// The system guarantee `M`.
    pub fn sys(&self) -> &ComponentSpec {
        &self.sys
    }

    /// The specification's name, `env ⊳ sys`.
    pub fn name(&self) -> String {
        format!("{} ⊳ {}", self.env.name(), self.sys.name())
    }

    /// The formula `E ⊳ M` (internals hidden on both sides).
    pub fn formula(&self) -> Formula {
        self.env
            .hidden_formula()
            .while_plus(self.sys.hidden_formula())
    }

    /// Renames both sides — the paper's `QE[1] ⊳ QM[1]` instances.
    pub fn rename(
        &self,
        env_name: impl Into<String>,
        sys_name: impl Into<String>,
        renaming: &Renaming,
    ) -> AgSpec {
        AgSpec {
            env: self.env.rename(env_name, renaming),
            sys: self.sys.rename(sys_name, renaming),
        }
    }

    /// Checks (the safety half of) "`implementation` realizes this
    /// specification": the implementation is run against a maximally
    /// hostile environment owning the guarantee's inputs, and the `⊳`
    /// monitor verifies the guarantee is never violated unless the
    /// assumption was violated strictly earlier.
    ///
    /// `mapping` eliminates the guarantee's internal variables in terms
    /// of the implementation's (pass the empty [`Substitution`] when
    /// the implementation uses the very same internals, as when a
    /// component realizes its own specification).
    ///
    /// # Errors
    ///
    /// Structural or engine errors; a genuine non-realization is a
    /// [`Verdict::Violated`] with the offending trace.
    pub fn realize_safety(
        &self,
        vars: &Vars,
        implementation: &ComponentSpec,
        mapping: &opentla_kernel::Substitution,
    ) -> Result<Verdict, SpecError> {
        let chaos = chaos_environment(
            format!("chaos-for-{}", self.sys.name()),
            vars,
            self.sys.inputs(),
        );
        let system = crate::closed_product(vars, &[implementation, &chaos])?;
        let graph = opentla_check::explore(
            &system,
            &opentla_check::ExploreOptions::default(),
        )?;
        let env_f = mapping.formula(&self.env.safety_formula())?;
        let sys_f = mapping.formula(&self.sys.safety_formula())?;
        check_ag_safety(&system, &graph, &env_f, &sys_f)
    }
}

/// A maximally hostile (but interleaving) environment: a component that
/// owns `outputs` and may set any one of them to any domain value at
/// any step.
///
/// Used for *realization* checks: an implementation satisfies `E ⊳ M`
/// iff it does so against every environment, and the chaos environment
/// exhibits them all.
pub fn chaos_environment(
    name: impl Into<String>,
    vars: &Vars,
    outputs: &[VarId],
) -> ComponentSpec {
    let name = name.into();
    let mut builder = ComponentSpec::builder(name.clone()).outputs(outputs.iter().copied());
    for v in outputs {
        for value in vars.domain(*v).iter() {
            builder = builder.action(GuardedAction::new(
                format!("chaos[{} := {}]", vars.name(*v), value),
                opentla_kernel::Expr::var(*v)
                    .ne(opentla_kernel::Expr::con(value.clone())),
                vec![(*v, opentla_kernel::Expr::con(value.clone()))],
            ));
        }
    }
    builder.build().expect("chaos environment is well-formed")
}

/// Checks the safety part of "`system` realizes `E ⊳ M`": on every
/// reachable behavior of the (closed) `system`, the guarantee must not
/// be violated unless the assumption was violated *strictly earlier*.
///
/// `env` and `sys` are safety-canonical formulas (apply any refinement
/// mapping first). The check runs a three-state monitor
/// (`both hold` / `assumption already broken`) in product with the
/// graph, which is exactly the first-failure comparison `m₀ > n₀`
/// defining `⊳` (see `opentla-semantics`).
///
/// # Errors
///
/// [`SpecError`] wrapping a [`CheckError::NotCanonical`]
/// (via [`SpecError::Check`]) if either formula is not
/// safety-canonical, or evaluation errors.
///
/// [`CheckError::NotCanonical`]: opentla_check::CheckError::NotCanonical
pub fn check_ag_safety(
    system: &System,
    graph: &StateGraph,
    env: &Formula,
    sys: &Formula,
) -> Result<Verdict, SpecError> {
    let env_sc = safety_canonical(env).ok_or(opentla_check::CheckError::NotCanonical {
        context: "check_ag_safety (assumption)",
    })?;
    let sys_sc = safety_canonical(sys).ok_or(opentla_check::CheckError::NotCanonical {
        context: "check_ag_safety (guarantee)",
    })?;

    let first_ok = |sc: &SafetyCanonical, s: &State| -> Result<bool, SpecError> {
        for p in sc.init.iter().chain(sc.invariants.iter()) {
            if !p.holds_state(s).map_err(opentla_check::CheckError::from)? {
                return Ok(false);
            }
        }
        Ok(true)
    };
    let step_ok = |sc: &SafetyCanonical, pair: StatePair<'_>| -> Result<bool, SpecError> {
        for (a, sub) in &sc.boxes {
            if !opentla_kernel::box_action(a.clone(), sub)
                .holds_action(pair)
                .map_err(opentla_check::CheckError::from)?
            {
                return Ok(false);
            }
        }
        for p in &sc.invariants {
            if !p
                .holds_state(pair.new)
                .map_err(opentla_check::CheckError::from)?
            {
                return Ok(false);
            }
        }
        Ok(true)
    };

    // Monitor state: false = both intact, true = assumption broken.
    // (Guarantee breaking while the assumption is intact — or on the
    // same step — is the violation `m₀ ≤ n₀`.)
    // Key: (graph state, assumption-broken flag); value: BFS parent
    // (state, flag, action) or None for roots.
    type MonitorParents = HashMap<(usize, bool), Option<(usize, bool, usize)>>;
    let mut seen: MonitorParents = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    for &id in graph.init() {
        let s = graph.state(id);
        if !first_ok(&sys_sc, s)? {
            // m₀ = 1 ≤ n₀ always.
            return Ok(Verdict::Violated(Counterexample::new(
                "guarantee's initial condition fails (E ⊳ M requires M to hold \
                 initially, unconditionally)",
                vec![s.clone()],
                vec![None],
                None,
            )));
        }
        let env_broken = !first_ok(&env_sc, s)?;
        if seen.insert((id, env_broken), None).is_none() {
            queue.push_back((id, env_broken));
        }
    }
    while let Some((id, env_broken)) = queue.pop_front() {
        if env_broken {
            // No further obligations once the assumption has failed.
            continue;
        }
        let s = graph.state(id);
        for e in graph.edges(id) {
            let t = graph.state(e.target);
            let pair = StatePair::new(s, t);
            if !step_ok(&sys_sc, pair)? {
                // Violation: reconstruct the trace through the monitor.
                let mut rev = vec![(Some(e.action), e.target)];
                let mut cur = (id, env_broken);
                loop {
                    match seen[&cur] {
                        Some((pid, pflag, action)) => {
                            rev.push((Some(action), cur.0));
                            cur = (pid, pflag);
                        }
                        None => {
                            rev.push((None, cur.0));
                            break;
                        }
                    }
                }
                rev.reverse();
                let states = rev.iter().map(|(_, n)| graph.state(*n).clone()).collect();
                let actions = rev
                    .iter()
                    .map(|(a, _)| a.map(|i| system.actions()[i].name().to_string()))
                    .collect();
                return Ok(Verdict::Violated(Counterexample::new(
                    "guarantee violated while the assumption still held \
                     (or on the same step): E ⊳ M fails",
                    states,
                    actions,
                    None,
                )));
            }
            let next_broken = !step_ok(&env_sc, pair)?;
            let key = (e.target, next_broken);
            if let std::collections::hash_map::Entry::Vacant(entry) = seen.entry(key) {
                entry.insert(Some((id, env_broken, e.action)));
                queue.push_back(key);
            }
        }
    }
    Ok(Verdict::Holds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_product;
    use opentla_check::{explore, ExploreOptions, Init};
    use opentla_kernel::{Domain, Expr, Value};
    use opentla_semantics::{eval, EvalCtx};

    /// The paper's Figure 1 safety instance: output stays 0.
    fn stays_zero(name: &str, out: VarId, inp: VarId) -> ComponentSpec {
        ComponentSpec::builder(name)
            .outputs([out])
            .inputs([inp])
            .init(Init::new([(out, Value::Int(0))]))
            .build()
            .expect("well-formed")
    }

    fn copier(name: &str, out: VarId, inp: VarId) -> ComponentSpec {
        ComponentSpec::builder(name)
            .outputs([out])
            .inputs([inp])
            .init(Init::new([(out, Value::Int(0))]))
            .action(GuardedAction::new(
                "copy",
                Expr::bool(true),
                vec![(out, Expr::var(inp))],
            ))
            .build()
            .expect("well-formed")
    }

    #[test]
    fn ag_spec_formula_shape() {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let ag = AgSpec::new(stays_zero("M0d", d, c), stays_zero("M0c", c, d)).unwrap();
        assert_eq!(ag.name(), "M0d ⊳ M0c");
        assert!(matches!(ag.formula(), Formula::WhilePlus { .. }));
    }

    #[test]
    fn env_with_fairness_rejected() {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let env = ComponentSpec::builder("env")
            .outputs([d])
            .action(GuardedAction::new("a", Expr::bool(true), vec![(d, Expr::int(0))]))
            .weak_fairness([0])
            .build()
            .unwrap();
        let sys = stays_zero("sys", c, d);
        assert!(matches!(
            AgSpec::new(env, sys),
            Err(SpecError::EnvWithFairness { .. })
        ));
    }

    #[test]
    fn pi_c_realizes_its_ag_spec() {
        // Π_c (copies d into c) against a chaotic d: realizes
        // (d stays 0) ⊳ (c stays 0).
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let pi_c = copier("Pi_c", c, d);
        let chaos = chaos_environment("chaos_d", &vars, &[d]);
        // Give the chaotic d an initial value so the product is finite
        // and closed; d starts anywhere.
        let sys = closed_product(&vars, &[&pi_c, &chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 4);

        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        let verdict = check_ag_safety(&sys, &graph, &e, &m).unwrap();
        assert!(verdict.holds(), "{:?}", verdict.counterexample());
    }

    #[test]
    fn eager_process_fails_realization() {
        // A process that sets c to 1 unconditionally violates the
        // guarantee before the environment misbehaves.
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let eager = ComponentSpec::builder("eager")
            .outputs([c])
            .inputs([d])
            .init(Init::new([(c, Value::Int(0))]))
            .action(GuardedAction::new(
                "spoil",
                Expr::bool(true),
                vec![(c, Expr::int(1))],
            ))
            .build()
            .unwrap();
        let chaos = chaos_environment("chaos_d", &vars, &[d]);
        let sys = closed_product(&vars, &[&eager, &chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        let verdict = check_ag_safety(&sys, &graph, &e, &m).unwrap();
        let cx = verdict.counterexample().expect("eager process must fail");
        // Confirm against the trace semantics: the stutter-extension of
        // the trace violates E ⊳ M.
        let lasso = cx.to_lasso();
        let ctx = EvalCtx::default();
        let ag = e.while_plus(m);
        assert!(!eval(&ag, &lasso, &ctx).unwrap());
    }

    #[test]
    fn violation_after_env_breaks_is_allowed() {
        // A process that echoes d into c: when the environment sets
        // d to 1 (breaking E), c may follow — no violation of E ⊳ M.
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let pi_c = copier("Pi_c", c, d);
        let chaos = chaos_environment("chaos_d", &vars, &[d]);
        let sys = closed_product(&vars, &[&pi_c, &chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        // The graph contains behaviors where d flips to 1 and then c
        // follows; realization must still hold.
        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        assert!(check_ag_safety(&sys, &graph, &e, &m).unwrap().holds());
    }

    #[test]
    fn simultaneous_violation_is_caught() {
        // A process whose single action breaks the guarantee in the
        // very step that also breaks the assumption... in an
        // interleaving product a single action cannot change both c and
        // d (they belong to different components), so emulate it with a
        // process that owns both.
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let both = ComponentSpec::builder("both")
            .outputs([c, d])
            .init(Init::new([(c, Value::Int(0)), (d, Value::Int(0))]))
            .action(GuardedAction::new(
                "boom",
                Expr::bool(true),
                vec![(c, Expr::int(1)), (d, Expr::int(1))],
            ))
            .build()
            .unwrap();
        let sys = closed_product(&vars, &[&both]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = Formula::pred(Expr::var(d).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![d]));
        let m = Formula::pred(Expr::var(c).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![c]));
        // ⊳ forbids the simultaneous break.
        let verdict = check_ag_safety(&sys, &graph, &e, &m).unwrap();
        assert!(!verdict.holds(), "simultaneous violation must be caught");
    }

    #[test]
    fn bad_initial_guarantee_is_caught() {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let starts_one = ComponentSpec::builder("starts1")
            .outputs([c])
            .inputs([d])
            .init(Init::new([(c, Value::Int(1))]))
            .build()
            .unwrap();
        let chaos = chaos_environment("chaos_d", &vars, &[d]);
        let sys = closed_product(&vars, &[&starts_one, &chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = stays_zero("E", d, c).safety_formula();
        let m = stays_zero("M", c, d).safety_formula();
        let verdict = check_ag_safety(&sys, &graph, &e, &m).unwrap();
        let cx = verdict.counterexample().expect("bad init");
        assert!(cx.reason().contains("initial"));
    }

    #[test]
    fn realize_safety_api() {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        let ag = AgSpec::new(stays_zero("E", d, c), stays_zero("M", c, d)).unwrap();
        // Π_c realizes its own A/G spec...
        let verdict = ag
            .realize_safety(&vars, &copier("Pi_c", c, d), &Default::default())
            .unwrap();
        assert!(verdict.holds());
        // ...while an eager spoiler does not.
        let eager = ComponentSpec::builder("eager")
            .outputs([c])
            .inputs([d])
            .init(Init::new([(c, Value::Int(0))]))
            .action(GuardedAction::new(
                "spoil",
                Expr::bool(true),
                vec![(c, Expr::int(1))],
            ))
            .build()
            .unwrap();
        let verdict = ag
            .realize_safety(&vars, &eager, &Default::default())
            .unwrap();
        assert!(!verdict.holds());
    }

    #[test]
    fn chaos_environment_reaches_everything() {
        let mut vars = Vars::new();
        let d = vars.declare("d", Domain::int_range(0, 2));
        let chaos = chaos_environment("chaos", &vars, &[d]);
        // 3 values → 3 setter actions.
        assert_eq!(chaos.actions().len(), 3);
        let sys = closed_product(&vars, &[&chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 3);
    }
}
