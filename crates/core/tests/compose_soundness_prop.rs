//! Randomized soundness fuzzing of the Composition Theorem engine.
//!
//! Draw two components from a family of simple protocols over the
//! wires `c` and `d`, pair each with an independently drawn assumption
//! about the other wire, and a target built from another draw. Run
//! `compose`. Whenever the certificate says PROVED, the certified
//! conclusion formula `G ∧ (E₁ ⊳ M₁) ∧ (E₂ ⊳ M₂) ⇒ (TRUE ⊳ M)` must be
//! valid over every lasso of the two-bit universe — judged by the
//! independent trace semantics. Mismatched draws that make hypotheses
//! fail are fine (the theorem is sound, not complete); what must never
//! happen is a certified conclusion that a behavior refutes.

use opentla::{
    compose, disjoint, AgSpec, ComponentSpec, CompositionOptions, CompositionProblem,
};
use opentla_check::{GuardedAction, Init};
use opentla_kernel::{Domain, Expr, Formula, Substitution, Value, VarId, Vars};
use opentla_semantics::{all_lassos, eval, EvalCtx, Universe};
use proptest::prelude::*;

/// The protocol family: simple safety behaviors of one output wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Proto {
    /// Stays at 0 forever.
    Frozen,
    /// May rise from 0 to 1 (and stay).
    Riser,
    /// Copies the other wire.
    Copier,
    /// Toggles freely.
    Toggler,
}

const PROTOS: [Proto; 4] = [Proto::Frozen, Proto::Riser, Proto::Copier, Proto::Toggler];

fn component(name: &str, proto: Proto, out: VarId, inp: VarId) -> ComponentSpec {
    let mut builder = ComponentSpec::builder(name)
        .outputs([out])
        .inputs([inp])
        .init(Init::new([(out, Value::Int(0))]));
    builder = match proto {
        Proto::Frozen => builder,
        Proto::Riser => builder.action(GuardedAction::new(
            "rise",
            Expr::var(out).eq(Expr::int(0)),
            vec![(out, Expr::int(1))],
        )),
        Proto::Copier => builder.action(GuardedAction::new(
            "copy",
            Expr::bool(true),
            vec![(out, Expr::var(inp))],
        )),
        Proto::Toggler => builder.action(GuardedAction::new(
            "toggle",
            Expr::bool(true),
            vec![(out, Expr::int(1).sub(Expr::var(out)))],
        )),
    };
    builder.build().expect("family members are well-formed")
}

/// The target guarantee owning both wires: union of two protocols.
fn combined(pc: Proto, pd: Proto, c: VarId, d: VarId) -> ComponentSpec {
    let lhs = component("tc", pc, c, d);
    let rhs = component("td", pd, d, c);
    let mut builder = ComponentSpec::builder(format!("target({pc:?},{pd:?})"))
        .outputs([c, d])
        .init(Init::new([(c, Value::Int(0)), (d, Value::Int(0))]));
    for a in lhs.actions().iter().chain(rhs.actions()) {
        builder = builder.action(a.clone());
    }
    builder.build().expect("combined target is well-formed")
}

fn arb_proto() -> impl Strategy<Value = Proto> {
    (0..PROTOS.len()).prop_map(|i| PROTOS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn certified_conclusions_are_semantically_valid(
        guarantee_c in arb_proto(),
        guarantee_d in arb_proto(),
        assume_about_d in arb_proto(),
        assume_about_c in arb_proto(),
        target_c in arb_proto(),
        target_d in arb_proto(),
    ) {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());

        let m_c = component("M_c", guarantee_c, c, d);
        let m_d = component("M_d", guarantee_d, d, c);
        let e_c = component("E_c", assume_about_d, d, c);
        let e_d = component("E_d", assume_about_c, c, d);
        let ag_c = AgSpec::new(e_c.clone(), m_c.clone()).unwrap();
        let ag_d = AgSpec::new(e_d.clone(), m_d.clone()).unwrap();
        let target_sys = combined(target_c, target_d, c, d);
        let true_env = ComponentSpec::builder("TRUE").build().unwrap();
        let target = AgSpec::new(true_env, target_sys.clone()).unwrap();

        let problem = CompositionProblem {
            vars: &vars,
            components: vec![&ag_c, &ag_d],
            target: &target,
            mapping: Substitution::default(),
        };
        let cert = compose(&problem, &CompositionOptions::default()).unwrap();
        if !cert.holds() {
            // An unprovable instance — fine; the theorem is not
            // complete, and many draws have genuinely false conclusions.
            return Ok(());
        }

        // PROVED: the conclusion must be semantically valid.
        let g = disjoint(&[vec![c], vec![d]]);
        let conclusion = Formula::all([g, ag_c.formula(), ag_d.formula()])
            .implies(target.formula());
        let universe = Universe::new(vars);
        let ctx = EvalCtx::default();
        for sigma in all_lassos(&universe, 3) {
            prop_assert!(
                eval(&conclusion, &sigma, &ctx).unwrap(),
                "certified conclusion refuted on {:?} \
                 (guarantees {:?}/{:?}, assumptions {:?}/{:?}, target {:?}/{:?})",
                sigma, guarantee_c, guarantee_d, assume_about_d, assume_about_c,
                target_c, target_d
            );
        }
    }
}

/// A fixed instance known to be provable, as a smoke check that the
/// fuzz above is not vacuous (some draws must certify).
#[test]
fn at_least_the_identity_instance_certifies() {
    let mut vars = Vars::new();
    let c = vars.declare("c", Domain::bits());
    let d = vars.declare("d", Domain::bits());
    let m_c = component("M_c", Proto::Riser, c, d);
    let m_d = component("M_d", Proto::Riser, d, c);
    let e_c = component("E_c", Proto::Riser, d, c);
    let e_d = component("E_d", Proto::Riser, c, d);
    let ag_c = AgSpec::new(e_c, m_c).unwrap();
    let ag_d = AgSpec::new(e_d, m_d).unwrap();
    let target_sys = combined(Proto::Riser, Proto::Riser, c, d);
    let true_env = ComponentSpec::builder("TRUE").build().unwrap();
    let target = AgSpec::new(true_env, target_sys).unwrap();
    let cert = compose(
        &CompositionProblem {
            vars: &vars,
            components: vec![&ag_c, &ag_d],
            target: &target,
            mapping: Substitution::default(),
        },
        &CompositionOptions::default(),
    )
    .unwrap();
    assert!(cert.holds(), "{}", cert.display(&vars));
}
