//! # opentla-scenarios
//!
//! Ready-made open-system scenarios built on the `opentla`
//! assumption/guarantee calculus:
//!
//! * [`Fig1`] — the two circularly-dependent processes from the
//!   introduction of *Open Systems in TLA*: the safety instance
//!   (`M⁰`: "output stays 0"), where the Composition Theorem closes
//!   the circle, and the liveness instance (`M¹`: "output eventually
//!   1"), where composition rightly fails;
//! * [`Mutex`] — a `k`-client arbiter specified assumption/guarantee
//!   style: clients guarantee request discipline assuming grant
//!   discipline; the arbiter guarantees mutual exclusion assuming
//!   request discipline. Weak fairness admits starvation, strong
//!   fairness excludes it — both machine-checked.
//! * [`ClockWorld`] — Section 2.3's "law of nature": a monotonic clock
//!   supplied to the Composition Theorem as a `TRUE ⊳ G` component,
//!   certifying timestamp monotonicity.
//! * [`TokenRing`] — `k` nodes over handshake channels in a ring: a
//!   length-`k` *circular* assumption chain, with token conservation,
//!   mutual exclusion, and circulation all machine-checked.
//! * [`AlternatingBit`] — the alternating-bit protocol as four open
//!   components whose four-cycle of wire-discipline assumptions the
//!   Composition Theorem discharges, certifying reliable in-order
//!   delivery.
//!
//! These are used by the runnable examples, the integration tests, and
//! the benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abp;
mod clock;
mod fig1;
mod mutex;
mod ring;

pub use abp::AlternatingBit;
pub use clock::ClockWorld;
pub use fig1::Fig1;
pub use mutex::{ArbiterFairness, Mutex};
pub use ring::TokenRing;
