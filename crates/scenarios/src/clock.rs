//! Timestamping under a "law of nature" — the paper's Section 2.3.
//!
//! Section 2.3 lists the uses of conditional implementation
//! `⊨ G ∧ … ⇒ …`; the first is a *law of nature*, e.g. "time increases
//! monotonically". Section 5 then notes the Composition Theorem covers
//! this for free: "we just let `M₁` equal `G` and `E₁` equal `true`,
//! since `true ⊳ G` equals `G`".
//!
//! This scenario exercises exactly that move. A clock component `G`
//! owns `now` and only ever advances it. Two stampers each own a
//! timestamp wire `tᵢ` and guarantee, *assuming the clock behaves*,
//! that their timestamp only ever moves forward and never runs ahead
//! of `now`. The target — "all timestamps are monotone and bounded by
//! `now`" — is certified by composing the stampers with the clock
//! supplied as a `TRUE ⊳ G` component.

use opentla::{AgSpec, Certificate, ComponentSpec, CompositionOptions, CompositionProblem, SpecError};
use opentla_check::{GuardedAction, Init, System};
use opentla_kernel::{Domain, Expr, Substitution, Value, VarId, Vars};

/// The clock world: a bounded monotonic clock and two timestampers.
#[derive(Clone, Debug)]
pub struct ClockWorld {
    vars: Vars,
    now: VarId,
    stamps: Vec<VarId>,
    horizon: i64,
}

impl ClockWorld {
    /// Builds the world with `stampers` timestamp wires and time
    /// bounded by `horizon` (the domain is `0..=horizon`).
    ///
    /// # Panics
    ///
    /// Panics if `stampers` is zero or `horizon` is not positive.
    pub fn new(stampers: usize, horizon: i64) -> ClockWorld {
        assert!(stampers > 0, "need at least one stamper");
        assert!(horizon > 0, "time must be able to advance");
        let mut vars = Vars::new();
        let now = vars.declare("now", Domain::int_range(0, horizon));
        let stamps = (1..=stampers)
            .map(|i| vars.declare(format!("t{i}"), Domain::int_range(0, horizon)))
            .collect();
        ClockWorld {
            vars,
            now,
            stamps,
            horizon,
        }
    }

    /// The registry.
    pub fn vars(&self) -> &Vars {
        &self.vars
    }

    /// The clock variable `now`.
    pub fn now(&self) -> VarId {
        self.now
    }

    /// The timestamp wire of stamper `i` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn stamp(&self, i: usize) -> VarId {
        self.stamps[i - 1]
    }

    /// The law of nature `G`: `now` starts at 0 and only ever advances
    /// (bounded by the horizon, since the checker is explicit-state).
    pub fn clock(&self) -> ComponentSpec {
        ComponentSpec::builder("clock")
            .outputs([self.now])
            .init(Init::new([(self.now, Value::Int(0))]))
            .action(GuardedAction::new(
                "tick",
                Expr::var(self.now).lt(Expr::int(self.horizon)),
                vec![(self.now, Expr::var(self.now).add(Expr::int(1)))],
            ))
            .build()
            .expect("clock is well-formed")
    }

    /// Stamper `i`: owns `tᵢ`; its only action copies `now` into `tᵢ`.
    pub fn stamper(&self, i: usize) -> ComponentSpec {
        let t = self.stamp(i);
        ComponentSpec::builder(format!("stamper{i}"))
            .outputs([t])
            .inputs([self.now])
            .init(Init::new([(t, Value::Int(0))]))
            .action(GuardedAction::new(
                "stamp",
                Expr::bool(true),
                vec![(t, Expr::var(self.now))],
            ))
            .build()
            .expect("stamper is well-formed")
    }

    /// Stamper `i`'s assumption: the clock only advances (the same
    /// component spec as [`ClockWorld::clock`], since assumptions are
    /// just component specifications of the environment).
    pub fn stamper_env(&self) -> ComponentSpec {
        self.clock()
    }

    /// The target guarantee: every timestamp only moves forward and
    /// never beyond `now` — expressed canonically as a component owning
    /// all stamps whose actions may set `tᵢ` to any value in
    /// `(tᵢ, now]`... rendered as one action per target value.
    pub fn target_guarantee(&self) -> ComponentSpec {
        let mut builder = ComponentSpec::builder("monotone-stamps")
            .outputs(self.stamps.iter().copied())
            .inputs([self.now])
            .init(Init::new(
                self.stamps.iter().map(|t| (*t, Value::Int(0))),
            ));
        for (idx, t) in self.stamps.iter().enumerate() {
            for v in 0..=self.horizon {
                builder = builder.action(GuardedAction::new(
                    format!("advance{}to{v}", idx + 1),
                    Expr::all([
                        Expr::int(v).ge(Expr::var(*t)),
                        Expr::int(v).le(Expr::var(self.now)),
                    ]),
                    vec![(*t, Expr::int(v))],
                ));
            }
        }
        builder.build().expect("target is well-formed")
    }

    /// Certifies, via the Composition Theorem with the clock supplied
    /// as `TRUE ⊳ G`, that the stampers under the law of nature
    /// implement the monotone-timestamps target:
    /// `G ∧ ∧ᵢ (clock ⊳ stamperᵢ) ⇒ (TRUE ⊳ monotone-stamps)`.
    ///
    /// # Errors
    ///
    /// Structural errors only.
    pub fn prove(&self, options: &CompositionOptions) -> Result<Certificate, SpecError> {
        let true_env = ComponentSpec::builder("TRUE").build()?;
        // The paper's move: M₁ = G, E₁ = TRUE.
        let mut ags = vec![AgSpec::new(true_env.clone(), self.clock())?];
        for i in 1..=self.stamps.len() {
            ags.push(AgSpec::new(self.stamper_env(), self.stamper(i))?);
        }
        let target = AgSpec::new(true_env, self.target_guarantee())?;
        let problem = CompositionProblem {
            vars: &self.vars,
            components: ags.iter().collect(),
            target: &target,
            mapping: Substitution::default(),
        };
        opentla::compose(&problem, options)
    }

    /// The closed product (clock plus stampers).
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn product(&self) -> Result<System, SpecError> {
        let clock = self.clock();
        let stampers: Vec<ComponentSpec> =
            (1..=self.stamps.len()).map(|i| self.stamper(i)).collect();
        let mut members: Vec<&ComponentSpec> = vec![&clock];
        members.extend(stampers.iter());
        opentla::closed_product(&self.vars, &members)
    }

    /// The invariant "no timestamp runs ahead of the clock".
    pub fn bounded_by_now(&self) -> Expr {
        Expr::all(
            self.stamps
                .iter()
                .map(|t| Expr::var(*t).le(Expr::var(self.now))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{check_invariant, check_step_invariant, explore, ExploreOptions};

    #[test]
    fn law_of_nature_composition_certifies() {
        let w = ClockWorld::new(2, 3);
        let cert = w.prove(&CompositionOptions::default()).unwrap();
        assert!(cert.holds(), "{}", cert.display(w.vars()));
        // The clock enters as a component: an H1 per stamper assumption
        // plus the trivial one for the clock's own TRUE assumption.
        let h1s = cert
            .obligations
            .iter()
            .filter(|o| o.id.starts_with("H1"))
            .count();
        assert_eq!(h1s, 3);
    }

    #[test]
    fn product_invariants() {
        let w = ClockWorld::new(2, 3);
        let sys = w.product().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert!(check_invariant(&sys, &graph, &w.bounded_by_now())
            .unwrap()
            .holds());
        // Monotonicity as a step invariant: t₁ never decreases.
        let t1 = w.stamp(1);
        let mono = Expr::prime(t1).ge(Expr::var(t1));
        let all_vars: Vec<_> = w.vars().iter().collect();
        assert!(check_step_invariant(&sys, &graph, &mono, &all_vars)
            .unwrap()
            .holds());
    }

    #[test]
    fn without_the_law_the_guarantee_fails() {
        // Replace the clock with a free-running "time machine" that may
        // also rewind: the stampers' assumption is then violated and
        // the target fails (stamps can go backwards). Check at the
        // complete-system level.
        let w = ClockWorld::new(1, 3);
        let mut vars = w.vars().clone();
        let now = w.now();
        let rewind = ComponentSpec::builder("time-machine")
            .outputs([now])
            .init(Init::new([(now, Value::Int(0))]))
            .action(GuardedAction::new(
                "tick",
                Expr::var(now).lt(Expr::int(3)),
                vec![(now, Expr::var(now).add(Expr::int(1)))],
            ))
            .action(GuardedAction::new(
                "rewind",
                Expr::var(now).gt(Expr::int(0)),
                vec![(now, Expr::int(0))],
            ))
            .build()
            .unwrap();
        let stamper = w.stamper(1);
        let sys = opentla::closed_product(&vars, &[&rewind, &stamper]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let t1 = w.stamp(1);
        let mono = Expr::prime(t1).ge(Expr::var(t1));
        let all_vars: Vec<_> = vars.iter().collect();
        let verdict = check_step_invariant(&sys, &graph, &mono, &all_vars).unwrap();
        assert!(
            !verdict.holds(),
            "with a rewinding clock the stamps go backwards"
        );
        let _ = &mut vars;
    }
}
