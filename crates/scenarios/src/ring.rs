//! A token ring over two-phase handshake channels — the fully
//! *circular* assumption structure.
//!
//! `k` nodes are connected in a ring by handshake channels
//! `c₀, …, c_{k−1}`; node `i` receives the token on `cᵢ` and forwards
//! it on `c_{(i+1) mod k}`. Taking the token enters the node's critical
//! section (`critᵢ = 1`); passing it leaves. The token starts in
//! flight on `c₀`.
//!
//! Every node's environment assumption is discharged by its *ring
//! predecessor's* guarantee — for `k` components the dependency cycle
//! has length `k`, the generalization of Figure 1's two-way circle.
//! The Composition Theorem certifies the mutual-exclusion target; the
//! circulation liveness (`□◇ critᵢ` under `WF`) is model-checked on
//! the complete system.

use opentla::{AgSpec, Certificate, ComponentSpec, CompositionOptions, CompositionProblem, SpecError};
use opentla_check::{GuardedAction, Init, System};
use opentla_kernel::{Domain, Expr, Substitution, Value, VarId, Vars};

/// One ring channel: the same wire triple as the queue example's
/// channels (`sig`, `ack`, `val` — the token carries no data, so `val`
/// ranges over `{0}`).
#[derive(Clone, Debug)]
struct RingChannel {
    sig: VarId,
    ack: VarId,
}

/// The token-ring world.
#[derive(Clone, Debug)]
pub struct TokenRing {
    vars: Vars,
    channels: Vec<RingChannel>,
    crits: Vec<VarId>,
}

impl TokenRing {
    /// Builds a ring of `k ≥ 2` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> TokenRing {
        assert!(k >= 2, "a ring needs at least two nodes");
        let mut vars = Vars::new();
        let channels = (0..k)
            .map(|i| RingChannel {
                sig: vars.declare(format!("c{i}.sig"), Domain::bits()),
                ack: vars.declare(format!("c{i}.ack"), Domain::bits()),
            })
            .collect();
        let crits = (0..k)
            .map(|i| vars.declare(format!("crit{i}"), Domain::bits()))
            .collect();
        TokenRing {
            vars,
            channels,
            crits,
        }
    }

    /// The registry.
    pub fn vars(&self) -> &Vars {
        &self.vars
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.crits.len()
    }

    /// Always `false`: rings have at least two nodes.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The critical-section flag of node `i` (0-based).
    pub fn crit(&self, i: usize) -> VarId {
        self.crits[i]
    }

    fn pending(&self, i: usize) -> Expr {
        let c = &self.channels[i];
        Expr::var(c.sig).ne(Expr::var(c.ack))
    }

    fn ready(&self, i: usize) -> Expr {
        let c = &self.channels[i];
        Expr::var(c.sig).eq(Expr::var(c.ack))
    }

    /// Node `i`: owns `critᵢ`, the ack wire of its incoming channel,
    /// and the signal wire of its outgoing channel.
    ///
    /// * `take`: incoming token pending and not critical → acknowledge
    ///   it and raise `critᵢ`;
    /// * `pass`: critical and the outgoing channel ready → send the
    ///   token onward and lower `critᵢ`.
    ///
    /// The token starts in flight on `c₀`, so node `k−1` (the sender of
    /// `c₀`) initializes `c₀.sig = 1`; every other wire starts 0.
    pub fn node(&self, i: usize) -> ComponentSpec {
        let k = self.len();
        let inc = &self.channels[i];
        let out_idx = (i + 1) % k;
        let out = &self.channels[out_idx];
        let crit = self.crits[i];
        let out_sig_init = if out_idx == 0 { 1 } else { 0 };
        ComponentSpec::builder(format!("node{i}"))
            .outputs([inc.ack, out.sig, crit])
            .inputs([inc.sig, out.ack])
            .init(Init::new([
                (inc.ack, Value::Int(0)),
                (out.sig, Value::Int(out_sig_init)),
                (crit, Value::Int(0)),
            ]))
            .action(GuardedAction::new(
                "take",
                Expr::all([self.pending(i), Expr::var(crit).eq(Expr::int(0))]),
                vec![
                    (inc.ack, Expr::int(1).sub(Expr::var(inc.ack))),
                    (crit, Expr::int(1)),
                ],
            ))
            .action(GuardedAction::new(
                "pass",
                Expr::all([Expr::var(crit).eq(Expr::int(1)), self.ready(out_idx)]),
                vec![
                    (out.sig, Expr::int(1).sub(Expr::var(out.sig))),
                    (crit, Expr::int(0)),
                ],
            ))
            .weak_fairness([0, 1])
            .build()
            .expect("ring node is well-formed")
    }

    /// Node `i`'s environment assumption: its predecessor drives the
    /// incoming signal wire only when the channel is ready, and its
    /// successor acknowledges the outgoing channel only when pending —
    /// the handshake discipline on both adjacent channels.
    pub fn node_env(&self, i: usize) -> ComponentSpec {
        let k = self.len();
        let inc = &self.channels[i];
        let out_idx = (i + 1) % k;
        let out = &self.channels[out_idx];
        let inc_sig_init = if i == 0 { 1 } else { 0 };
        ComponentSpec::builder(format!("env-of-node{i}"))
            .outputs([inc.sig, out.ack])
            .inputs([inc.ack, out.sig])
            .init(Init::new([
                (inc.sig, Value::Int(inc_sig_init)),
                (out.ack, Value::Int(0)),
            ]))
            .action(GuardedAction::new(
                "deliver",
                self.ready(i),
                vec![(inc.sig, Expr::int(1).sub(Expr::var(inc.sig)))],
            ))
            .action(GuardedAction::new(
                "consume",
                self.pending(out_idx),
                vec![(out.ack, Expr::int(1).sub(Expr::var(out.ack)))],
            ))
            .build()
            .expect("ring assumption is well-formed")
    }

    /// The target guarantee: at most one node is critical at a time,
    /// as a canonical component owning all the `crit` flags whose
    /// `enter` actions are guarded on exclusivity.
    pub fn target_guarantee(&self) -> ComponentSpec {
        let k = self.len();
        let mut builder = ComponentSpec::builder("mutual-exclusion")
            .outputs(self.crits.iter().copied())
            .init(Init::new(
                self.crits.iter().map(|c| (*c, Value::Int(0))),
            ));
        for i in 0..k {
            let mut guard = vec![Expr::var(self.crits[i]).eq(Expr::int(0))];
            guard.extend(
                (0..k)
                    .filter(|j| *j != i)
                    .map(|j| Expr::var(self.crits[j]).eq(Expr::int(0))),
            );
            builder = builder
                .action(GuardedAction::new(
                    format!("enter{i}"),
                    Expr::all(guard),
                    vec![(self.crits[i], Expr::int(1))],
                ))
                .action(GuardedAction::new(
                    format!("leave{i}"),
                    Expr::var(self.crits[i]).eq(Expr::int(1)),
                    vec![(self.crits[i], Expr::int(0))],
                ));
        }
        builder.build().expect("target is well-formed")
    }

    /// Certifies mutual exclusion via the Composition Theorem over the
    /// `k`-cycle of assumptions. The target's environment owns the
    /// channel wires (it does not constrain them).
    ///
    /// # Errors
    ///
    /// Structural errors only.
    pub fn prove_mutex(
        &self,
        options: &CompositionOptions,
    ) -> Result<Certificate, SpecError> {
        let ags: Vec<AgSpec> = (0..self.len())
            .map(|i| AgSpec::new(self.node_env(i), self.node(i)))
            .collect::<Result<_, _>>()?;
        let true_env = ComponentSpec::builder("TRUE").build()?;
        let target = AgSpec::new(true_env, self.target_guarantee())?;
        let problem = CompositionProblem {
            vars: &self.vars,
            components: ags.iter().collect(),
            target: &target,
            mapping: Substitution::default(),
        };
        opentla::compose(&problem, options)
    }

    /// The complete ring system.
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn complete_system(&self) -> Result<System, SpecError> {
        let nodes: Vec<ComponentSpec> = (0..self.len()).map(|i| self.node(i)).collect();
        let members: Vec<&ComponentSpec> = nodes.iter().collect();
        opentla::closed_product(&self.vars, &members)
    }

    /// The mutual-exclusion predicate.
    pub fn mutual_exclusion(&self) -> Expr {
        let k = self.len();
        let mut conjs = Vec::new();
        for i in 0..k {
            for j in i + 1..k {
                conjs.push(
                    Expr::all([
                        Expr::var(self.crits[i]).eq(Expr::int(1)),
                        Expr::var(self.crits[j]).eq(Expr::int(1)),
                    ])
                    .not(),
                );
            }
        }
        Expr::all(conjs)
    }

    /// A symmetry canonicalizer for the ring: the `k` cyclic rotations
    /// of the node indices, applied simultaneously to the channel wire
    /// pairs and the `crit` flags.
    ///
    /// Every node runs identical `take`/`pass` code over its adjacent
    /// channels, so rotation is an automorphism of the transition
    /// relation; [`mutual_exclusion`](TokenRing::mutual_exclusion) and
    /// [`token_conservation`](TokenRing::token_conservation) are
    /// rotation-invariant, so checking them on the reduced graph is
    /// sound.
    pub fn rotation_symmetry(&self) -> opentla_check::SlotPermutations {
        let sigs: Vec<VarId> = self.channels.iter().map(|c| c.sig).collect();
        let acks: Vec<VarId> = self.channels.iter().map(|c| c.ack).collect();
        opentla_check::SlotPermutations::processes(
            format!("ring-rotations({})", self.len()),
            self.vars.len(),
            &[&sigs, &acks, &self.crits],
            &opentla_check::SlotPermutations::rotations(self.len()),
        )
    }

    /// Token conservation: exactly one token exists — in flight on some
    /// channel or held by some critical node.
    pub fn token_conservation(&self) -> Expr {
        let k = self.len();
        let mut tokens = Expr::int(0);
        for i in 0..k {
            tokens = tokens.add(self.pending(i).ite(Expr::int(1), Expr::int(0)));
            tokens = tokens.add(
                Expr::var(self.crits[i])
                    .eq(Expr::int(1))
                    .ite(Expr::int(1), Expr::int(0)),
            );
        }
        tokens.eq(Expr::int(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{
        check_invariant, check_liveness, explore, ExploreOptions, LiveTarget,
    };

    #[test]
    fn ring_composes_mutex() {
        for k in [2usize, 3] {
            let w = TokenRing::new(k);
            let cert = w.prove_mutex(&CompositionOptions::default()).unwrap();
            assert!(cert.holds(), "k = {k}: {}", cert.display(w.vars()));
            let h1s = cert
                .obligations
                .iter()
                .filter(|o| o.id.starts_with("H1"))
                .count();
            assert_eq!(h1s, k, "one circularly-discharged assumption per node");
        }
    }

    #[test]
    fn token_is_conserved() {
        let w = TokenRing::new(3);
        let sys = w.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert!(check_invariant(&sys, &graph, &w.token_conservation())
            .unwrap()
            .holds());
        assert!(check_invariant(&sys, &graph, &w.mutual_exclusion())
            .unwrap()
            .holds());
    }

    #[test]
    fn token_circulates_under_fairness() {
        let w = TokenRing::new(3);
        let sys = w.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        for i in 0..3 {
            let verdict = check_liveness(
                &sys,
                &graph,
                &LiveTarget::AlwaysEventually(Expr::var(w.crit(i)).eq(Expr::int(1))),
            )
            .unwrap();
            assert!(verdict.holds(), "node {i} must be critical infinitely often");
        }
    }

    #[test]
    fn circulation_fails_without_fairness() {
        // Strip fairness from the nodes: the ring may stall anywhere.
        let w = TokenRing::new(2);
        let lazy: Vec<ComponentSpec> = (0..2)
            .map(|i| {
                let node = w.node(i);
                ComponentSpec::builder(format!("lazy{i}"))
                    .outputs(node.outputs().to_vec())
                    .internals(node.internals().to_vec())
                    .inputs(node.inputs().to_vec())
                    .init(node.init().clone())
                    .actions(node.actions().to_vec())
                    .build()
                    .unwrap()
            })
            .collect();
        let members: Vec<&ComponentSpec> = lazy.iter().collect();
        let sys = opentla::closed_product(w.vars(), &members).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let verdict = check_liveness(
            &sys,
            &graph,
            &LiveTarget::AlwaysEventually(Expr::var(w.crit(0)).eq(Expr::int(1))),
        )
        .unwrap();
        assert!(!verdict.holds(), "stuttering stalls the token");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn singleton_ring_rejected() {
        let _ = TokenRing::new(1);
    }
}
