//! The paper's Figure 1: two processes with circular
//! assumption/guarantee dependencies.
//!
//! * Safety instance: `M⁰_c` asserts `c` always equals 0, `M⁰_d` that
//!   `d` always equals 0. Process `Π_c` (repeatedly copies `d` into
//!   `c`) guarantees `M⁰_c` assuming `M⁰_d`, and symmetrically for
//!   `Π_d`. The Composition Theorem proves the circular composition
//!   implements `M⁰_c ∧ M⁰_d`.
//! * Liveness instance: `M¹_c` asserts `c` eventually equals 1. The
//!   same processes "guarantee" `M¹_c` assuming `M¹_d` and vice versa,
//!   yet their composition leaves both variables 0 forever — the
//!   canonical reason assumptions must be safety properties.

use opentla::{AgSpec, ComponentSpec};
use opentla_check::{GuardedAction, Init};
use opentla_kernel::{Domain, Expr, Formula, Value, VarId, Vars};

/// The Figure 1 world: variables, guarantees, processes, and both the
/// safety and liveness instances.
#[derive(Clone, Debug)]
pub struct Fig1 {
    vars: Vars,
    c: VarId,
    d: VarId,
}

impl Fig1 {
    /// Builds the two-wire world with `c, d ∈ {0, 1}`.
    pub fn new() -> Fig1 {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        Fig1 { vars, c, d }
    }

    /// The registry.
    pub fn vars(&self) -> &Vars {
        &self.vars
    }

    /// The wire `c`.
    pub fn c(&self) -> VarId {
        self.c
    }

    /// The wire `d`.
    pub fn d(&self) -> VarId {
        self.d
    }

    fn stays_zero(&self, name: &str, out: VarId, inp: VarId) -> ComponentSpec {
        ComponentSpec::builder(name)
            .outputs([out])
            .inputs([inp])
            .init(Init::new([(out, Value::Int(0))]))
            .build()
            .expect("well-formed")
    }

    /// `M⁰_c`: the canonical component asserting `c` stays 0.
    pub fn m0_c(&self) -> ComponentSpec {
        self.stays_zero("M0_c", self.c, self.d)
    }

    /// `M⁰_d`: the canonical component asserting `d` stays 0.
    pub fn m0_d(&self) -> ComponentSpec {
        self.stays_zero("M0_d", self.d, self.c)
    }

    /// The process `Π_c`: starts with `c = 0` and repeatedly sets `c`
    /// to the current value of `d`.
    pub fn pi_c(&self) -> ComponentSpec {
        ComponentSpec::builder("Pi_c")
            .outputs([self.c])
            .inputs([self.d])
            .init(Init::new([(self.c, Value::Int(0))]))
            .action(GuardedAction::new(
                "copy_d",
                Expr::bool(true),
                vec![(self.c, Expr::var(self.d))],
            ))
            .build()
            .expect("well-formed")
    }

    /// The process `Π_d`: starts with `d = 0` and repeatedly sets `d`
    /// to the current value of `c`.
    pub fn pi_d(&self) -> ComponentSpec {
        ComponentSpec::builder("Pi_d")
            .outputs([self.d])
            .inputs([self.c])
            .init(Init::new([(self.d, Value::Int(0))]))
            .action(GuardedAction::new(
                "copy_c",
                Expr::bool(true),
                vec![(self.d, Expr::var(self.c))],
            ))
            .build()
            .expect("well-formed")
    }

    /// The assumption/guarantee specification `M⁰_d ⊳ M⁰_c` of the
    /// first process.
    ///
    /// # Errors
    ///
    /// Never fails for these components.
    pub fn ag_c(&self) -> Result<AgSpec, opentla::SpecError> {
        AgSpec::new(self.m0_d(), self.m0_c())
    }

    /// The assumption/guarantee specification `M⁰_c ⊳ M⁰_d` of the
    /// second process.
    ///
    /// # Errors
    ///
    /// Never fails for these components.
    pub fn ag_d(&self) -> Result<AgSpec, opentla::SpecError> {
        AgSpec::new(self.m0_c(), self.m0_d())
    }

    /// The target guarantee `M⁰_c ∧ M⁰_d` as one component owning both
    /// wires.
    pub fn target_both_zero(&self) -> ComponentSpec {
        ComponentSpec::builder("M0_c∧M0_d")
            .outputs([self.c, self.d])
            .init(Init::new([
                (self.c, Value::Int(0)),
                (self.d, Value::Int(0)),
            ]))
            .build()
            .expect("well-formed")
    }

    /// The empty (always-true) environment assumption.
    pub fn true_env(&self) -> ComponentSpec {
        ComponentSpec::builder("TRUE").build().expect("well-formed")
    }

    /// The full safety composition problem, ready for
    /// [`opentla::compose`].
    ///
    /// # Errors
    ///
    /// Never fails for these components.
    pub fn safety_target(&self) -> Result<AgSpec, opentla::SpecError> {
        AgSpec::new(self.true_env(), self.target_both_zero())
    }

    /// `M¹_c`: the *liveness* guarantee "`c` eventually equals 1", as a
    /// raw formula. It is **not** expressible as a safety-canonical
    /// component — which is the point of the second Figure 1 example.
    pub fn m1_c(&self) -> Formula {
        Formula::pred(Expr::var(self.c).eq(Expr::int(1))).eventually()
    }

    /// `M¹_d`: "`d` eventually equals 1".
    pub fn m1_d(&self) -> Formula {
        Formula::pred(Expr::var(self.d).eq(Expr::int(1))).eventually()
    }
}

impl Default for Fig1 {
    fn default() -> Self {
        Fig1::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla::{
        check_ag_safety, closed_product, compose, CompositionOptions, CompositionProblem,
    };
    use opentla_check::{
        check_invariant, check_liveness, explore, ExploreOptions, LiveTarget,
    };
    use opentla_kernel::Substitution;

    #[test]
    fn safety_instance_composes() {
        let w = Fig1::new();
        let ag_c = w.ag_c().unwrap();
        let ag_d = w.ag_d().unwrap();
        let target = w.safety_target().unwrap();
        let problem = CompositionProblem {
            vars: w.vars(),
            components: vec![&ag_c, &ag_d],
            target: &target,
            mapping: Substitution::default(),
        };
        let cert = compose(&problem, &CompositionOptions::default()).unwrap();
        assert!(cert.holds(), "{}", cert.display(w.vars()));
    }

    #[test]
    fn processes_realize_their_specs() {
        let w = Fig1::new();
        // Π_c against a chaotic d.
        let chaos = opentla::chaos_environment("chaos_d", w.vars(), &[w.d()]);
        let sys = closed_product(w.vars(), &[&w.pi_c(), &chaos]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let verdict = check_ag_safety(
            &sys,
            &graph,
            &w.m0_d().safety_formula(),
            &w.m0_c().safety_formula(),
        )
        .unwrap();
        assert!(verdict.holds());
    }

    #[test]
    fn composition_of_processes_keeps_both_zero() {
        let w = Fig1::new();
        let sys = closed_product(w.vars(), &[&w.pi_c(), &w.pi_d()]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let zero = Expr::all([
            Expr::var(w.c()).eq(Expr::int(0)),
            Expr::var(w.d()).eq(Expr::int(0)),
        ]);
        assert!(check_invariant(&sys, &graph, &zero).unwrap().holds());
    }

    #[test]
    fn liveness_instance_fails() {
        // The composition of Π_c and Π_d does not achieve ◇(c = 1):
        // the model checker exhibits the stuttering behavior.
        let w = Fig1::new();
        let sys = closed_product(w.vars(), &[&w.pi_c(), &w.pi_d()]).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let verdict = check_liveness(
            &sys,
            &graph,
            &LiveTarget::Eventually(Expr::var(w.c()).eq(Expr::int(1))),
        )
        .unwrap();
        let cx = verdict.counterexample().expect("must fail");
        // The counterexample is the all-zero stutter.
        assert_eq!(cx.states().len(), 1);
    }

    #[test]
    fn liveness_assumptions_are_rejected_by_the_calculus() {
        // Trying to package M¹ as an assumption: the only canonical way
        // to force ◇(d = 1) in a component is fairness, and AgSpec
        // rejects assumptions with fairness.
        let w = Fig1::new();
        let env_live = ComponentSpec::builder("M1_d")
            .outputs([w.d()])
            .init(Init::new([(w.d(), Value::Int(0))]))
            .action(GuardedAction::new(
                "raise",
                Expr::var(w.d()).eq(Expr::int(0)),
                vec![(w.d(), Expr::int(1))],
            ))
            .weak_fairness([0])
            .build()
            .unwrap();
        let sys = w.m0_c();
        assert!(matches!(
            AgSpec::new(env_live, sys),
            Err(opentla::SpecError::EnvWithFairness { .. })
        ));
    }
}
