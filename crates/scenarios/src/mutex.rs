//! A `k`-client mutual-exclusion arbiter, specified
//! assumption/guarantee style.
//!
//! `k + 1` open components over the wires `rᵢ` (requests, owned by the
//! clients) and `gᵢ` (grants, owned by the arbiter):
//!
//! * **Client `i`** guarantees request discipline — it raises `rᵢ` only
//!   when idle and drops it only while granted, and (fairness) it
//!   eventually releases a grant — *assuming* grant discipline on
//!   `gᵢ` (raised only while requested, lowered only after release).
//! * **The arbiter** guarantees grant discipline on every wire and
//!   mutual exclusion (never two grants), *assuming* request
//!   discipline from all clients.
//!
//! The Composition Theorem assembles these into the closed-system
//! guarantee: grants stay mutually exclusive, and — if the arbiter's
//! grant fairness is **strong** — every persistent request is served.
//! With merely **weak** grant fairness the theorem's liveness
//! hypothesis fails, and the checker exhibits the classic starvation
//! cycle: the other client's grant keeps interrupting the waiting
//! client's enabledness. This is the textbook WF-vs-SF distinction,
//! machine-checked.

use opentla::{AgSpec, Certificate, ComponentSpec, CompositionOptions, CompositionProblem, SpecError};
use opentla_check::{GuardedAction, Init, System};
use opentla_kernel::{Domain, Expr, Substitution, Value, VarId, Vars};

/// Which fairness the arbiter (and the target specification) promises
/// for granting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArbiterFairness {
    /// `WF(grantᵢ)` — admits starvation.
    Weak,
    /// `SF(grantᵢ)` — excludes starvation.
    Strong,
}

/// The mutex world: wires, components, and proofs.
#[derive(Clone, Debug)]
pub struct Mutex {
    vars: Vars,
    r: Vec<VarId>,
    g: Vec<VarId>,
    fairness: ArbiterFairness,
}

impl Mutex {
    /// Builds the two-client world with the given arbiter fairness.
    pub fn new(fairness: ArbiterFairness) -> Mutex {
        Mutex::with_clients(2, fairness)
    }

    /// Builds the world with `clients ≥ 2` clients.
    ///
    /// # Panics
    ///
    /// Panics if `clients < 2` (one client has nothing to contend
    /// with).
    pub fn with_clients(clients: usize, fairness: ArbiterFairness) -> Mutex {
        assert!(clients >= 2, "need at least two clients");
        let mut vars = Vars::new();
        let r: Vec<VarId> = (1..=clients)
            .map(|i| vars.declare(format!("r{i}"), Domain::bits()))
            .collect();
        let g: Vec<VarId> = (1..=clients)
            .map(|i| vars.declare(format!("g{i}"), Domain::bits()))
            .collect();
        Mutex {
            vars,
            r,
            g,
            fairness,
        }
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.r.len()
    }

    /// The registry.
    pub fn vars(&self) -> &Vars {
        &self.vars
    }

    /// The request wire of client `i` (1-based).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ i ≤ clients`.
    pub fn r(&self, i: usize) -> VarId {
        self.r[i - 1]
    }

    /// The grant wire of client `i` (1-based).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ i ≤ clients`.
    pub fn g(&self, i: usize) -> VarId {
        self.g[i - 1]
    }

    /// Client `i`: owns `rᵢ`, reads `gᵢ`; requests when idle, releases
    /// (eventually — `WF`) when granted.
    pub fn client(&self, i: usize) -> ComponentSpec {
        let (r, g) = (self.r(i), self.g(i));
        ComponentSpec::builder(format!("client{i}"))
            .outputs([r])
            .inputs([g])
            .init(Init::new([(r, Value::Int(0))]))
            .action(GuardedAction::new(
                "request",
                Expr::all([
                    Expr::var(r).eq(Expr::int(0)),
                    Expr::var(g).eq(Expr::int(0)),
                ]),
                vec![(r, Expr::int(1))],
            ))
            .action(GuardedAction::new(
                "release",
                Expr::all([
                    Expr::var(r).eq(Expr::int(1)),
                    Expr::var(g).eq(Expr::int(1)),
                ]),
                vec![(r, Expr::int(0))],
            ))
            .weak_fairness([1])
            .build()
            .expect("client is well-formed")
    }

    /// Client `i`'s environment assumption: grant discipline on `gᵢ` —
    /// raised only while `rᵢ = 1`, lowered only after `rᵢ = 0`.
    pub fn client_env(&self, i: usize) -> ComponentSpec {
        let (r, g) = (self.r(i), self.g(i));
        ComponentSpec::builder(format!("grant-discipline{i}"))
            .outputs([g])
            .inputs([r])
            .init(Init::new([(g, Value::Int(0))]))
            .action(GuardedAction::new(
                "raise",
                Expr::all([
                    Expr::var(r).eq(Expr::int(1)),
                    Expr::var(g).eq(Expr::int(0)),
                ]),
                vec![(g, Expr::int(1))],
            ))
            .action(GuardedAction::new(
                "lower",
                Expr::all([
                    Expr::var(r).eq(Expr::int(0)),
                    Expr::var(g).eq(Expr::int(1)),
                ]),
                vec![(g, Expr::int(0))],
            ))
            .build()
            .expect("assumption is well-formed")
    }

    fn grant_actions(&self) -> Vec<GuardedAction> {
        let k = self.clients();
        let mut actions = Vec::new();
        for i in 1..=k {
            let (r, g) = (self.r(i), self.g(i));
            let mut conj = vec![
                Expr::var(r).eq(Expr::int(1)),
                Expr::var(g).eq(Expr::int(0)),
            ];
            conj.extend(
                (1..=k)
                    .filter(|j| *j != i)
                    .map(|j| Expr::var(self.g(j)).eq(Expr::int(0))),
            );
            actions.push(GuardedAction::new(
                format!("grant{i}"),
                Expr::all(conj),
                vec![(g, Expr::int(1))],
            ));
        }
        for i in 1..=k {
            let (r, g) = (self.r(i), self.g(i));
            actions.push(GuardedAction::new(
                format!("revoke{i}"),
                Expr::all([
                    Expr::var(g).eq(Expr::int(1)),
                    Expr::var(r).eq(Expr::int(0)),
                ]),
                vec![(g, Expr::int(0))],
            ));
        }
        actions
    }

    /// The arbiter: owns all grants; grants only a requester and only
    /// when no grant is out; revokes after release. Grant fairness per
    /// the chosen [`ArbiterFairness`]; revocation is always `WF`.
    pub fn arbiter(&self) -> ComponentSpec {
        let k = self.clients();
        let mut builder = ComponentSpec::builder("arbiter")
            .outputs(self.g.iter().copied())
            .inputs(self.r.iter().copied())
            .init(Init::new(
                self.g.iter().map(|g| (*g, Value::Int(0))),
            ))
            .actions(self.grant_actions());
        for i in 0..k {
            builder = match self.fairness {
                ArbiterFairness::Weak => builder.weak_fairness([i]),
                ArbiterFairness::Strong => builder.strong_fairness([i]),
            };
        }
        for i in k..2 * k {
            builder = builder.weak_fairness([i]);
        }
        builder.build().expect("arbiter is well-formed")
    }

    /// The arbiter's assumption: request discipline on every wire.
    pub fn arbiter_env(&self) -> ComponentSpec {
        let mut builder = ComponentSpec::builder("request-discipline")
            .outputs(self.r.iter().copied())
            .inputs(self.g.iter().copied())
            .init(Init::new(
                self.r.iter().map(|r| (*r, Value::Int(0))),
            ));
        for i in 1..=self.clients() {
            let (r, g) = (self.r(i), self.g(i));
            builder = builder
                .action(GuardedAction::new(
                    format!("raise{i}"),
                    Expr::all([
                        Expr::var(r).eq(Expr::int(0)),
                        Expr::var(g).eq(Expr::int(0)),
                    ]),
                    vec![(r, Expr::int(1))],
                ))
                .action(GuardedAction::new(
                    format!("drop{i}"),
                    Expr::all([
                        Expr::var(r).eq(Expr::int(1)),
                        Expr::var(g).eq(Expr::int(1)),
                    ]),
                    vec![(r, Expr::int(0))],
                ));
        }
        builder.build().expect("assumption is well-formed")
    }

    /// The target guarantee: grant discipline on every wire with
    /// mutual exclusion built into the guards, plus grant fairness of
    /// the chosen strength.
    pub fn target_guarantee(&self) -> ComponentSpec {
        let k = self.clients();
        let mut builder = ComponentSpec::builder("safe-grants")
            .outputs(self.g.iter().copied())
            .inputs(self.r.iter().copied())
            .init(Init::new(
                self.g.iter().map(|g| (*g, Value::Int(0))),
            ))
            .actions(self.grant_actions());
        // The target always demands *strong* grant fairness — that is
        // the service guarantee being sold. Whether the hypothesis can
        // be discharged depends on the arbiter's strength.
        for i in 0..k {
            builder = builder.strong_fairness([i]);
        }
        for i in k..2 * k {
            builder = builder.weak_fairness([i]);
        }
        builder.build().expect("target is well-formed")
    }

    /// The composition certificate for
    /// `G ∧ (E₁ ⊳ client₁) ∧ (E₂ ⊳ client₂) ∧ (E_arb ⊳ arbiter) ⇒
    /// (TRUE ⊳ safe-grants)`.
    ///
    /// Holds for a [`ArbiterFairness::Strong`] arbiter; fails its `H2b`
    /// obligations for a weak one, with a starvation lasso.
    ///
    /// # Errors
    ///
    /// Structural errors only.
    pub fn prove(&self, options: &CompositionOptions) -> Result<Certificate, SpecError> {
        let mut ags: Vec<AgSpec> = (1..=self.clients())
            .map(|i| AgSpec::new(self.client_env(i), self.client(i)))
            .collect::<Result<_, _>>()?;
        ags.push(AgSpec::new(self.arbiter_env(), self.arbiter())?);
        let true_env = ComponentSpec::builder("TRUE").build()?;
        let target = AgSpec::new(true_env, self.target_guarantee())?;
        let problem = CompositionProblem {
            vars: &self.vars,
            components: ags.iter().collect(),
            target: &target,
            mapping: Substitution::default(),
        };
        opentla::compose(&problem, options)
    }

    /// The closed product of the three implementations.
    ///
    /// # Errors
    ///
    /// Never fails for these components.
    pub fn product(&self) -> Result<System, SpecError> {
        let clients: Vec<ComponentSpec> =
            (1..=self.clients()).map(|i| self.client(i)).collect();
        let arbiter = self.arbiter();
        let mut members: Vec<&ComponentSpec> = clients.iter().collect();
        members.push(&arbiter);
        opentla::closed_product(&self.vars, &members)
    }

    /// The mutual-exclusion predicate: no two grants are out at once.
    pub fn mutual_exclusion(&self) -> Expr {
        let k = self.clients();
        let mut conjs = Vec::new();
        for i in 1..=k {
            for j in i + 1..=k {
                conjs.push(
                    Expr::all([
                        Expr::var(self.g(i)).eq(Expr::int(1)),
                        Expr::var(self.g(j)).eq(Expr::int(1)),
                    ])
                    .not(),
                );
            }
        }
        Expr::all(conjs)
    }

    /// A symmetry canonicalizer for the mutex world: all `k!`
    /// permutations of the client indices, applied simultaneously to
    /// the request and grant wires.
    ///
    /// Clients are interchangeable — identical client code, and the
    /// arbiter's `grant`/`revoke` actions are the same for every wire —
    /// so any client permutation is an automorphism of the transition
    /// relation; [`mutual_exclusion`](Mutex::mutual_exclusion) is
    /// permutation-invariant, so checking it on the reduced graph is
    /// sound. (Per-client properties like
    /// [`request_served`](Mutex::request_served) are *not* symmetric —
    /// check those on a full graph.)
    pub fn client_symmetry(&self) -> opentla_check::SlotPermutations {
        opentla_check::SlotPermutations::processes(
            format!("mutex-clients({})", self.clients()),
            self.vars.len(),
            &[&self.r, &self.g],
            &opentla_check::SlotPermutations::all_index_permutations(self.clients()),
        )
    }

    /// The service property for client `i` as a leads-to pair:
    /// `rᵢ = 1 ↝ gᵢ = 1`.
    pub fn request_served(&self, i: usize) -> (Expr, Expr) {
        (
            Expr::var(self.r(i)).eq(Expr::int(1)),
            Expr::var(self.g(i)).eq(Expr::int(1)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{
        check_invariant, check_liveness, explore, ExploreOptions, LiveTarget,
    };
    use opentla_semantics::{eval, EvalCtx};

    #[test]
    fn strong_arbiter_composes() {
        let w = Mutex::new(ArbiterFairness::Strong);
        let cert = w.prove(&CompositionOptions::default()).unwrap();
        assert!(cert.holds(), "{}", cert.display(w.vars()));
    }

    #[test]
    fn weak_arbiter_fails_liveness_with_starvation_lasso() {
        let w = Mutex::new(ArbiterFairness::Weak);
        let cert = w.prove(&CompositionOptions::default()).unwrap();
        assert!(!cert.holds());
        let failure = cert.first_failure().unwrap();
        assert!(failure.id.starts_with("H2b"), "{}", failure.id);
        // The counterexample is a genuine fair behavior of the product
        // violating SF(grant): replay it semantically.
        let opentla::ObligationStatus::Failed(cx) = &failure.status else {
            panic!("expected failure");
        };
        let lasso = cx.to_lasso();
        let product = w.product().unwrap();
        let ctx = EvalCtx::with_universe(product.universe().clone());
        assert!(
            eval(&product.formula(), &lasso, &ctx).unwrap(),
            "starvation lasso must be a fair product behavior"
        );
    }

    #[test]
    fn mutual_exclusion_invariant() {
        for fairness in [ArbiterFairness::Weak, ArbiterFairness::Strong] {
            let w = Mutex::new(fairness);
            let sys = w.product().unwrap();
            let graph = explore(&sys, &ExploreOptions::default()).unwrap();
            let verdict = check_invariant(&sys, &graph, &w.mutual_exclusion()).unwrap();
            assert!(verdict.holds(), "{fairness:?}");
        }
    }

    #[test]
    fn service_depends_on_fairness_strength() {
        // r1 ↝ g1 holds with the strong arbiter, fails with the weak.
        let strong = Mutex::new(ArbiterFairness::Strong);
        let sys = strong.product().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let (p, q) = strong.request_served(1);
        assert!(check_liveness(&sys, &graph, &LiveTarget::LeadsTo(p, q))
            .unwrap()
            .holds());

        let weak = Mutex::new(ArbiterFairness::Weak);
        let sys = weak.product().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let (p, q) = weak.request_served(1);
        let verdict = check_liveness(&sys, &graph, &LiveTarget::LeadsTo(p, q)).unwrap();
        assert!(!verdict.holds(), "weak fairness admits starvation");
    }

    #[test]
    fn three_clients_compose_with_strong_arbiter() {
        let w = Mutex::with_clients(3, ArbiterFairness::Strong);
        let cert = w.prove(&CompositionOptions::default()).unwrap();
        assert!(cert.holds(), "{}", cert.display(w.vars()));
        // One H1 per client + one for the arbiter.
        let h1s = cert
            .obligations
            .iter()
            .filter(|o| o.id.starts_with("H1"))
            .count();
        assert_eq!(h1s, 4);
        // Mutual exclusion across all pairs.
        let sys = w.product().unwrap();
        let graph =
            opentla_check::explore(&sys, &opentla_check::ExploreOptions::default())
                .unwrap();
        assert!(
            opentla_check::check_invariant(&sys, &graph, &w.mutual_exclusion())
                .unwrap()
                .holds()
        );
    }

    #[test]
    fn three_clients_weak_arbiter_starves() {
        let w = Mutex::with_clients(3, ArbiterFairness::Weak);
        let cert = w.prove(&CompositionOptions::default()).unwrap();
        assert!(!cert.holds());
        assert!(cert.first_failure().unwrap().id.starts_with("H2b"));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_client_rejected() {
        let _ = Mutex::with_clients(1, ArbiterFairness::Weak);
    }

    #[test]
    fn grants_only_to_requesters() {
        let w = Mutex::new(ArbiterFairness::Strong);
        let sys = w.product().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        // g_i = 1 ⇒ the grant was preceded by a request; as a state
        // invariant: g_i ⇒ r_i ∨ … actually r_i may have been dropped
        // only while granted, so g_i = 1 ∧ r_i = 0 is transiently legal
        // (after release, before revoke). The real invariant: a grant
        // never appears without a request having been up — check the
        // step invariant "g_i rises only when r_i = 1".
        for i in [1usize, 2] {
            let rise_only_when_requested = Expr::all([
                Expr::prime(w.g(i)).eq(Expr::int(1)),
                Expr::var(w.g(i)).eq(Expr::int(0)),
            ])
            .implies(Expr::var(w.r(i)).eq(Expr::int(1)));
            let all_vars: Vec<_> = w.vars().iter().collect();
            let verdict = opentla_check::check_step_invariant(
                &sys,
                &graph,
                &rise_only_when_requested,
                &all_vars,
            )
            .unwrap();
            // check_step_invariant checks [A]_v; we want □A — every
            // step must satisfy the implication, and stutters do
            // trivially (antecedent false). The subscript trick: with
            // v = all vars, non-stuttering steps must satisfy A.
            assert!(verdict.holds(), "client {i}");
        }
    }
}
