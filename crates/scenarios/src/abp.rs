//! The alternating-bit protocol, assumption/guarantee style.
//!
//! Four open components implement reliable, in-order delivery of `K`
//! messages over unreliable-looking wires:
//!
//! * the **sender** owns `s.bit`/`s.val`/`sent` and transmits message
//!   `n` (payload `n` itself) by flipping its bit — but only after the
//!   previous message's acknowledgment came back (`a.bit = s.bit`);
//! * the **forward wire** owns the receiver-side copies
//!   `f.bit`/`f.val` and lazily synchronizes them with the sender's
//!   wires (laziness models loss-with-retransmission: in an untimed
//!   model, a lossy-but-fair medium is indistinguishable from an
//!   arbitrarily slow one);
//! * the **receiver** owns `r.bit` and the delivery counter `recv`,
//!   consuming a message whenever `f.bit` differs from `r.bit`;
//! * the **ack wire** owns `a.bit` and synchronizes it with `r.bit`.
//!
//! Each component's assumption describes exactly the wire discipline
//! its neighbors guarantee — a four-cycle of assumptions, discharged by
//! the Composition Theorem. The certified target is the *reliable
//! channel* specification: `recv` counts monotonically from 0 toward
//! `K`, with `WF` forcing completion. In-order exactly-once content
//! delivery is checked as complete-system invariants.

use opentla::{
    faults, AgSpec, Certificate, ComponentSpec, CompositionOptions, CompositionProblem, SpecError,
};
use opentla_check::{GuardedAction, Init, System};
use opentla_kernel::{Domain, Expr, Formula, Substitution, Value, VarId, Vars};

/// Index of the action named `name` in `system`.
///
/// # Panics
///
/// Panics if no action has that name (the scenario builders below only
/// look up actions they themselves created).
fn action_index(system: &System, name: &str) -> usize {
    system
        .actions()
        .iter()
        .position(|a| a.name() == name)
        .unwrap_or_else(|| panic!("system has no action named {name}"))
}

/// The alternating-bit world for a stream of `K` messages.
#[derive(Clone, Debug)]
pub struct AlternatingBit {
    vars: Vars,
    s_bit: VarId,
    s_val: VarId,
    sent: VarId,
    f_bit: VarId,
    f_val: VarId,
    r_bit: VarId,
    recv: VarId,
    a_bit: VarId,
    messages: i64,
}

impl AlternatingBit {
    /// Builds the world for `messages = K ≥ 1` messages (message `n`
    /// carries payload `n`).
    ///
    /// # Panics
    ///
    /// Panics if `messages` is zero.
    pub fn new(messages: i64) -> AlternatingBit {
        assert!(messages >= 1, "need at least one message");
        let mut vars = Vars::new();
        let payload = Domain::int_range(0, messages - 1);
        let counter = Domain::int_range(0, messages);
        let s_bit = vars.declare("s.bit", Domain::bits());
        let s_val = vars.declare("s.val", payload.clone());
        let sent = vars.declare("sent", counter.clone());
        let f_bit = vars.declare("f.bit", Domain::bits());
        let f_val = vars.declare("f.val", payload);
        let r_bit = vars.declare("r.bit", Domain::bits());
        let recv = vars.declare("recv", counter);
        let a_bit = vars.declare("a.bit", Domain::bits());
        AlternatingBit {
            vars,
            s_bit,
            s_val,
            sent,
            f_bit,
            f_val,
            r_bit,
            recv,
            a_bit,
            messages,
        }
    }

    /// The registry.
    pub fn vars(&self) -> &Vars {
        &self.vars
    }

    /// The number of messages `K`.
    pub fn messages(&self) -> i64 {
        self.messages
    }

    /// The delivery counter variable `recv`.
    pub fn recv(&self) -> VarId {
        self.recv
    }

    /// The sender: transmit the next message once the previous one is
    /// acknowledged.
    pub fn sender(&self) -> ComponentSpec {
        ComponentSpec::builder("sender")
            .outputs([self.s_bit, self.s_val, self.sent])
            .inputs([self.a_bit])
            .init(Init::new([
                (self.s_bit, Value::Int(0)),
                (self.s_val, Value::Int(0)),
                (self.sent, Value::Int(0)),
            ]))
            .action(GuardedAction::new(
                "advance",
                Expr::all([
                    Expr::var(self.a_bit).eq(Expr::var(self.s_bit)),
                    Expr::var(self.sent).lt(Expr::int(self.messages)),
                ]),
                vec![
                    (self.s_val, Expr::var(self.sent)),
                    (self.s_bit, Expr::int(1).sub(Expr::var(self.s_bit))),
                    (self.sent, Expr::var(self.sent).add(Expr::int(1))),
                ],
            ))
            .weak_fairness([0])
            .build()
            .expect("sender is well-formed")
    }

    /// The sender's assumption: the acknowledgment wire only ever flips
    /// *toward* the sender's current bit (acks are never spurious).
    pub fn sender_env(&self) -> ComponentSpec {
        ComponentSpec::builder("ack-discipline")
            .outputs([self.a_bit])
            .inputs([self.s_bit])
            .init(Init::new([(self.a_bit, Value::Int(0))]))
            .action(GuardedAction::new(
                "ack",
                Expr::var(self.a_bit).ne(Expr::var(self.s_bit)),
                vec![(self.a_bit, Expr::var(self.s_bit))],
            ))
            .build()
            .expect("assumption is well-formed")
    }

    /// The forward wire: lazily copies the sender's wires.
    pub fn forward_wire(&self) -> ComponentSpec {
        ComponentSpec::builder("fwd-wire")
            .outputs([self.f_bit, self.f_val])
            .inputs([self.s_bit, self.s_val])
            .init(Init::new([
                (self.f_bit, Value::Int(0)),
                (self.f_val, Value::Int(0)),
            ]))
            .action(GuardedAction::new(
                "sync_f",
                Expr::var(self.f_bit).ne(Expr::var(self.s_bit)),
                vec![
                    (self.f_bit, Expr::var(self.s_bit)),
                    (self.f_val, Expr::var(self.s_val)),
                ],
            ))
            .weak_fairness([0])
            .build()
            .expect("wire is well-formed")
    }

    /// The forward wire's assumption: the sender changes its wires only
    /// by a proper transmission — new payload plus bit flip, and only
    /// when the handshake round-trip has completed (`a.bit = s.bit`).
    pub fn forward_env(&self) -> ComponentSpec {
        let sends = GuardedAction::family(
            "send",
            (0..self.messages).map(Value::Int),
            |v| {
                (
                    Expr::var(self.a_bit).eq(Expr::var(self.s_bit)),
                    vec![
                        (self.s_val, Expr::con(v.clone())),
                        (self.s_bit, Expr::int(1).sub(Expr::var(self.s_bit))),
                    ],
                )
            },
        );
        ComponentSpec::builder("send-discipline")
            .outputs([self.s_bit, self.s_val])
            .inputs([self.a_bit])
            .init(Init::new([
                (self.s_bit, Value::Int(0)),
                (self.s_val, Value::Int(0)),
            ]))
            .actions(sends)
            .build()
            .expect("assumption is well-formed")
    }

    /// The receiver: consume a fresh message and flip the ack bit.
    pub fn receiver(&self) -> ComponentSpec {
        ComponentSpec::builder("receiver")
            .outputs([self.r_bit, self.recv])
            .inputs([self.f_bit, self.f_val])
            .init(Init::new([
                (self.r_bit, Value::Int(0)),
                (self.recv, Value::Int(0)),
            ]))
            .action(GuardedAction::new(
                "receive",
                Expr::all([
                    Expr::var(self.f_bit).ne(Expr::var(self.r_bit)),
                    Expr::var(self.recv).lt(Expr::int(self.messages)),
                ]),
                vec![
                    (self.r_bit, Expr::var(self.f_bit)),
                    (self.recv, Expr::var(self.recv).add(Expr::int(1))),
                ],
            ))
            .weak_fairness([0])
            .build()
            .expect("receiver is well-formed")
    }

    /// The receiver's assumption: the forward wire flips only when the
    /// receiver has consumed the previous message (`f.bit = r.bit`),
    /// and then delivers exactly the next in-order payload — which is
    /// the receiver's own count.
    pub fn receiver_env(&self) -> ComponentSpec {
        ComponentSpec::builder("delivery-discipline")
            .outputs([self.f_bit, self.f_val])
            .inputs([self.r_bit, self.recv])
            .init(Init::new([
                (self.f_bit, Value::Int(0)),
                (self.f_val, Value::Int(0)),
            ]))
            .action(GuardedAction::new(
                "deliver",
                Expr::all([
                    Expr::var(self.f_bit).eq(Expr::var(self.r_bit)),
                    Expr::var(self.recv).lt(Expr::int(self.messages)),
                ]),
                vec![
                    (self.f_val, Expr::var(self.recv)),
                    (self.f_bit, Expr::int(1).sub(Expr::var(self.f_bit))),
                ],
            ))
            .build()
            .expect("assumption is well-formed")
    }

    /// The ack wire: lazily copies the receiver's bit back.
    pub fn ack_wire(&self) -> ComponentSpec {
        ComponentSpec::builder("ack-wire")
            .outputs([self.a_bit])
            .inputs([self.r_bit])
            .init(Init::new([(self.a_bit, Value::Int(0))]))
            .action(GuardedAction::new(
                "sync_a",
                Expr::var(self.a_bit).ne(Expr::var(self.r_bit)),
                vec![(self.a_bit, Expr::var(self.r_bit))],
            ))
            .weak_fairness([0])
            .build()
            .expect("wire is well-formed")
    }

    /// The ack wire's assumption: the receiver's bit flips only toward
    /// the forward wire's bit.
    pub fn ack_env(&self) -> ComponentSpec {
        ComponentSpec::builder("consume-discipline")
            .outputs([self.r_bit])
            .inputs([self.f_bit])
            .init(Init::new([(self.r_bit, Value::Int(0))]))
            .action(GuardedAction::new(
                "consume",
                Expr::var(self.r_bit).ne(Expr::var(self.f_bit)),
                vec![(self.r_bit, Expr::var(self.f_bit))],
            ))
            .build()
            .expect("assumption is well-formed")
    }

    /// The certified target: the *reliable channel* — `recv` counts
    /// monotonically from 0, one step at a time, with `WF` forcing it
    /// to `K`.
    pub fn reliable_channel(&self) -> ComponentSpec {
        ComponentSpec::builder("reliable-channel")
            .outputs([self.recv])
            .init(Init::new([(self.recv, Value::Int(0))]))
            .action(GuardedAction::new(
                "deliver_next",
                Expr::var(self.recv).lt(Expr::int(self.messages)),
                vec![(self.recv, Expr::var(self.recv).add(Expr::int(1)))],
            ))
            .weak_fairness([0])
            .build()
            .expect("target is well-formed")
    }

    /// Certifies, via the Composition Theorem over the four-cycle of
    /// assumptions, that the protocol implements the reliable channel:
    /// `G ∧ (E_s ⊳ sender) ∧ (E_f ⊳ fwd) ∧ (E_r ⊳ receiver) ∧
    /// (E_a ⊳ ack) ⇒ (TRUE ⊳ reliable-channel)`.
    ///
    /// # Errors
    ///
    /// Structural errors only.
    pub fn prove(&self, options: &CompositionOptions) -> Result<Certificate, SpecError> {
        let ags = [
            AgSpec::new(self.sender_env(), self.sender())?,
            AgSpec::new(self.forward_env(), self.forward_wire())?,
            AgSpec::new(self.receiver_env(), self.receiver())?,
            AgSpec::new(self.ack_env(), self.ack_wire())?,
        ];
        let true_env = ComponentSpec::builder("TRUE").build()?;
        let target = AgSpec::new(true_env, self.reliable_channel())?;
        let problem = CompositionProblem {
            vars: &self.vars,
            components: ags.iter().collect(),
            target: &target,
            mapping: Substitution::default(),
        };
        opentla::compose(&problem, options)
    }

    /// The complete protocol system.
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn complete_system(&self) -> Result<System, SpecError> {
        let sender = self.sender();
        let fwd = self.forward_wire();
        let recv = self.receiver();
        let ack = self.ack_wire();
        opentla::closed_product(&self.vars, &[&sender, &fwd, &recv, &ack])
    }

    /// The complete protocol over a *lossy* forward wire: alongside
    /// the faithful `sync_f`, the fault variant `fault:lossy[sync_f]`
    /// completes the bit handshake but drops the payload update, so the
    /// receiver consumes whatever stale value sits on the wire.
    ///
    /// This is the flagship adversarial environment for the receiver's
    /// `E_r ⊳ M_r`: the lossy wire eventually delivers a wrong payload,
    /// breaking [`AlternatingBit::receiver_assumption`] — while the
    /// receiver's own guarantee keeps holding, exactly the one-step-
    /// longer margin `⊳` demands (see the `adversarial_robustness`
    /// integration tests).
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn lossy_system(&self) -> Result<System, SpecError> {
        let sys = self.complete_system()?;
        let sync_f = action_index(&sys, "sync_f");
        Ok(faults::lossy(&sys, &[sync_f], &[self.f_val])?)
    }

    /// The complete protocol over *duplicating* wires: fault variants
    /// of `sync_f` and `sync_a` that fire twice in one step.
    ///
    /// Both wires are bit-flip handshakes — firing disables the guard —
    /// so the duplicates are unsatisfiable and the faulted state space
    /// *equals* the original's: the protocol tolerates duplication by
    /// construction. (That is the classic alternating-bit insight, here
    /// surfaced mechanically by a fault combinator.)
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn duplicating_system(&self) -> Result<System, SpecError> {
        let sys = self.complete_system()?;
        let targets = [action_index(&sys, "sync_f"), action_index(&sys, "sync_a")];
        Ok(faults::duplicate(&sys, &targets)?)
    }

    /// The receiver's assumption `E_r` (delivery discipline) as a
    /// safety formula — what the lossy wire of
    /// [`AlternatingBit::lossy_system`] breaks.
    pub fn receiver_assumption(&self) -> Formula {
        self.receiver_env().safety_formula()
    }

    /// The receiver's guarantee `M_r` as a safety formula.
    pub fn receiver_guarantee(&self) -> Formula {
        self.receiver().safety_formula()
    }

    /// The sender's guarantee `M_s` as a safety formula — a guarantee a
    /// saboteur of the wire-side invariants cannot touch (see the
    /// `adversarial_robustness` integration tests).
    pub fn sender_guarantee(&self) -> Formula {
        self.sender().safety_formula()
    }

    /// The in-order content invariant: an undelivered message on the
    /// forward wire carries exactly the next expected payload.
    pub fn in_order_invariant(&self) -> Expr {
        Expr::var(self.f_bit)
            .ne(Expr::var(self.r_bit))
            .implies(Expr::var(self.f_val).eq(Expr::var(self.recv)))
    }

    /// The counting invariant: the receiver never runs ahead of the
    /// sender, and lags by at most one message.
    pub fn counting_invariant(&self) -> Expr {
        Expr::all([
            Expr::var(self.recv).le(Expr::var(self.sent)),
            Expr::var(self.sent).le(Expr::var(self.recv).add(Expr::int(1))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{
        check_invariant, check_liveness, explore, ExploreOptions, LiveTarget,
    };

    #[test]
    fn composition_certifies_reliable_delivery() {
        let w = AlternatingBit::new(3);
        let cert = w.prove(&CompositionOptions::default()).unwrap();
        assert!(cert.holds(), "{}", cert.display(w.vars()));
        // Four circularly-discharged assumptions.
        let h1s = cert
            .obligations
            .iter()
            .filter(|o| o.id.starts_with("H1"))
            .count();
        assert_eq!(h1s, 4);
        // The target's WF is a genuine liveness obligation.
        assert!(cert.obligations.iter().any(|o| o.id.starts_with("H2b")));
    }

    #[test]
    fn protocol_invariants() {
        let w = AlternatingBit::new(3);
        let sys = w.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert!(check_invariant(&sys, &graph, &w.in_order_invariant())
            .unwrap()
            .holds());
        assert!(check_invariant(&sys, &graph, &w.counting_invariant())
            .unwrap()
            .holds());
    }

    #[test]
    fn all_messages_eventually_delivered() {
        let w = AlternatingBit::new(2);
        let sys = w.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let done = Expr::var(w.recv()).eq(Expr::int(2));
        assert!(
            check_liveness(&sys, &graph, &LiveTarget::Eventually(done))
                .unwrap()
                .holds()
        );
    }

    #[test]
    fn no_delivery_if_the_forward_wire_stalls() {
        // Drop the forward wire's fairness: the protocol may stall with
        // a message forever in flight.
        let w = AlternatingBit::new(2);
        let sender = w.sender();
        let lazy_fwd = ComponentSpec::builder("lazy-fwd")
            .outputs(w.forward_wire().outputs().to_vec())
            .inputs(w.forward_wire().inputs().to_vec())
            .init(w.forward_wire().init().clone())
            .actions(w.forward_wire().actions().to_vec())
            .build()
            .unwrap();
        let recv = w.receiver();
        let ack = w.ack_wire();
        let sys =
            opentla::closed_product(w.vars(), &[&sender, &lazy_fwd, &recv, &ack])
                .unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let done = Expr::var(w.recv()).eq(Expr::int(2));
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::Eventually(done)).unwrap();
        assert!(!verdict.holds(), "an unfair wire may lose every message");
    }

    #[test]
    fn lossy_wire_breaks_delivery_but_not_the_receiver() {
        let w = AlternatingBit::new(2);
        let faithful = w.complete_system().unwrap();
        let lossy = w.lossy_system().unwrap();
        // The fault genuinely enlarges the behavior space…
        let base = explore(&faithful, &ExploreOptions::default()).unwrap();
        let bad = explore(&lossy, &ExploreOptions::default()).unwrap();
        assert!(bad.len() > base.len());
        // …and breaks in-order delivery (a stale payload is consumed),
        assert!(!check_invariant(&lossy, &bad, &w.in_order_invariant())
            .unwrap()
            .holds());
        // …yet the receiver's own E_r ⊳ M_r still holds: the diagnosis
        // pins the loss on the injected fault, one step before any
        // obligation of the receiver lapses.
        let report = opentla::check_ag_safety_diagnosed(
            &lossy,
            &bad,
            &w.receiver_assumption(),
            &w.receiver_guarantee(),
        )
        .unwrap();
        assert!(report.holds());
        let brk = report.env_break.expect("the lossy wire must break E_r");
        assert_eq!(brk.action.as_deref(), Some("fault:lossy[sync_f]"));
        let text = brk.to_string();
        assert!(text.contains("assumption violated by environment"), "{text}");
        assert!(
            text.contains(&format!("M held {} steps", brk.step + 1)),
            "{text}"
        );
    }

    #[test]
    fn duplicating_wires_are_tolerated_by_construction() {
        let w = AlternatingBit::new(2);
        let faithful = w.complete_system().unwrap();
        let dup = w.duplicating_system().unwrap();
        // The handshake disables itself, so the duplicates never fire:
        // same states, same transitions, invariants intact.
        let base = explore(&faithful, &ExploreOptions::default()).unwrap();
        let faulted = explore(&dup, &ExploreOptions::default()).unwrap();
        assert_eq!(base.len(), faulted.len());
        assert_eq!(base.edge_count(), faulted.edge_count());
        assert!(check_invariant(&dup, &faulted, &w.in_order_invariant())
            .unwrap()
            .holds());
    }

    #[test]
    fn spurious_ack_breaks_the_sender_assumption() {
        // Replace the ack wire with one that flips arbitrarily: H1 for
        // the sender's assumption must fail.
        let w = AlternatingBit::new(2);
        let noisy_ack = ComponentSpec::builder("noisy-ack")
            .outputs([w.a_bit])
            .init(Init::new([(w.a_bit, Value::Int(0))]))
            .action(GuardedAction::new(
                "flip",
                Expr::bool(true),
                vec![(w.a_bit, Expr::int(1).sub(Expr::var(w.a_bit)))],
            ))
            .weak_fairness([0])
            .build()
            .unwrap();
        let ags = [
            AgSpec::new(w.sender_env(), w.sender()).unwrap(),
            AgSpec::new(w.forward_env(), w.forward_wire()).unwrap(),
            AgSpec::new(w.receiver_env(), w.receiver()).unwrap(),
            AgSpec::new(w.ack_env(), noisy_ack).unwrap(),
        ];
        let true_env = ComponentSpec::builder("TRUE").build().unwrap();
        let target = AgSpec::new(true_env, w.reliable_channel()).unwrap();
        let problem = CompositionProblem {
            vars: w.vars(),
            components: ags.iter().collect(),
            target: &target,
            mapping: Substitution::default(),
        };
        let cert = opentla::compose(&problem, &CompositionOptions::default()).unwrap();
        assert!(!cert.holds());
        let failure = cert.first_failure().unwrap();
        assert!(
            failure.id.starts_with("H1"),
            "the broken wire must be caught at hypothesis 1, got {}",
            failure.id
        );
    }
}
