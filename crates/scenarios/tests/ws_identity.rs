//! The work-stealing packed engine must be observationally
//! indistinguishable from the sequential engine on every benchmark
//! scenario: same statistics, same canonical state numbering, same
//! initial ids, same edge lists — at every worker count and in both
//! visited-set modes.
//!
//! Identity is asserted on `stats()`/`states()`/`init()`/`edges(id)`,
//! not on whole-struct equality: the parallel engines rebuild the
//! `visited` lookup map in shard order, which legitimately differs in
//! iteration order while holding identical contents.

use opentla_check::{
    explore_governed_with, Budget, Engine, ExploreOptions, Reduction, StateGraph,
    VisitedMode,
};
use opentla_check::System;
use opentla_queue::{FairnessStyle, QueueChain};
use opentla_scenarios::{AlternatingBit, ArbiterFairness, Mutex, TokenRing};

fn assert_graphs_identical(a: &StateGraph, b: &StateGraph, what: &str) {
    assert_eq!(a.stats(), b.stats(), "{what}: stats differ");
    assert_eq!(a.states(), b.states(), "{what}: canonical state order differs");
    assert_eq!(a.init(), b.init(), "{what}: initial ids differ");
    for id in 0..a.len() {
        assert_eq!(a.edges(id), b.edges(id), "{what}: edges differ at state {id}");
    }
}

fn seq_graph(system: &System) -> StateGraph {
    explore_governed_with(
        system,
        &Budget::unlimited(),
        &ExploreOptions { threads: Some(1), ..ExploreOptions::default() },
    )
    .expect("sequential exploration succeeds")
    .graph
}

/// Runs the full worker-count × visited-mode matrix against a
/// sequential baseline.
fn assert_ws_matrix(system: &System, name: &str) {
    let seq = seq_graph(system);
    for workers in [1usize, 2, 4] {
        for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
            let run = explore_governed_with(
                system,
                &Budget::unlimited(),
                &ExploreOptions {
                    threads: Some(workers),
                    engine: Engine::WorkStealing,
                    mode,
                    ..ExploreOptions::default()
                },
            )
            .expect("work-stealing exploration succeeds");
            assert!(run.outcome.is_complete(), "{name}: ws run must complete");
            assert_graphs_identical(
                &seq,
                &run.graph,
                &format!("{name} ws({workers}, {mode:?})"),
            );
        }
    }
}

#[test]
fn ws_matches_sequential_abp() {
    let system = AlternatingBit::new(2).complete_system().expect("abp builds");
    assert_ws_matrix(&system, "abp");
}

#[test]
fn ws_matches_sequential_mutex() {
    let system = Mutex::with_clients(2, ArbiterFairness::Weak)
        .product()
        .expect("mutex builds");
    assert_ws_matrix(&system, "mutex");
}

#[test]
fn ws_matches_sequential_ring() {
    let system = TokenRing::new(3).complete_system().expect("ring builds");
    assert_ws_matrix(&system, "ring");
}

#[test]
fn ws_matches_sequential_chain2() {
    let system = QueueChain::new(2, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain2 builds");
    assert_ws_matrix(&system, "chain2");
}

#[test]
fn ws_matches_sequential_chain3() {
    let system = QueueChain::new(3, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain3 builds");
    assert_ws_matrix(&system, "chain3");
}

/// The large chain4 benchmark (54 358 states), at the acceptance
/// configuration's worker count only — the full matrix runs on the
/// smaller scenarios above, and the release-mode bench gate re-checks
/// chain4 identity on every bench run.
#[test]
fn ws_matches_sequential_chain4() {
    let system = QueueChain::new(4, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain4 builds");
    let seq = seq_graph(&system);
    let run = explore_governed_with(
        &system,
        &Budget::unlimited(),
        &ExploreOptions {
            threads: Some(4),
            engine: Engine::WorkStealing,
            ..ExploreOptions::default()
        },
    )
    .expect("work-stealing exploration succeeds");
    assert!(run.outcome.is_complete());
    assert_graphs_identical(&seq, &run.graph, "chain4 ws(4, Fingerprint)");
}

/// Narrow fingerprints deliberately force collisions; `Exact` mode
/// must keep the packed engine sound (bytes are the key) and the
/// graph identical to the sequential engine under the same width.
#[test]
fn ws_exact_mode_survives_forced_collisions() {
    let system = TokenRing::new(3).complete_system().expect("ring builds");
    let options = ExploreOptions {
        threads: Some(1),
        mode: VisitedMode::Exact,
        fp_bits: 12,
        ..ExploreOptions::default()
    };
    let seq = explore_governed_with(&system, &Budget::unlimited(), &options)
        .expect("sequential exploration succeeds")
        .graph;
    for workers in [1usize, 4] {
        let run = explore_governed_with(
            &system,
            &Budget::unlimited(),
            &ExploreOptions {
                threads: Some(workers),
                engine: Engine::WorkStealing,
                ..options.clone()
            },
        )
        .expect("work-stealing exploration succeeds");
        assert!(run.outcome.is_complete());
        assert_graphs_identical(
            &seq,
            &run.graph,
            &format!("ring exact fp12 ws({workers})"),
        );
    }
}

/// Reduced (ample-set) configurations must fall back to the
/// level-synchronous engine — the only one implementing the cycle
/// proviso — and produce exactly the reduced graph the level engine
/// produces, regardless of the requested engine.
#[test]
fn ws_falls_back_to_level_sync_under_reduction() {
    let ring = TokenRing::new(3);
    let system = ring.complete_system().expect("ring builds");
    let reduction = Reduction::none().with_por(ring.mutual_exclusion().unprimed_vars());
    let level = explore_governed_with(
        &system,
        &Budget::unlimited(),
        &ExploreOptions {
            threads: Some(2),
            reduction: reduction.clone(),
            ..ExploreOptions::default()
        },
    )
    .expect("reduced exploration succeeds");
    let routed = explore_governed_with(
        &system,
        &Budget::unlimited(),
        &ExploreOptions {
            threads: Some(2),
            engine: Engine::WorkStealing,
            reduction,
            ..ExploreOptions::default()
        },
    )
    .expect("reduced exploration succeeds");
    assert_graphs_identical(&level.graph, &routed.graph, "ring reduced fallback");
}
